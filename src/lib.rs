//! Facade crate for the BLOT diverse-replica storage workspace.
//!
//! Re-exports every workspace crate under one roof so applications can
//! depend on `blot` alone:
//!
//! * [`core`] — the paper's contribution: cost model, replica
//!   selection, query routing, recovery, adaptation
//!   (start with [`core::prelude`]);
//! * [`geo`] — spatio-temporal geometry;
//! * [`model`] — the logical record model;
//! * [`codec`] — layouts and compression;
//! * [`index`] — partitioning schemes and the partitioning index;
//! * [`storage`] — backends and simulated execution environments;
//! * [`mip`] — the LP/MIP solver;
//! * [`tracegen`] — synthetic fleet data.
//!
//! See the README for a tour and `DESIGN.md` for the paper mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use blot_codec as codec;
pub use blot_core as core;
pub use blot_geo as geo;
pub use blot_index as index;
pub use blot_mip as mip;
pub use blot_model as model;
pub use blot_storage as storage;
pub use blot_tracegen as tracegen;
