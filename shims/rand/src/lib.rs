//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`rngs::SmallRng`]. The generator behind
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same
//! family the real crate uses on 64-bit targets — so statistical
//! quality is comparable, though the exact streams differ.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Mirrors `rand`'s contract: the range must be non-empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                // Truncation/wrapping is the point: take the low bits.
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Scalars that know how to sample themselves from range endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range called with an empty range"
                );
                // Width of the range as the unsigned twin type; wrapping
                // subtraction is exact for two's-complement endpoints.
                let span = (hi as $u).wrapping_sub(lo as $u) as u128 + u128::from(inclusive);
                if span == 0 {
                    // Inclusive full-domain range: every value is fair.
                    return rng.next_u64() as $t;
                }
                // Multiply-shift bounded sampling (Lemire); the bias for
                // spans below 2^64 is at most 2^-64 per draw.
                let wide = u128::from(rng.next_u64()).wrapping_mul(span);
                let offset = (wide >> 64) as $u;
                (lo as $u).wrapping_add(offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * unit;
                // Guard against rounding past the upper endpoint.
                if v > hi { hi } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

pub mod rngs {
    //! Concrete generators (subset: [`SmallRng`] only).

    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 — the canonical seed expander for xoshiro.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            // xoshiro requires a non-zero state; SplitMix64 cannot emit
            // four zeros from any seed, but keep the guard explicit.
            if s == [0; 4] {
                return Self { s: [1, 2, 3, 4] };
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
    }
}
