//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the BLOT benches use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] — backed by a simple
//! wall-clock harness: a warm-up pass sizes each batch, then
//! `sample_size` batches are timed and min / median / mean are printed.
//! There is no statistical analysis, plotting or HTML report.
//!
//! Passing `--test` (as `cargo bench -- --test` does, and as `cargo
//! test` does when it runs bench targets) switches to smoke mode: each
//! matching benchmark runs exactly one iteration with no warm-up or
//! timing, so CI can prove every bench still executes without paying
//! for a full measurement run.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle passed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    /// Substring filter taken from the command line, like criterion's.
    filter: Option<String>,
    /// `--test` smoke mode: run each bench once, skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's CLI loosely: any non-flag argument filters
        // benchmark names; `--test` selects one-iteration smoke mode;
        // other flags (`--bench`, …) are accepted and ignored so
        // `cargo bench` / `cargo test` invocations work.
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Self { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_owned());
        group.bench_function("", f);
        group.finish();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// Throughput annotation; reported as elements or bytes per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput for the rate column.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if id.id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if self.criterion.matches(&full) {
            if self.criterion.test_mode {
                run_once(&full, |b| f(b));
            } else {
                run_benchmark(&full, self.sample_size, self.throughput, |b| f(b));
            }
        }
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            if self.criterion.test_mode {
                run_once(&full, |b| f(b, input));
            } else {
                run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
            }
        }
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// `--test` smoke mode: one untimed iteration, pass/fail only.
fn run_once<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    println!("test bench {name:<48} ... ok");
}

/// Sizes a batch via warm-up, then times `sample_size` batches.
fn run_benchmark<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: find how many iterations fit in ~50 ms.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(50) || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };
    // Aim for ~25 ms per recorded sample. The ratio is positive and the
    // clamp bounds it, so the float-to-int conversion cannot misbehave.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let batch = ((0.025 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / batch as f64);
    }
    samples.sort_by(f64::total_cmp);
    let min = samples.first().copied().unwrap_or(0.0);
    let median = samples.get(samples.len() / 2).copied().unwrap_or(min);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", human(n as f64 / median)),
        Throughput::Bytes(n) => format!("  {:>10}B/s", human(n as f64 / median)),
    });
    println!(
        "bench {name:<48} min {:>10}  med {:>10}  mean {:>10}{}",
        human_time(min),
        human_time(median),
        human_time(mean),
        rate.unwrap_or_default(),
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Declares a group of benchmark functions (criterion-compatible form;
/// configuration arguments are not supported).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `--test` (from `cargo bench -- --test` or `cargo test`)
            // is handled inside the harness: each bench runs exactly
            // one iteration so regressions that panic still surface.
            $($group();)+
        }
    };
}
