//! The [`Strategy`] trait and the combinators BLOT's suites use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from
    /// it, and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`] and
/// `prop_oneof!`.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// Object-safe twin of [`Strategy`] used behind the box.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between equally weighted alternatives
/// (the engine behind `prop_oneof!`).
#[derive(Debug)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng.gen_range(0..self.options.len());
        let opt = self
            .options
            .get(i)
            .unwrap_or_else(|| unreachable!("Union::new asserts options is non-empty"));
        opt.generate(rng)
    }
}

/// Strategy for a full primitive domain; see [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Generates any value of `T` (mirrors `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Uniform choice among equally weighted strategies with a common value
/// type. All arms are boxed; mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
