//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a miniature property-testing harness with the same surface
//! the BLOT test suites use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`any`], [`Just`], `prop_oneof!`, `prop_assert!` / `prop_assert_eq!`
//! and the `proptest!` macro with `#![proptest_config(..)]`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   per-test seed; re-running the test deterministically replays it.
//! * **Deterministic seeds.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible in CI without a
//!   regressions file.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (subset: [`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: an exact length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, mirroring
    //! `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}
