//! Test configuration, RNG plumbing and the `proptest!` entry macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-test RNG handed to strategies.
///
/// Wraps the vendored [`SmallRng`]; the `rng` field is public to the
/// crate's strategy implementations.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: SmallRng,
}

impl TestRng {
    /// Derives a deterministic RNG from a test's name, so every run of
    /// a given test replays the same case sequence (reproducible CI
    /// without a regressions file).
    #[must_use]
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: SmallRng::seed_from_u64(h),
        }
    }
}

/// Subset of proptest's run configuration: the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0..10u32, v in prop::collection::vec(any::<u8>(), 0..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each function runs `config.cases` cases; a failing case panics with
/// the case number (the sequence is deterministic per test name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            // A tuple of strategies is itself a strategy over a tuple of
            // values; destructuring it lets each arg be any irrefutable
            // pattern (`mut data`, `(a, b)`, …).
            let __strategies = ($($strat,)+);
            for __case in 0..config.cases {
                let __result = {
                    #[allow(unused_mut)]
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body))
                };
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic per test name)",
                        __case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr) $($rest:tt)+) => {
        compile_error!(
            "proptest shim: expected `#[test] fn name(pat in strategy, ...) { ... }`"
        );
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}
