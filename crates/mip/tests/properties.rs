//! Property tests: branch & bound must agree with brute force on every
//! random instance where brute force is feasible.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_mip::{solve_brute_force, MipError, MipSolver, Problem, Relation};
use proptest::prelude::*;

/// Random pure 0-1 minimisation instances with ≤ 10 variables and ≤ 6
/// rows, mixed relations, integer-ish coefficients to keep arithmetic
/// exact.
fn arb_instance() -> impl Strategy<Value = Problem> {
    (2usize..=10, 1usize..=6).prop_flat_map(|(n, m)| {
        let obj = prop::collection::vec(-20i32..=20, n);
        let rows = prop::collection::vec(
            (
                prop::collection::vec(-5i32..=8, n),
                prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
                -4i32..=16,
            ),
            m,
        );
        (obj, rows).prop_map(move |(obj, rows)| {
            let mut p = Problem::new(n);
            p.set_objective(&obj.iter().map(|&c| f64::from(c)).collect::<Vec<_>>());
            for (coeffs, rel, rhs) in rows {
                let sparse: Vec<(usize, f64)> = coeffs
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(|(j, &c)| (j, f64::from(c)))
                    .collect();
                // An all-zero Eq/Ge row with nonzero rhs is legal input
                // (it just makes the instance infeasible).
                p.add_constraint(&sparse, rel, f64::from(rhs));
            }
            for j in 0..n {
                p.mark_binary(j);
            }
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn branch_and_bound_matches_brute_force(p in arb_instance()) {
        let bb = MipSolver::default().solve(&p);
        let bf = solve_brute_force(&p);
        match (bb, bf) {
            (Ok(sol), Some(best)) => {
                prop_assert!(
                    (sol.objective - best.objective).abs() < 1e-6,
                    "b&b found {} but optimum is {}",
                    sol.objective,
                    best.objective
                );
                prop_assert!(p.is_feasible(&sol.values, 1e-6));
            }
            (Err(MipError::Infeasible), None) => {}
            (bb, bf) => prop_assert!(
                false,
                "disagreement: b&b = {:?}, brute force feasible = {}",
                bb.map(|s| s.objective),
                bf.is_some()
            ),
        }
    }

    #[test]
    fn solutions_are_always_integral(p in arb_instance()) {
        if let Ok(sol) = MipSolver::default().solve(&p) {
            for j in 0..p.num_vars() {
                prop_assert!(sol.values[j] == 0.0 || sol.values[j] == 1.0);
            }
        }
    }
}
