//! Extra LP edge cases: degenerate, redundant and near-singular
//! instances that historically break naive simplex implementations.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_mip::{solve_lp, LpStatus, Problem, Relation};

fn close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-6, "{a} != {b}");
}

#[test]
fn zero_objective_is_feasibility_check() {
    let mut p = Problem::new(2);
    p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0);
    p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
    let r = solve_lp(&p, None);
    assert_eq!(r.status, LpStatus::Optimal);
    close(r.objective, 0.0);
    close(r.values[0] + r.values[1], 4.0);
    assert!(r.values[0] >= 1.0 - 1e-9);
}

#[test]
fn redundant_equalities_do_not_break_phase_one() {
    // The same equality three times plus its double.
    let mut p = Problem::new(2);
    p.set_objective(&[1.0, 2.0]);
    for _ in 0..3 {
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
    }
    p.add_constraint(&[(0, 2.0), (1, 2.0)], Relation::Eq, 10.0);
    let r = solve_lp(&p, None);
    assert_eq!(r.status, LpStatus::Optimal);
    close(r.objective, 5.0); // all weight on x0
    close(r.values[0], 5.0);
}

#[test]
fn conflicting_equalities_are_infeasible() {
    let mut p = Problem::new(1);
    p.add_constraint(&[(0, 1.0)], Relation::Eq, 1.0);
    p.add_constraint(&[(0, 1.0)], Relation::Eq, 2.0);
    assert_eq!(solve_lp(&p, None).status, LpStatus::Infeasible);
}

#[test]
fn tiny_and_huge_coefficients_coexist() {
    // Scaling stress: 1e-6 next to 1e6.
    let mut p = Problem::new(2);
    p.set_objective(&[1e-6, 1e6]);
    p.add_constraint(&[(0, 1e-6), (1, 1e6)], Relation::Ge, 2.0);
    p.add_constraint(&[(0, 1.0)], Relation::Le, 1e6);
    let r = solve_lp(&p, None);
    assert_eq!(r.status, LpStatus::Optimal);
    // Cheapest way to reach 2.0 is via x0 (cost ratio equal, but x0 is
    // capped at 1e6 giving LHS 1.0, so x1 must supply the rest).
    let lhs = 1e-6 * r.values[0] + 1e6 * r.values[1];
    assert!(lhs >= 2.0 - 1e-6);
}

#[test]
fn equality_with_zero_rhs_and_free_direction() {
    // x0 - x1 = 0, minimise x0 + x1 → both zero.
    let mut p = Problem::new(2);
    p.set_objective(&[1.0, 1.0]);
    p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 0.0);
    let r = solve_lp(&p, None);
    assert_eq!(r.status, LpStatus::Optimal);
    close(r.objective, 0.0);
}

#[test]
fn cycling_prone_beale_instance_terminates() {
    // Beale's classic cycling example (needs Bland's rule to terminate):
    // min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4
    // s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 ≤ 0
    //      0.5  x1 - 90 x2 - 0.02 x3 + 3 x4 ≤ 0
    //      x3 ≤ 1
    let mut p = Problem::new(4);
    p.set_objective(&[-0.75, 150.0, -0.02, 6.0]);
    p.add_constraint(
        &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
        Relation::Le,
        0.0,
    );
    p.add_constraint(
        &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
        Relation::Le,
        0.0,
    );
    p.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
    let r = solve_lp(&p, None);
    assert_eq!(r.status, LpStatus::Optimal);
    close(r.objective, -0.05);
}

#[test]
fn bounds_tighter_than_constraints_win() {
    let mut p = Problem::new(1);
    p.set_objective(&[-1.0]);
    p.add_constraint(&[(0, 1.0)], Relation::Le, 100.0);
    let r = solve_lp(&p, Some(&[(0.0, 2.5)]));
    assert_eq!(r.status, LpStatus::Optimal);
    close(r.values[0], 2.5);
}

#[test]
fn infeasible_box_is_detected() {
    let p = Problem::new(1);
    let r = solve_lp(&p, Some(&[(3.0, 2.0)]));
    // lo > hi: the generated Ge/Le rows contradict.
    assert_eq!(r.status, LpStatus::Infeasible);
}
