//! Dense two-phase primal simplex over a full tableau.
//!
//! Sized for replica-selection relaxations (a few hundred rows, a few
//! thousand columns): no sparse factorisation, just a carefully
//! tolerant tableau with Dantzig pricing that falls back to Bland's rule
//! to guarantee termination under degeneracy.

// audit: allow-file(indexing, dense simplex tableau — every row/column index is bounded by dimensions fixed when the tableau is built)
#![allow(clippy::indexing_slicing)]

use crate::{Problem, Relation};

/// Feasibility / optimality tolerance.
const EPS: f64 = 1e-9;
/// Minimum magnitude of an acceptable pivot element.
const PIVOT_TOL: f64 = 1e-7;

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve status; `objective`/`values` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal values of the structural variables.
    pub values: Vec<f64>,
    /// Simplex pivots performed (both phases).
    pub iterations: u64,
}

struct Tableau {
    /// `rows × cols` coefficient matrix, `rhs` kept separately.
    a: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Objective row (reduced costs) and its current value.
    z: Vec<f64>,
    z_value: f64,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    cols: usize,
    iterations: u64,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > PIVOT_TOL);
        let inv = 1.0 / piv;
        for v in &mut self.a[row] {
            *v *= inv;
        }
        self.rhs[row] *= inv;
        self.a[row][col] = 1.0; // crush roundoff
        for r in 0..self.a.len() {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() <= EPS {
                self.a[r][col] = 0.0;
                continue;
            }
            for c in 0..self.cols {
                self.a[r][c] -= factor * self.a[row][c];
            }
            self.a[r][col] = 0.0;
            self.rhs[r] -= factor * self.rhs[row];
        }
        let zf = self.z[col];
        if zf.abs() > EPS {
            for c in 0..self.cols {
                self.z[c] -= zf * self.a[row][c];
            }
            self.z[col] = 0.0;
            self.z_value -= zf * self.rhs[row];
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Runs simplex iterations until optimal or unbounded.
    /// `allowed` masks the columns eligible to enter the basis.
    fn optimize(&mut self, allowed: &[bool]) -> LpStatus {
        let bland_after = 4 * (self.a.len() + self.cols) as u64;
        let start = self.iterations;
        loop {
            let use_bland = self.iterations - start > bland_after;
            // Pricing: most negative reduced cost (Dantzig), or first
            // negative (Bland) once degeneracy is suspected.
            let mut entering = None;
            let mut best = -EPS;
            for (c, &ok) in allowed.iter().enumerate() {
                if !ok {
                    continue;
                }
                if self.z[c] < best {
                    entering = Some(c);
                    if use_bland {
                        break;
                    }
                    best = self.z[c];
                }
            }
            let Some(col) = entering else {
                return LpStatus::Optimal;
            };
            // Ratio test (Bland tie-break: smallest basis index).
            let mut leaving: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let a = self.a[r][col];
                if a > PIVOT_TOL {
                    let ratio = self.rhs[r] / a;
                    let better = match leaving {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leaving = Some((r, ratio));
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return LpStatus::Unbounded;
            };
            self.pivot(row, col);
        }
    }
}

/// Solves the linear relaxation of `problem` (integrality ignored;
/// binary variables keep their `[0, 1]` box via internal rows).
///
/// `extra_upper` optionally adds per-variable upper bounds on structural
/// variables (used by branch & bound to fix binaries); entries of
/// `f64::INFINITY` mean unbounded, and a negative lower-`fix` is not
/// supported — fixings are expressed as `[lo, hi]` boxes.
#[must_use]
pub fn solve_lp(problem: &Problem, bounds: Option<&[(f64, f64)]>) -> LpResult {
    let n = problem.num_vars();
    // Collect rows: user constraints plus binary boxes / branching boxes.
    // Each row: (coeffs, relation, rhs).
    type Row = (Vec<(usize, f64)>, Relation, f64);
    let mut rows: Vec<Row> = problem
        .constraints()
        .iter()
        .map(|c| (c.coeffs.clone(), c.relation, c.rhs))
        .collect();
    for j in 0..n {
        let (lo, hi) = bounds.map_or((0.0, f64::INFINITY), |b| b[j]);
        let hi = if problem.is_binary(j) {
            hi.min(1.0)
        } else {
            hi
        };
        if lo > 0.0 {
            rows.push((vec![(j, 1.0)], Relation::Ge, lo));
        }
        if hi.is_finite() {
            rows.push((vec![(j, 1.0)], Relation::Le, hi));
        }
    }
    let m = rows.len();

    // Column plan: structural | slack/surplus (one per row except Eq) |
    // artificials (rows needing them).
    let mut slack_col = vec![usize::MAX; m];
    let mut art_col = vec![usize::MAX; m];
    let mut next = n;
    for (i, row) in rows.iter().enumerate() {
        let positive_rhs = row.2 >= 0.0;
        let rel = row.1;
        // After normalising rhs ≥ 0, a Le row keeps a basic slack; Ge
        // rows get surplus + artificial; Eq rows get artificial only.
        let effective = match (rel, positive_rhs) {
            (Relation::Le, true) | (Relation::Ge, false) => Relation::Le,
            (Relation::Ge, true) | (Relation::Le, false) => Relation::Ge,
            (Relation::Eq, _) => Relation::Eq,
        };
        match effective {
            Relation::Le => {
                slack_col[i] = next;
                next += 1;
            }
            Relation::Ge => {
                slack_col[i] = next;
                next += 1;
                art_col[i] = next;
                next += 1;
            }
            Relation::Eq => {
                art_col[i] = next;
                next += 1;
            }
        }
    }
    let cols = next;

    let mut t = Tableau {
        a: vec![vec![0.0; cols]; m],
        rhs: vec![0.0; m],
        z: vec![0.0; cols],
        z_value: 0.0,
        basis: vec![usize::MAX; m],
        cols,
        iterations: 0,
    };
    for (i, (coeffs, rel, rhs)) in rows.iter().enumerate() {
        let flip = if *rhs < 0.0 { -1.0 } else { 1.0 };
        for &(j, c) in coeffs {
            t.a[i][j] += flip * c;
        }
        t.rhs[i] = flip * rhs;
        let effective = match (rel, flip > 0.0) {
            (Relation::Le, true) | (Relation::Ge, false) => Relation::Le,
            (Relation::Ge, true) | (Relation::Le, false) => Relation::Ge,
            (Relation::Eq, _) => Relation::Eq,
        };
        match effective {
            Relation::Le => {
                t.a[i][slack_col[i]] = 1.0;
                t.basis[i] = slack_col[i];
            }
            Relation::Ge => {
                t.a[i][slack_col[i]] = -1.0;
                t.a[i][art_col[i]] = 1.0;
                t.basis[i] = art_col[i];
            }
            Relation::Eq => {
                t.a[i][art_col[i]] = 1.0;
                t.basis[i] = art_col[i];
            }
        }
    }

    let has_artificials = art_col.iter().any(|&c| c != usize::MAX);
    let allowed_all = vec![true; cols];
    if has_artificials {
        // Phase 1: minimise the sum of artificials. Reduced costs start
        // as c - c_B B⁻¹ A with c = 1 on artificials, and the basis rows
        // containing artificials contribute -row each.
        for c in art_col.iter().filter(|&&c| c != usize::MAX) {
            t.z[*c] = 1.0;
        }
        for (i, &ac) in art_col.iter().enumerate() {
            if ac != usize::MAX && t.basis[i] == ac {
                for c in 0..cols {
                    t.z[c] -= t.a[i][c];
                }
                t.z_value -= t.rhs[i];
            }
        }
        let status = t.optimize(&allowed_all);
        debug_assert_ne!(status, LpStatus::Unbounded, "phase 1 is bounded below by 0");
        if -t.z_value > 1e-7 {
            // Σ artificials > 0 at optimum ⇒ no feasible point.
            return LpResult {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: vec![0.0; n],
                iterations: t.iterations,
            };
        }
        // Drive any zero-level artificial out of the basis if possible.
        for (i, &ac) in art_col.iter().enumerate() {
            if ac != usize::MAX && t.basis[i] == ac {
                if let Some(c) = (0..n).find(|&c| t.a[i][c].abs() > PIVOT_TOL) {
                    t.pivot(i, c);
                }
            }
        }
    }

    // Phase 2: real objective. Forbid artificial columns from re-entering.
    let mut allowed = vec![true; cols];
    for &c in &art_col {
        if c != usize::MAX {
            allowed[c] = false;
        }
    }
    t.z = vec![0.0; cols];
    t.z_value = 0.0;
    for (j, &c) in problem.objective().iter().enumerate() {
        t.z[j] = c;
    }
    for i in 0..m {
        let b = t.basis[i];
        let cb = if b < n { problem.objective()[b] } else { 0.0 };
        if cb != 0.0 {
            for c in 0..cols {
                t.z[c] -= cb * t.a[i][c];
            }
            t.z_value -= cb * t.rhs[i];
        }
    }
    let status = t.optimize(&allowed);
    if status == LpStatus::Unbounded {
        return LpResult {
            status,
            objective: f64::NEG_INFINITY,
            values: vec![0.0; n],
            iterations: t.iterations,
        };
    }

    let mut values = vec![0.0; n];
    for i in 0..m {
        if t.basis[i] < n {
            values[t.basis[i]] = t.rhs[i].max(0.0);
        }
    }
    let objective = problem.objective_value(&values);
    LpResult {
        status: LpStatus::Optimal,
        objective,
        values,
        iterations: t.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_maximization_via_negation() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (classic Dantzig).
        let mut p = Problem::new(2);
        p.set_objective(&[-3.0, -5.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let r = solve_lp(&p, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -36.0);
        assert_close(r.values[0], 2.0);
        assert_close(r.values[1], 6.0);
    }

    #[test]
    fn ge_and_eq_constraints_need_phase_one() {
        // min 2x + 3y s.t. x + y = 10, x ≥ 3  → x=10? no: minimise picks
        // x as large as possible since 2 < 3: x = 10, y = 0? but x ≥ 3
        // already satisfied. Optimal: x = 10, y = 0, obj = 20.
        let mut p = Problem::new(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 10.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 3.0);
        let r = solve_lp(&p, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 20.0);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut p = Problem::new(1);
        p.set_objective(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
        let r = solve_lp(&p, None);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_is_detected() {
        let mut p = Problem::new(1);
        p.set_objective(&[-1.0]);
        // x ≥ 0 only: minimising -x is unbounded.
        let r = solve_lp(&p, None);
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn binary_box_binds_the_relaxation() {
        let mut p = Problem::new(1);
        p.set_objective(&[-1.0]);
        p.mark_binary(0);
        let r = solve_lp(&p, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -1.0);
        assert_close(r.values[0], 1.0);
    }

    #[test]
    fn branch_bounds_fix_variables() {
        let mut p = Problem::new(2);
        p.set_objective(&[-1.0, -1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.5);
        p.mark_binary(0);
        p.mark_binary(1);
        let r = solve_lp(&p, Some(&[(1.0, 1.0), (0.0, 0.0)]));
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.values[0], 1.0);
        assert_close(r.values[1], 0.0);
        // Contradictory fixing is infeasible.
        let r = solve_lp(&p, Some(&[(1.0, 1.0), (1.0, 1.0)]));
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // -x ≤ -3  ⇔  x ≥ 3.
        let mut p = Problem::new(1);
        p.set_objective(&[1.0]);
        p.add_constraint(&[(0, -1.0)], Relation::Le, -3.0);
        let r = solve_lp(&p, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 3.0);
    }

    #[test]
    fn degenerate_problems_terminate() {
        // Many redundant constraints through the same vertex.
        let mut p = Problem::new(3);
        p.set_objective(&[-1.0, -2.0, -3.0]);
        for k in 1..=6 {
            let k = f64::from(k);
            p.add_constraint(&[(0, k), (1, k), (2, k)], Relation::Le, k * 10.0);
        }
        p.add_constraint(&[(0, 1.0)], Relation::Le, 10.0);
        p.add_constraint(&[(1, 1.0)], Relation::Le, 10.0);
        p.add_constraint(&[(2, 1.0)], Relation::Le, 10.0);
        let r = solve_lp(&p, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -30.0); // all budget on x2
    }
}
