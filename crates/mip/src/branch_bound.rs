//! Best-first branch & bound over binary variables with LP bounds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::lp::{solve_lp, LpStatus};
use crate::{MipError, Problem};

/// Integrality tolerance: an LP value within this distance of 0/1 counts
/// as integral.
const INT_TOL: f64 = 1e-6;

/// Statistics of a branch & bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Nodes whose LP relaxation was solved.
    pub nodes_explored: u64,
    /// Nodes pruned by bound against the incumbent.
    pub nodes_pruned: u64,
    /// Total simplex pivots across all node LPs.
    pub lp_iterations: u64,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

/// An optimal (or best-found) 0-1 assignment.
#[derive(Debug, Clone)]
pub struct MipSolution {
    /// Objective value of `values`.
    pub objective: f64,
    /// Variable assignment (binaries are exactly 0.0 or 1.0; continuous
    /// variables take their LP values).
    pub values: Vec<f64>,
    /// Whether the tree was closed (`true`) or the node/time budget ran
    /// out with this incumbent still unproven (`false`).
    pub proven_optimal: bool,
    /// Search statistics.
    pub stats: SolveStats,
}

/// Configuration and entry point of the branch & bound solver.
#[derive(Debug, Clone)]
pub struct MipSolver {
    /// Hard cap on explored nodes (default 2²⁰).
    pub max_nodes: u64,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
}

impl Default for MipSolver {
    fn default() -> Self {
        Self {
            max_nodes: 1 << 20,
            time_limit: None,
        }
    }
}

/// A search node: per-binary bounds, ordered by LP bound (best first).
struct Node {
    bound: f64,
    bounds: Vec<(f64, f64)>,
    /// LP solution of the parent, used to pick the branching variable.
    fractional: Vec<f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound on top.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

impl MipSolver {
    /// Creates a solver with the given node cap.
    #[must_use]
    pub fn with_max_nodes(max_nodes: u64) -> Self {
        Self {
            max_nodes,
            ..Self::default()
        }
    }

    /// Solves `problem` to proven optimality.
    ///
    /// # Errors
    ///
    /// * [`MipError::Infeasible`] — no 0-1 assignment satisfies the rows;
    /// * [`MipError::Unbounded`] — the LP relaxation is unbounded below;
    /// * [`MipError::NodeLimit`] — budget exhausted before any feasible
    ///   incumbent was found. If a budget runs out *with* an incumbent,
    ///   the incumbent is returned with
    ///   [`proven_optimal`](MipSolution::proven_optimal) = `false`.
    pub fn solve(&self, problem: &Problem) -> Result<MipSolution, MipError> {
        self.solve_seeded(problem, None)
    }

    /// Like [`solve`](Self::solve), but warm-started with a known
    /// feasible assignment (e.g. a greedy solution) used as the initial
    /// incumbent — often collapsing the search tree by orders of
    /// magnitude.
    ///
    /// An infeasible or worse-than-useless seed is silently ignored.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_seeded(
        &self,
        problem: &Problem,
        seed: Option<&[f64]>,
    ) -> Result<MipSolution, MipError> {
        let start = Instant::now();
        let n = problem.num_vars();
        let free: Vec<(f64, f64)> = (0..n)
            .map(|j| {
                (
                    0.0,
                    if problem.is_binary(j) {
                        1.0
                    } else {
                        f64::INFINITY
                    },
                )
            })
            .collect();

        let mut stats = SolveStats::default();
        let root = solve_lp(problem, Some(&free));
        stats.nodes_explored += 1;
        stats.lp_iterations += root.iterations;
        match root.status {
            LpStatus::Infeasible => return Err(MipError::Infeasible),
            LpStatus::Unbounded => return Err(MipError::Unbounded),
            LpStatus::Optimal => {}
        }

        let mut incumbent: Option<MipSolution> = None;
        if let Some(seed) = seed {
            if seed.len() == n && problem.is_feasible(seed, 1e-9) {
                incumbent = Some(MipSolution {
                    objective: problem.objective_value(seed),
                    values: seed.to_vec(),
                    proven_optimal: false,
                    stats,
                });
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bound: root.objective,
            bounds: free,
            fractional: root.values,
        });

        let mut budget_hit = false;
        while let Some(node) = heap.pop() {
            if let Some(inc) = &incumbent {
                if node.bound >= inc.objective - 1e-9 {
                    stats.nodes_pruned += 1;
                    continue; // bound cannot beat the incumbent
                }
            }
            let over_nodes = stats.nodes_explored >= self.max_nodes;
            let over_time = self.time_limit.is_some_and(|limit| start.elapsed() > limit);
            if over_nodes || over_time {
                if incumbent.is_none() {
                    return Err(MipError::NodeLimit {
                        explored: stats.nodes_explored,
                    });
                }
                budget_hit = true;
                break;
            }

            // Pick the most fractional binary to branch on.
            let branch_var = problem
                .binary_vars()
                .into_iter()
                .filter(|&j| node.bounds.get(j).is_some_and(|&(lo, hi)| (hi - lo) > 0.5))
                .map(|j| {
                    let frac = node.fractional.get(j).copied().unwrap_or(0.0);
                    (j, (frac - 0.5).abs())
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));

            let Some((var, _)) = branch_var else {
                // All binaries fixed; LP value of this node is integral.
                continue;
            };

            for fix in [1.0, 0.0] {
                let mut bounds = node.bounds.clone();
                let Some(slot) = bounds.get_mut(var) else {
                    continue;
                };
                *slot = (fix, fix);
                let lp = solve_lp(problem, Some(&bounds));
                stats.nodes_explored += 1;
                stats.lp_iterations += lp.iterations;
                if lp.status != LpStatus::Optimal {
                    continue; // infeasible child
                }
                if let Some(inc) = &incumbent {
                    if lp.objective >= inc.objective - 1e-9 {
                        stats.nodes_pruned += 1;
                        continue;
                    }
                }
                let is_integral = problem.binary_vars().iter().all(|&j| {
                    lp.values
                        .get(j)
                        .is_some_and(|&v| !(INT_TOL..=1.0 - INT_TOL).contains(&v))
                });
                if is_integral {
                    let mut values = lp.values.clone();
                    for j in problem.binary_vars() {
                        if let Some(v) = values.get_mut(j) {
                            *v = v.round();
                        }
                    }
                    let objective = problem.objective_value(&values);
                    if incumbent
                        .as_ref()
                        .is_none_or(|inc| objective < inc.objective)
                    {
                        incumbent = Some(MipSolution {
                            objective,
                            values,
                            proven_optimal: false,
                            stats,
                        });
                    }
                } else {
                    heap.push(Node {
                        bound: lp.objective,
                        bounds,
                        fractional: lp.values,
                    });
                }
            }
        }

        stats.elapsed = start.elapsed();
        incumbent
            .map(|mut sol| {
                sol.stats = stats;
                sol.proven_optimal = !budget_hit;
                sol
            })
            .ok_or(MipError::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_brute_force, Relation};

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> Problem {
        let n = values.len();
        let mut p = Problem::new(n);
        p.set_objective(&values.iter().map(|v| -v).collect::<Vec<_>>());
        let coeffs: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
        p.add_constraint(&coeffs, Relation::Le, cap);
        for j in 0..n {
            p.mark_binary(j);
        }
        p
    }

    #[test]
    fn solves_knapsack_exactly() {
        let p = knapsack(&[10.0, 13.0, 7.0, 8.0], &[3.0, 4.0, 2.0, 3.0], 7.0);
        let sol = MipSolver::default().solve(&p).unwrap();
        let brute = solve_brute_force(&p).unwrap();
        assert!((sol.objective - brute.objective).abs() < 1e-9);
        assert_eq!(sol.objective, -23.0); // items 1 (13) + 0 (10), weight 7
    }

    #[test]
    fn respects_equality_rows() {
        // Choose exactly 2 of 4 items minimising cost.
        let mut p = Problem::new(4);
        p.set_objective(&[5.0, 1.0, 3.0, 2.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)], Relation::Eq, 2.0);
        for j in 0..4 {
            p.mark_binary(j);
        }
        let sol = MipSolver::default().solve(&p).unwrap();
        assert_eq!(sol.objective, 3.0);
        assert_eq!(sol.values, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn infeasible_instances_error() {
        let mut p = Problem::new(2);
        p.set_objective(&[1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
        p.mark_binary(0);
        p.mark_binary(1);
        assert!(matches!(
            MipSolver::default().solve(&p),
            Err(MipError::Infeasible)
        ));
    }

    #[test]
    fn node_limit_is_honoured() {
        // A 20-variable knapsack with an adversarial structure cannot be
        // closed in 2 nodes.
        let values: Vec<f64> = (1..=20).map(|i| f64::from(i * 7 % 13 + 1)).collect();
        let weights: Vec<f64> = (1..=20).map(|i| f64::from(i * 5 % 11 + 1)).collect();
        let p = knapsack(&values, &weights, 30.0);
        let solver = MipSolver::with_max_nodes(2);
        // Two nodes cannot close a 20-variable tree: the solver either
        // had no incumbent yet (error) or returns one unproven.
        match solver.solve(&p) {
            Err(MipError::NodeLimit { explored }) => assert!(explored >= 2),
            Ok(sol) => assert!(!sol.proven_optimal),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn seeding_with_a_feasible_incumbent_is_safe_and_exact() {
        let p = knapsack(&[10.0, 13.0, 7.0, 8.0], &[3.0, 4.0, 2.0, 3.0], 7.0);
        // Seed with the all-zero solution (feasible, poor).
        let seeded = MipSolver::default()
            .solve_seeded(&p, Some(&[0.0, 0.0, 0.0, 0.0]))
            .unwrap();
        assert_eq!(seeded.objective, -23.0);
        assert!(seeded.proven_optimal);
        // An infeasible seed is ignored.
        let bad_seed = MipSolver::default()
            .solve_seeded(&p, Some(&[1.0, 1.0, 1.0, 1.0]))
            .unwrap();
        assert_eq!(bad_seed.objective, -23.0);
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min -x0 - 2 y, y continuous ≤ 1.5 via row, x0 binary,
        // x0 + y ≤ 2.
        let mut p = Problem::new(2);
        p.set_objective(&[-1.0, -2.0]);
        p.add_constraint(&[(1, 1.0)], Relation::Le, 1.5);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 2.0);
        p.mark_binary(0);
        let sol = MipSolver::default().solve(&p).unwrap();
        // Two optima tie at -3: (x0=1, y=1) and (x0=0, y=1.5).
        assert!(
            (sol.objective - (-3.0)).abs() < 1e-6,
            "got {}",
            sol.objective
        );
        assert!(sol.values[0] == 0.0 || sol.values[0] == 1.0);
    }

    #[test]
    fn stats_are_populated() {
        let p = knapsack(&[4.0, 5.0, 6.0], &[2.0, 3.0, 4.0], 5.0);
        let sol = MipSolver::default().solve(&p).unwrap();
        assert!(sol.stats.nodes_explored >= 1);
        assert!(sol.stats.lp_iterations >= 1);
    }
}
