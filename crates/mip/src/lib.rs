//! 0-1 Mixed Integer Programming for the BLOT replica selection problem.
//!
//! §III-B of the paper solves replica selection exactly by handing a 0-1
//! MIP to a solver. No solver crate is available offline, so this crate
//! implements the whole stack from scratch:
//!
//! * `lp` — a dense two-phase primal simplex for linear relaxations
//!   (exposed as [`solve_lp`]);
//! * `branch_bound` — best-first branch & bound over the binary
//!   variables (exposed as [`MipSolver`]), using LP bounds, fractional
//!   branching and incumbent pruning;
//! * [`Problem`] — a small modelling API (minimise, `≤`/`≥`/`=` rows,
//!   binary markers).
//!
//! The solver is exact: on every instance where brute force is feasible,
//! branch & bound provably returns the same optimum (see the property
//! tests). Solve time grows exponentially with the number of binaries,
//! which is precisely the behaviour Figure 3 of the paper measures.
//!
//! # Example
//!
//! ```
//! use blot_mip::{Problem, Relation, MipSolver};
//!
//! // Knapsack: maximise 3a + 4b (= minimise -3a - 4b) with a + 2b ≤ 2.
//! let mut p = Problem::new(2);
//! p.set_objective(&[-3.0, -4.0]);
//! p.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Le, 2.0);
//! p.mark_binary(0);
//! p.mark_binary(1);
//! let sol = MipSolver::default().solve(&p).unwrap();
//! assert_eq!(sol.objective, -4.0); // take b
//! assert_eq!(sol.values, vec![0.0, 1.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod lp;
mod problem;

pub use branch_bound::{MipSolution, MipSolver, SolveStats};
pub use lp::{solve_lp, LpResult, LpStatus};
pub use problem::{Constraint, MipError, Problem, Relation};

/// Exhaustive 0-1 search, exponential in the number of binaries.
///
/// Exists to cross-check the branch & bound solver in tests and to make
/// small instances debuggable; refuses instances with more than 24
/// binaries.
///
/// Returns the optimal solution, or `None` when no assignment is
/// feasible.
///
/// # Panics
///
/// Panics if the problem has more than 24 binary variables.
#[must_use]
pub fn solve_brute_force(problem: &Problem) -> Option<MipSolution> {
    let binaries: Vec<usize> = (0..problem.num_vars())
        .filter(|&j| problem.is_binary(j))
        .collect();
    assert!(binaries.len() <= 24, "brute force limited to 24 binaries");
    assert!(
        binaries.len() == problem.num_vars(),
        "brute force requires a pure 0-1 problem"
    );
    let mut best: Option<MipSolution> = None;
    for mask in 0u64..(1 << binaries.len()) {
        let values: Vec<f64> = (0..binaries.len())
            .map(|j| f64::from(u8::from(mask >> j & 1 == 1)))
            .collect();
        if !problem.is_feasible(&values, 1e-9) {
            continue;
        }
        let obj = problem.objective_value(&values);
        if best.as_ref().is_none_or(|b| obj < b.objective) {
            best = Some(MipSolution {
                objective: obj,
                values: values.clone(),
                proven_optimal: true,
                stats: SolveStats::default(),
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_knapsack() {
        let mut p = Problem::new(3);
        p.set_objective(&[-5.0, -4.0, -3.0]);
        p.add_constraint(&[(0, 2.0), (1, 3.0), (2, 1.0)], Relation::Le, 4.0);
        for j in 0..3 {
            p.mark_binary(j);
        }
        let sol = solve_brute_force(&p).unwrap();
        // Best is items 0 and 2: weight 3 ≤ 4, value 8.
        assert_eq!(sol.objective, -8.0);
        assert_eq!(sol.values, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn brute_force_detects_infeasible() {
        let mut p = Problem::new(1);
        p.set_objective(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        p.mark_binary(0);
        assert!(solve_brute_force(&p).is_none());
    }
}
