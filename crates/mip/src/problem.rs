//! Modelling API: minimisation problems over non-negative variables.

use std::fmt;

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; unmentioned variables have
    /// coefficient 0.
    pub coeffs: Vec<(usize, f64)>,
    /// Row relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimisation problem over non-negative variables, some of which may
/// be marked binary (0-1).
///
/// Continuous variables are bounded below by 0 and above only by the
/// constraints; binary variables additionally get an implicit `x ≤ 1`
/// bound and an integrality requirement enforced by branch & bound.
#[derive(Debug, Clone)]
pub struct Problem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    binary: Vec<bool>,
}

/// Error from the MIP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MipError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The LP relaxation is unbounded below.
    Unbounded,
    /// The node budget was exhausted before the tree was closed.
    NodeLimit {
        /// Nodes explored before giving up.
        explored: u64,
    },
}

impl fmt::Display for MipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "problem is infeasible"),
            Self::Unbounded => write!(f, "LP relaxation is unbounded"),
            Self::NodeLimit { explored } => {
                write!(f, "node limit reached after exploring {explored} nodes")
            }
        }
    }
}

impl std::error::Error for MipError {}

impl Problem {
    /// Creates a problem with `num_vars` continuous non-negative
    /// variables and a zero objective.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
            binary: vec![false; num_vars],
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraint rows.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective coefficient vector.
    #[must_use]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Sets the minimisation objective.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars` or any coefficient is not
    /// finite.
    pub fn set_objective(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.num_vars, "objective length mismatch");
        assert!(
            coeffs.iter().all(|c| c.is_finite()),
            "objective must be finite"
        );
        self.objective.copy_from_slice(coeffs);
    }

    /// Adds the constraint `Σ coeffs ⋆ relation ⋆ rhs`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range variable indices or non-finite numbers.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], relation: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        for &(j, c) in coeffs {
            assert!(j < self.num_vars, "variable index {j} out of range");
            assert!(c.is_finite(), "coefficient must be finite");
        }
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
    }

    /// Marks variable `j` as binary (0-1, integral).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn mark_binary(&mut self, j: usize) {
        assert!(j < self.num_vars, "variable index {j} out of range");
        if let Some(b) = self.binary.get_mut(j) {
            *b = true;
        }
    }

    /// Whether variable `j` is binary.
    #[must_use]
    pub fn is_binary(&self, j: usize) -> bool {
        self.binary.get(j).copied().unwrap_or(false)
    }

    /// Indices of the binary variables.
    #[must_use]
    pub fn binary_vars(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&j| self.is_binary(j)).collect()
    }

    /// Objective value of an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_vars`.
    #[must_use]
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.num_vars);
        self.objective.iter().zip(values).map(|(c, v)| c * v).sum()
    }

    /// Whether an assignment satisfies every constraint (and the [0, 1]
    /// box of binary variables) within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_vars`.
    #[must_use]
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        assert_eq!(values.len(), self.num_vars);
        for (j, &v) in values.iter().enumerate() {
            if v < -tol {
                return false;
            }
            if self.is_binary(j) && v > 1.0 + tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c
                .coeffs
                .iter()
                .map(|&(j, a)| a * values.get(j).copied().unwrap_or(0.0))
                .sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

// Compile-time guarantee that the error type is usable across threads
// and in `Box<dyn Error>` chains; `cargo xtask lint` (rule
// `error-traits`) checks that this assertion exists.
const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<MipError>()
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_checks_all_relations() {
        let mut p = Problem::new(2);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 3.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        p.add_constraint(&[(1, 2.0)], Relation::Eq, 2.0);
        assert!(p.is_feasible(&[2.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[0.5, 1.0], 1e-9)); // violates Ge
        assert!(!p.is_feasible(&[2.0, 1.5], 1e-9)); // violates Eq and Le
        assert!(!p.is_feasible(&[-0.1, 1.0], 1e-9)); // negative
    }

    #[test]
    fn binary_box_is_enforced() {
        let mut p = Problem::new(1);
        p.mark_binary(0);
        assert!(p.is_feasible(&[1.0], 1e-9));
        assert!(!p.is_feasible(&[1.5], 1e-9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let mut p = Problem::new(1);
        p.add_constraint(&[(3, 1.0)], Relation::Le, 0.0);
    }

    #[test]
    fn objective_value_is_dot_product() {
        let mut p = Problem::new(3);
        p.set_objective(&[1.0, -2.0, 0.5]);
        assert_eq!(p.objective_value(&[1.0, 1.0, 2.0]), 0.0);
    }
}
