use blot_geo::{Cuboid, Point};

use crate::ParseError;

/// One location tracking record: `(OID, TIME, LOC, A1..A5)`.
///
/// The three *core attributes* required by the BLOT data model are
/// [`oid`](Self::oid), [`time`](Self::time) and the location
/// ([`x`](Self::x), [`y`](Self::y)). The remaining five *common
/// attributes* model the telemetry a taxi GPS logger typically reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Object (vehicle) identifier.
    pub oid: u32,
    /// Timestamp, seconds since the dataset epoch.
    pub time: i64,
    /// Longitude, degrees east.
    pub x: f64,
    /// Latitude, degrees north.
    pub y: f64,
    /// Instantaneous speed, km/h.
    pub speed: f32,
    /// Heading, degrees clockwise from north in `[0, 360)`.
    pub heading: f32,
    /// Whether the taxi carries a fare.
    pub occupied: bool,
    /// Number of passengers on board.
    pub passengers: u8,
}

impl Record {
    /// Creates a record with the core attributes set and neutral common
    /// attributes (stationary, heading north, vacant).
    #[must_use]
    pub fn new(oid: u32, time: i64, x: f64, y: f64) -> Self {
        Self {
            oid,
            time,
            x,
            y,
            speed: 0.0,
            heading: 0.0,
            occupied: false,
            passengers: 0,
        }
    }

    /// The record's position in the spatio-temporal universe, with the
    /// timestamp widened to `f64` for geometry.
    #[must_use]
    pub fn point(&self) -> Point {
        #[allow(clippy::cast_precision_loss)] // timestamps ≪ 2^52
        Point::new(self.x, self.y, self.time as f64)
    }

    /// Whether the record falls inside the (closed) query range.
    #[must_use]
    pub fn in_range(&self, range: &Cuboid) -> bool {
        range.contains_point(&self.point())
    }

    /// Formats the record as one CSV line (no trailing newline), in the
    /// attribute order `oid,time,x,y,speed,heading,occupied,passengers`.
    #[must_use]
    pub fn to_csv_line(&self) -> String {
        format!(
            "{},{},{:.6},{:.6},{:.1},{:.1},{},{}",
            self.oid,
            self.time,
            self.x,
            self.y,
            self.speed,
            self.heading,
            u8::from(self.occupied),
            self.passengers
        )
    }

    /// Parses a record from one CSV line produced by
    /// [`to_csv_line`](Self::to_csv_line).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] when the line has the wrong number of fields
    /// or a field fails to parse.
    pub fn from_csv_line(line: &str) -> Result<Self, ParseError> {
        let mut fields = line.trim_end().split(',');
        let mut next = |name: &'static str| {
            fields
                .next()
                .ok_or(ParseError::MissingField { field: name })
        };
        let oid = parse(next("oid")?, "oid")?;
        let time = parse(next("time")?, "time")?;
        let x = parse(next("x")?, "x")?;
        let y = parse(next("y")?, "y")?;
        let speed = parse(next("speed")?, "speed")?;
        let heading = parse(next("heading")?, "heading")?;
        let occupied_raw: u8 = parse(next("occupied")?, "occupied")?;
        let passengers = parse(next("passengers")?, "passengers")?;
        if fields.next().is_some() {
            return Err(ParseError::TrailingFields);
        }
        Ok(Self {
            oid,
            time,
            x,
            y,
            speed,
            heading,
            occupied: occupied_raw != 0,
            passengers,
        })
    }
}

fn parse<T: std::str::FromStr>(s: &str, field: &'static str) -> Result<T, ParseError> {
    s.parse().map_err(|_| ParseError::BadField {
        field,
        value: s.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let r = Record {
            oid: 1234,
            time: 987_654,
            x: 121.473_701,
            y: 31.230_416,
            speed: 42.5,
            heading: 270.0,
            occupied: true,
            passengers: 2,
        };
        let line = r.to_csv_line();
        let back = Record::from_csv_line(&line).unwrap();
        assert_eq!(back.oid, r.oid);
        assert_eq!(back.time, r.time);
        assert!((back.x - r.x).abs() < 1e-6);
        assert!((back.y - r.y).abs() < 1e-6);
        assert_eq!(back.occupied, r.occupied);
        assert_eq!(back.passengers, r.passengers);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            Record::from_csv_line("1,2,3"),
            Err(ParseError::MissingField { .. })
        ));
        assert!(matches!(
            Record::from_csv_line("x,2,3.0,4.0,0.0,0.0,0,0"),
            Err(ParseError::BadField { field: "oid", .. })
        ));
        assert!(matches!(
            Record::from_csv_line("1,2,3.0,4.0,0.0,0.0,0,0,99"),
            Err(ParseError::TrailingFields)
        ));
    }

    #[test]
    fn in_range_uses_closed_bounds() {
        use blot_geo::Point;
        let r = Record::new(1, 100, 1.0, 2.0);
        let range = Cuboid::new(Point::new(1.0, 2.0, 100.0), Point::new(2.0, 3.0, 200.0));
        assert!(r.in_range(&range));
        let outside = Record::new(1, 99, 1.0, 2.0);
        assert!(!outside.in_range(&range));
    }
}
