use std::fmt;

/// Error parsing a record from its CSV interchange form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line ended before all eight attributes were read.
    MissingField {
        /// Name of the first missing attribute.
        field: &'static str,
    },
    /// An attribute failed to parse as its declared type.
    BadField {
        /// Name of the offending attribute.
        field: &'static str,
        /// The raw text that failed to parse.
        value: String,
    },
    /// The line carried more than eight attributes.
    TrailingFields,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingField { field } => write!(f, "missing field `{field}`"),
            Self::BadField { field, value } => {
                write!(f, "field `{field}` has unparseable value `{value}`")
            }
            Self::TrailingFields => write!(f, "line has trailing fields beyond the schema"),
        }
    }
}

impl std::error::Error for ParseError {}

// Compile-time guarantee that the error type is usable across threads
// and in `Box<dyn Error>` chains; `cargo xtask lint` (rule
// `error-traits`) checks that this assertion exists.
const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<ParseError>()
};
