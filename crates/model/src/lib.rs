//! Logical data model for BLOT location tracking data.
//!
//! §II-A of the paper defines a location tracking record as
//! `(OID, TIME, LOC, A1, …, Am)`: three *core attributes* (object ID,
//! timestamp, location) plus dataset-specific *common attributes*. The
//! evaluation dataset — a Shanghai taxi GPS log — carries eight attributes
//! in total, which this crate models concretely as [`Record`]: the three
//! core attributes plus five common ones typical of fleet telemetry
//! (speed, heading, occupancy flag, passenger count, metered fare).
//!
//! The *logical* view defined here is what all diverse replicas of a BLOT
//! store share (§II-E): physical replicas may partition and encode records
//! differently, but each can be rebuilt from any other because they encode
//! the same logical records.
//!
//! Two representations are provided:
//!
//! * [`Record`] — one row, convenient for generation and filtering;
//! * [`RecordBatch`] — a struct-of-arrays column batch, the unit handed to
//!   the physical encoding layer (`blot-codec`) and the natural shape for
//!   column-wise encodings.
//!
//! CSV interchange ([`RecordBatch::to_csv`] / [`RecordBatch::from_csv`])
//! matches the paper's baseline storage format ("a CSV file with each
//! line specifying a record", §II-C) and anchors compression-ratio
//! accounting: ratios in Table I are relative to uncompressed binary rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
mod record;

pub use batch::RecordBatch;
pub use error::ParseError;
pub use record::Record;

/// Number of attributes carried by each record (3 core + 5 common),
/// matching the paper's evaluation dataset ("each record contains 8
/// attributes (including the 3 core attributes)").
pub const ATTRIBUTE_COUNT: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_count_matches_record_csv_fields() {
        let r = Record::new(1, 2, 3.0, 4.0);
        let line = r.to_csv_line();
        assert_eq!(line.split(',').count(), ATTRIBUTE_COUNT);
    }
}
