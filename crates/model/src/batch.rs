// audit: allow-file(panic-reachability, columnar SoA accessors; every index is bounds-documented or derived from 0..len)
use blot_geo::{Cuboid, Point};

use crate::{ParseError, Record};

/// A struct-of-arrays batch of records — the unit of physical encoding.
///
/// Every column has the same length. The batch preserves insertion order;
/// partitioners typically sort batches by `(oid, time)` before encoding so
/// that delta encodings compress well (§II-C of the paper).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordBatch {
    /// Object identifiers.
    pub oids: Vec<u32>,
    /// Timestamps, seconds since the dataset epoch.
    pub times: Vec<i64>,
    /// Longitudes.
    pub xs: Vec<f64>,
    /// Latitudes.
    pub ys: Vec<f64>,
    /// Speeds, km/h.
    pub speeds: Vec<f32>,
    /// Headings, degrees.
    pub headings: Vec<f32>,
    /// Occupancy flags.
    pub occupied: Vec<bool>,
    /// Passenger counts.
    pub passengers: Vec<u8>,
}

impl RecordBatch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with capacity for `n` records.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            oids: Vec::with_capacity(n),
            times: Vec::with_capacity(n),
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            speeds: Vec::with_capacity(n),
            headings: Vec::with_capacity(n),
            occupied: Vec::with_capacity(n),
            passengers: Vec::with_capacity(n),
        }
    }

    /// Number of records in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// Whether the batch holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }

    /// Appends one record.
    pub fn push(&mut self, r: Record) {
        self.oids.push(r.oid);
        self.times.push(r.time);
        self.xs.push(r.x);
        self.ys.push(r.y);
        self.speeds.push(r.speed);
        self.headings.push(r.heading);
        self.occupied.push(r.occupied);
        self.passengers.push(r.passengers);
    }

    /// Appends all records of `other`.
    pub fn extend_from(&mut self, other: &Self) {
        self.oids.extend_from_slice(&other.oids);
        self.times.extend_from_slice(&other.times);
        self.xs.extend_from_slice(&other.xs);
        self.ys.extend_from_slice(&other.ys);
        self.speeds.extend_from_slice(&other.speeds);
        self.headings.extend_from_slice(&other.headings);
        self.occupied.extend_from_slice(&other.occupied);
        self.passengers.extend_from_slice(&other.passengers);
    }

    /// Returns record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    #[allow(clippy::indexing_slicing)]
    pub fn get(&self, i: usize) -> Record {
        Record {
            oid: self.oids[i],
            time: self.times[i],
            x: self.xs[i],
            y: self.ys[i],
            speed: self.speeds[i],
            heading: self.headings[i],
            occupied: self.occupied[i],
            passengers: self.passengers[i],
        }
    }

    /// The spatio-temporal position of record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    #[allow(clippy::indexing_slicing)]
    pub fn point(&self, i: usize) -> Point {
        #[allow(clippy::cast_precision_loss)]
        Point::new(self.xs[i], self.ys[i], self.times[i] as f64)
    }

    /// Iterates over the records.
    pub fn iter(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Builds a batch from a slice of records.
    #[must_use]
    pub fn from_records(records: &[Record]) -> Self {
        let mut b = Self::with_capacity(records.len());
        for &r in records {
            b.push(r);
        }
        b
    }

    /// Collects the batch into a vector of records.
    #[must_use]
    pub fn to_records(&self) -> Vec<Record> {
        self.iter().collect()
    }

    /// Reorders the batch in place so records are sorted by `(oid, time)`
    /// — the order column encodings expect.
    #[allow(clippy::indexing_slicing)] // indices come from 0..len
    pub fn sort_by_oid_time(&mut self) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by_key(|&i| (self.oids[i], self.times[i]));
        self.permute(&idx);
    }

    /// Reorders the batch in place so records are sorted by time.
    #[allow(clippy::indexing_slicing)] // indices come from 0..len
    pub fn sort_by_time(&mut self) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by_key(|&i| self.times[i]);
        self.permute(&idx);
    }

    fn permute(&mut self, idx: &[usize]) {
        #[allow(clippy::indexing_slicing)] // callers pass a permutation of 0..len
        fn apply<T: Copy>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| v[i]).collect()
        }
        self.oids = apply(&self.oids, idx);
        self.times = apply(&self.times, idx);
        self.xs = apply(&self.xs, idx);
        self.ys = apply(&self.ys, idx);
        self.speeds = apply(&self.speeds, idx);
        self.headings = apply(&self.headings, idx);
        self.occupied = apply(&self.occupied, idx);
        self.passengers = apply(&self.passengers, idx);
    }

    /// Records whose position falls inside the (closed) `range` — the
    /// final filtering step of BLOT query processing (§II-D).
    #[must_use]
    pub fn filter_range(&self, range: &Cuboid) -> Self {
        let mut out = Self::new();
        for i in 0..self.len() {
            if range.contains_point(&self.point(i)) {
                out.push(self.get(i));
            }
        }
        out
    }

    /// Count of records inside the (closed) `range` without materialising
    /// them.
    #[must_use]
    pub fn count_in_range(&self, range: &Cuboid) -> usize {
        (0..self.len())
            .filter(|&i| range.contains_point(&self.point(i)))
            .count()
    }

    /// The tight spatio-temporal bounding box of the batch, or `None` for
    /// an empty batch.
    #[must_use]
    pub fn bounding_box(&self) -> Option<Cuboid> {
        if self.is_empty() {
            return None;
        }
        let mut min = self.point(0);
        let mut max = min;
        for i in 1..self.len() {
            let p = self.point(i);
            min = min.min_with(&p);
            max = max.max_with(&p);
        }
        Some(Cuboid::new(min, max))
    }

    /// Serialises the batch as CSV text (one line per record, no header).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.len() * 48);
        for r in self.iter() {
            s.push_str(&r.to_csv_line());
            s.push('\n');
        }
        s
    }

    /// Parses a batch from CSV text produced by [`to_csv`](Self::to_csv).
    /// Empty lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`] encountered.
    pub fn from_csv(text: &str) -> Result<Self, ParseError> {
        let mut b = Self::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            b.push(Record::from_csv_line(line)?);
        }
        Ok(b)
    }
}

impl FromIterator<Record> for RecordBatch {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        let mut b = Self::new();
        for r in iter {
            b.push(r);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordBatch {
        let mut b = RecordBatch::new();
        b.push(Record::new(2, 30, 1.0, 1.0));
        b.push(Record::new(1, 20, 2.0, 2.0));
        b.push(Record::new(1, 10, 3.0, 3.0));
        b
    }

    #[test]
    fn push_get_len() {
        let b = sample();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.get(1).oid, 1);
        assert_eq!(b.get(1).time, 20);
    }

    #[test]
    fn sort_by_oid_time_orders_all_columns() {
        let mut b = sample();
        b.sort_by_oid_time();
        assert_eq!(b.oids, vec![1, 1, 2]);
        assert_eq!(b.times, vec![10, 20, 30]);
        assert_eq!(b.xs, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn filter_range_and_count_agree() {
        let b = sample();
        let range = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(2.5, 2.5, 25.0));
        let f = b.filter_range(&range);
        assert_eq!(f.len(), b.count_in_range(&range));
        assert_eq!(f.len(), 1);
        assert_eq!(f.get(0).oid, 1);
    }

    #[test]
    fn bounding_box_is_tight() {
        let b = sample();
        let bb = b.bounding_box().unwrap();
        assert_eq!(bb.min(), Point::new(1.0, 1.0, 10.0));
        assert_eq!(bb.max(), Point::new(3.0, 3.0, 30.0));
        assert!(RecordBatch::new().bounding_box().is_none());
    }

    #[test]
    fn csv_roundtrip_preserves_batch() {
        let b = sample();
        let csv = b.to_csv();
        let back = RecordBatch::from_csv(&csv).unwrap();
        assert_eq!(back.len(), b.len());
        assert_eq!(back.oids, b.oids);
        assert_eq!(back.times, b.times);
    }

    #[test]
    fn from_iterator_collects() {
        let b: RecordBatch = (0..5)
            .map(|i| Record::new(i, i64::from(i), 0.0, 0.0))
            .collect();
        assert_eq!(b.len(), 5);
        assert_eq!(b.oids, vec![0, 1, 2, 3, 4]);
    }
}
