//! Property tests for the logical data model.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_model::{Record, RecordBatch};
use proptest::prelude::*;

/// Records whose fields survive the CSV text format exactly: positions
/// on the 1e-6 grid (like real GPS output), speeds/headings on 0.1
/// steps.
fn arb_csv_exact_record() -> impl Strategy<Value = Record> {
    (
        any::<u32>(),
        -1_000_000_000i64..1_000_000_000,
        -180_000_000i64..180_000_000,
        -90_000_000i64..90_000_000,
        0u32..1400,
        0u32..3599,
        any::<bool>(),
        0u8..=8,
    )
        .prop_map(|(oid, time, xq, yq, sq, hq, occupied, passengers)| Record {
            oid,
            time,
            x: xq as f64 / 1e6,
            y: yq as f64 / 1e6,
            speed: sq as f32 / 10.0,
            heading: hq as f32 / 10.0,
            occupied,
            passengers,
        })
}

proptest! {
    #[test]
    fn csv_roundtrip_is_exact_on_gps_grid(r in arb_csv_exact_record()) {
        let line = r.to_csv_line();
        let back = Record::from_csv_line(&line).unwrap();
        prop_assert_eq!(back.oid, r.oid);
        prop_assert_eq!(back.time, r.time);
        prop_assert!((back.x - r.x).abs() < 5e-7, "x {} vs {}", back.x, r.x);
        prop_assert!((back.y - r.y).abs() < 5e-7);
        prop_assert!((back.speed - r.speed).abs() < 0.051);
        prop_assert_eq!(back.occupied, r.occupied);
        prop_assert_eq!(back.passengers, r.passengers);
    }

    #[test]
    fn batch_csv_roundtrip_preserves_length_and_keys(
        records in prop::collection::vec(arb_csv_exact_record(), 0..80)
    ) {
        let batch = RecordBatch::from_records(&records);
        let back = RecordBatch::from_csv(&batch.to_csv()).unwrap();
        prop_assert_eq!(back.len(), batch.len());
        prop_assert_eq!(&back.oids, &batch.oids);
        prop_assert_eq!(&back.times, &batch.times);
    }

    #[test]
    fn sorting_is_a_permutation(records in prop::collection::vec(arb_csv_exact_record(), 0..60)) {
        let batch = RecordBatch::from_records(&records);
        let mut sorted = batch.clone();
        sorted.sort_by_oid_time();
        prop_assert_eq!(sorted.len(), batch.len());
        // Keys are non-decreasing…
        for w in sorted.to_records().windows(2) {
            prop_assert!((w[0].oid, w[0].time) <= (w[1].oid, w[1].time));
        }
        // …and the multiset of records is unchanged.
        let canon = |b: &RecordBatch| {
            let mut v: Vec<String> = b.iter().map(|r| r.to_csv_line()).collect();
            v.sort();
            v
        };
        prop_assert_eq!(canon(&sorted), canon(&batch));
    }

    #[test]
    fn filter_plus_complement_partitions_the_batch(
        records in prop::collection::vec(arb_csv_exact_record(), 0..60),
        cx in -0.5f64..0.5, cy in -0.5f64..0.5,
    ) {
        use blot_geo::{Cuboid, Point};
        let batch = RecordBatch::from_records(&records);
        let range = Cuboid::new(
            Point::new(cx - 50.0, cy - 50.0, -5e8),
            Point::new(cx + 50.0, cy + 50.0, 5e8),
        );
        let inside = batch.filter_range(&range).len();
        let outside = (0..batch.len())
            .filter(|&i| !range.contains_point(&batch.point(i)))
            .count();
        prop_assert_eq!(inside + outside, batch.len());
        prop_assert_eq!(inside, batch.count_in_range(&range));
    }
}
