//! Recursive-descent JSON parser.

use crate::Json;
use std::fmt;

/// Errors produced while parsing or reconstructing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Syntactically invalid input: message plus byte offset.
    Syntax {
        /// What went wrong.
        message: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// Well-formed JSON whose shape does not match the expected type.
    Shape {
        /// What was expected.
        message: String,
    },
}

impl JsonError {
    /// A [`JsonError::Shape`] with the given message — the error every
    /// [`FromJson`](crate::FromJson) impl reports when well-formed JSON
    /// has the wrong structure.
    pub fn shape(message: impl Into<String>) -> Self {
        JsonError::Shape {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { message, offset } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::Shape { message } => write!(f, "JSON shape error: {message}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Syntax`] with a byte offset when the input
    /// is not valid JSON or has trailing non-whitespace.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::Syntax {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self
            .bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(word.as_bytes()))
        {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // encoding is already valid; re-assemble the char.
                    let len = utf8_len(first);
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair handling for \uD800-\uDBFF.
        if (0xD800..=0xDBFF).contains(&first) {
            if self
                .bytes
                .get(self.pos..)
                .is_some_and(|rest| rest.starts_with(b"\\u"))
            {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&second) {
                    let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a non-zero leading digit.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after `.`"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            self.digits();
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or_default())
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// Compile-time guarantee that the error type is usable across threads
// and in `Box<dyn Error>` chains; `cargo xtask lint` (rule
// `error-traits`) checks that this assertion exists.
const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<JsonError>()
};
