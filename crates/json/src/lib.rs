//! Dependency-free JSON for BLOT.
//!
//! The build environment has no crates.io access, so persistence
//! (store manifests, benchmark result files) cannot use `serde_json`.
//! This crate provides the small JSON surface the workspace needs:
//!
//! * [`Json`] — an owned JSON tree with accessor helpers,
//! * a recursive-descent [`Json::parse`] with precise error positions,
//! * compact [`std::fmt::Display`] and [`Json::pretty`] printers,
//! * [`ToJson`] / [`FromJson`] conversion traits implemented across the
//!   workspace's persisted types.
//!
//! Numbers are kept as `f64`. Integers round-trip exactly up to
//! 2^53 — far above any record count or byte size BLOT persists.

use std::fmt;

mod parse;

pub use parse::JsonError;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on round-trip.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Self {
        Json::Obj(pairs.map(|(k, v)| (k.to_owned(), v)).to_vec())
    }

    /// Looks up a key in an object; `None` for absent keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`], but an absent key is an error naming the key.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Shape`] if `self` is not an object or lacks
    /// `key`.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing field `{key}`")))
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT_INT =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                use fmt::Write;
                // Compact form for scalars and empty containers; the
                // formatter below never fails writing into a String.
                let _ = write!(out, "{other}");
            }
        }
    }
}

/// Largest magnitude at which every integer is exactly representable.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact (single-line) serialisation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; persist as null like serde_json does.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= MAX_EXACT_INT {
        write!(f, "{n:.0}")
    } else {
        // Shortest round-trip form of an f64.
        write!(f, "{n}")
    }
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Serialises `self`.
    fn to_json(&self) -> Json;
}

/// Fallible reconstruction from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Rebuilds a value, validating shape and ranges.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Shape`] when `value` has the wrong type,
    /// lacks a required field, or holds an out-of-range number.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_f64()
            .ok_or_else(|| JsonError::shape("expected a number"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_u64()
            .ok_or_else(|| JsonError::shape("expected a non-negative integer"))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_usize()
            .ok_or_else(|| JsonError::shape("expected a non-negative integer"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::shape("expected a string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::shape("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\n\""] {
            let v = Json::parse(src).expect(src);
            let back = Json::parse(&v.to_string()).expect("reparse");
            assert_eq!(v, back, "{src}");
        }
    }

    #[test]
    fn nested_round_trip_compact_and_pretty() {
        let src = r#"{"a":[1,2,{"b":null}],"c":{"d":true,"e":"x\"y"},"f":-0.25}"#;
        let v = Json::parse(src).expect("parse");
        assert_eq!(Json::parse(&v.to_string()).expect("compact"), v);
        assert_eq!(Json::parse(&v.pretty()).expect("pretty"), v);
    }

    #[test]
    fn object_accessors() {
        let v = Json::obj([
            ("n", Json::Num(42.0)),
            ("s", Json::Str("x".into())),
            ("b", Json::Bool(true)),
            ("a", Json::Arr(vec![Json::Null])),
        ]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("zz").is_none());
        assert!(v.field("zz").is_err());
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let n = (1u64 << 53) - 1;
        let v = n.to_json();
        let s = v.to_string();
        assert_eq!(s, "9007199254740991");
        assert_eq!(
            u64::from_json(&Json::parse(&s).expect("parse")).expect("u64"),
            n
        );
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        for src in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "tru",
            "{\"a\" 1}",
            "01",
            "1e",
        ] {
            assert!(Json::parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<JsonError>();
    }
}
