//! Monotone counters and signed gauges.

#[cfg(not(feature = "off"))]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
#[cfg(not(feature = "off"))]
use std::sync::Arc;

/// A monotonically increasing event counter.
///
/// Cloning produces another handle to the same cell; recording is one
/// relaxed `fetch_add`. With the `off` feature the handle is zero-sized
/// and every operation is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    #[cfg(not(feature = "off"))]
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter (not listed in any registry).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "off"))]
        self.cell.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "off")]
        let _ = n;
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 in a compiled-out build).
    #[must_use]
    pub fn value(&self) -> u64 {
        #[cfg(not(feature = "off"))]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(feature = "off")]
        {
            0
        }
    }
}

/// A signed gauge: a value that goes up and down (queue depths,
/// in-flight work).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    #[cfg(not(feature = "off"))]
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a detached gauge (not listed in any registry).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (negative to decrement).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(not(feature = "off"))]
        self.cell.fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "off")]
        let _ = delta;
    }

    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: i64) {
        #[cfg(not(feature = "off"))]
        self.cell.store(value, Ordering::Relaxed);
        #[cfg(feature = "off")]
        let _ = value;
    }

    /// Current value (0 in a compiled-out build).
    #[must_use]
    pub fn value(&self) -> i64 {
        #[cfg(not(feature = "off"))]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(feature = "off")]
        {
            0
        }
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_cell() {
        let c = Counter::new();
        let d = c.clone();
        c.inc();
        d.add(2);
        assert_eq!(c.value(), 3);
        assert_eq!(d.value(), 3);
    }

    #[test]
    fn gauge_goes_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.value(), 3);
        g.set(-7);
        assert_eq!(g.value(), -7);
    }
}
