//! Snapshot rendering: aligned text tables and JSON.
//!
//! The JSON emitter is local to this crate on purpose: `blot-obs` sits
//! below every other workspace crate (including `blot-json`), and the
//! shape it emits is flat enough that a full value model would be
//! overkill. Output is always valid JSON — names are escaped and
//! non-finite numbers are clamped to 0.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::registry::Snapshot;

/// Escapes a metric name for use inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (non-finite values become 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// The quantiles every histogram rendering reports.
const QUANTILES: &[(&str, f64)] = &[("p50", 0.5), ("p90", 0.9), ("p99", 0.99)];

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"mean\":{}",
        h.count(),
        json_f64(h.sum),
        json_f64(h.mean())
    );
    for &(name, q) in QUANTILES {
        let _ = write!(out, ",\"{name}\":{}", json_f64(h.quantile(q)));
    }
    out.push('}');
    out
}

impl Snapshot {
    /// Renders the snapshot as a JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum,mean,p50,p90,p99}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(name), histogram_json(h));
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as an aligned, human-readable table.
    #[must_use]
    pub fn render_text(&self) -> String {
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms (count / mean / p50 / p90 / p99):");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {}  {:.3}  {:.3}  {:.3}  {:.3}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.99)
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_names_and_clamps_non_finite() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn snapshot_json_has_all_three_sections() {
        let r = crate::MetricsRegistry::new();
        r.counter("store.queries").add(3);
        r.gauge("pool.queue_depth").set(2);
        r.histogram("store.query.wall_ms").record(5.0);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"gauges\":{"), "{json}");
        assert!(
            json.contains("\"store.query.wall_ms\":{\"count\":"),
            "{json}"
        );
        assert!(json.ends_with("}}"), "{json}");
    }

    #[test]
    fn text_table_lists_every_metric() {
        let r = crate::MetricsRegistry::new();
        r.counter("a").inc();
        r.histogram("bb").record(1.0);
        let text = r.snapshot().render_text();
        assert!(text.contains("counters:"));
        assert!(text.contains("histograms"));
        assert!(text.contains("bb"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let s = Snapshot::default();
        assert!(s.render_text().contains("no metrics"));
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
