//! The serving layer's instrument bundle.
//!
//! `blot-server` registers these alongside the store's own metrics in
//! the *same* registry, so one `Stats` request (or `blot stats
//! --remote`) snapshots the whole serving stack at once. Names follow
//! the store's dotted convention under a `server.` prefix.

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::registry::MetricsRegistry;

/// Handles for everything the serving layer records. Cheap to clone;
/// clones share the underlying cells.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Currently open client connections (`server.connections`).
    pub connections: Gauge,
    /// Connections accepted over the server's lifetime
    /// (`server.connections_accepted`).
    pub accepted: Counter,
    /// Connections turned away at the accept loop because the handler
    /// pool was full (`server.connections_rejected`).
    pub rejected: Counter,
    /// Queries currently waiting in the admission queue
    /// (`server.queue_depth`).
    pub queue_depth: Gauge,
    /// Queries shed with an `Overloaded` reply because the admission
    /// queue was full (`server.shed`).
    pub shed: Counter,
    /// Requests decoded, of any kind (`server.requests`).
    pub requests: Counter,
    /// Requests answered with a wire error (`server.request_errors`).
    pub request_errors: Counter,
    /// Wall-clock latency from frame decode to reply write, in
    /// milliseconds (`server.request_ms`).
    pub request_ms: Histogram,
    /// Queries per pooled micro-batch (`server.batch_size`).
    pub batch_size: Histogram,
    /// Micro-batches executed (`server.batches`).
    pub batches: Counter,
}

impl ServerMetrics {
    /// Registers (or re-attaches to) the serving instruments in
    /// `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            connections: registry.gauge("server.connections"),
            accepted: registry.counter("server.connections_accepted"),
            rejected: registry.counter("server.connections_rejected"),
            queue_depth: registry.gauge("server.queue_depth"),
            shed: registry.counter("server.shed"),
            requests: registry.counter("server.requests"),
            request_errors: registry.counter("server.request_errors"),
            request_ms: registry.histogram("server.request_ms"),
            batch_size: registry.histogram("server.batch_size"),
            batches: registry.counter("server.batches"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_snapshots() {
        let registry = MetricsRegistry::new();
        let a = ServerMetrics::register(&registry);
        let b = ServerMetrics::register(&registry);
        a.requests.inc();
        b.requests.inc();
        a.connections.add(1);
        a.request_ms.record(1.5);
        let snap = registry.snapshot();
        if crate::enabled() {
            assert_eq!(snap.counter("server.requests"), Some(2));
            assert_eq!(snap.gauge("server.connections"), Some(1));
            assert!(snap.histogram("server.request_ms").is_some());
        }
    }
}
