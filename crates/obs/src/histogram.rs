//! Fixed-bucket log-scale histograms with a lock-free record path.
//!
//! Values (simulated milliseconds, wall milliseconds, predicted/actual
//! ratios) span many orders of magnitude, so buckets grow geometrically
//! with ratio √2: bucket `i ≥ 1` covers `[2^((i-1)/2 - 32), 2^(i/2 - 32))`,
//! bucket 0 collects everything at or below `2^-32` (including zero and
//! non-finite junk), and the last bucket is the overflow. 128 buckets
//! therefore cover `2^-32 … 2^31.5` — sub-nanosecond to roughly three
//! weeks when the unit is milliseconds — with every bucket at most √2
//! wide, bounding the quantile error at ~±19%.
//!
//! Recording touches exactly one bucket counter (relaxed `fetch_add`)
//! plus a CAS loop on the bit-packed f64 running sum. Snapshots derive
//! the total count from the bucket counts, so a snapshot taken while
//! other threads record can never *tear* — report a count that its own
//! buckets do not add up to.

#[cfg(not(feature = "off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "off"))]
use std::sync::Arc;

/// Number of buckets in every histogram.
pub const BUCKETS: usize = 128;

/// Growth exponent denominator: bucket bounds are powers of `2^(1/2)`.
const HALF_STEPS_OFFSET: f64 = 32.0;

/// Lower bound of bucket `i` (0 for the underflow bucket). Bounds are
/// strictly increasing in `i`; bucket `i` covers
/// `[bucket_lower_bound(i), bucket_lower_bound(i + 1))`.
#[must_use]
pub fn bucket_lower_bound(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let half_steps = (i - 1) as f64;
    (half_steps / 2.0 - HALF_STEPS_OFFSET).exp2()
}

/// Representative value of bucket `i`: the geometric midpoint of its
/// bounds (0 for the underflow bucket, the lower bound for overflow).
#[must_use]
fn bucket_midpoint(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    if i >= BUCKETS - 1 {
        return bucket_lower_bound(BUCKETS - 1);
    }
    #[allow(clippy::cast_precision_loss)]
    let half_steps = (i - 1) as f64;
    ((half_steps + 0.5) / 2.0 - HALF_STEPS_OFFSET).exp2()
}

/// Bucket index for a recorded value.
#[cfg(not(feature = "off"))]
fn bucket_index(value: f64) -> usize {
    let floor = bucket_lower_bound(1);
    if !value.is_finite() || value <= floor {
        return 0;
    }
    let raw = ((value.log2() + HALF_STEPS_OFFSET) * 2.0)
        .floor()
        .clamp(0.0, (BUCKETS - 2) as f64);
    // In-range by the clamp above.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = raw as usize;
    idx + 1
}

#[cfg(not(feature = "off"))]
#[derive(Debug)]
struct Inner {
    buckets: [AtomicU64; BUCKETS],
    /// Running Σ of recorded values, stored as f64 bits and updated by
    /// compare-exchange (no float atomics in std).
    sum_bits: AtomicU64,
}

#[cfg(not(feature = "off"))]
impl Default for Inner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }
}

/// A concurrent log-scale histogram. Cloning produces another handle to
/// the same buckets; with the `off` feature the handle is zero-sized
/// and recording is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    #[cfg(not(feature = "off"))]
    inner: Arc<Inner>,
}

impl Histogram {
    /// Creates a detached histogram (not listed in any registry).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Non-finite and non-positive values land in
    /// the underflow bucket and contribute nothing to the sum.
    #[inline]
    pub fn record(&self, value: f64) {
        #[cfg(not(feature = "off"))]
        {
            let i = bucket_index(value);
            if let Some(bucket) = self.inner.buckets.get(i) {
                bucket.fetch_add(1, Ordering::Relaxed);
            }
            if value.is_finite() && value > 0.0 {
                let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
                loop {
                    let next = (f64::from_bits(cur) + value).to_bits();
                    match self.inner.sum_bits.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => cur = seen,
                    }
                }
            }
        }
        #[cfg(feature = "off")]
        let _ = value;
    }

    /// A consistent point-in-time copy of the distribution (empty in a
    /// compiled-out build).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(not(feature = "off"))]
        {
            HistogramSnapshot {
                buckets: self
                    .inner
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                sum: f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed)),
            }
        }
        #[cfg(feature = "off")]
        {
            HistogramSnapshot::default()
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state. The total count is
/// always derived from the buckets, so it cannot disagree with them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`BUCKETS`] entries; empty when the histogram
    /// was compiled out or never recorded into a registry snapshot).
    pub buckets: Vec<u64>,
    /// Σ of recorded (finite, positive) values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total recorded events.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Arithmetic mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let nf = n as f64;
        self.sum / nf
    }

    /// Approximate quantile `q ∈ [0, 1]`: the geometric midpoint of the
    /// bucket where the cumulative count crosses `q·count` (0 when
    /// empty). Error is bounded by the √2 bucket width.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let target_f = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0);
        let mut remaining = target_f;
        for (i, &c) in self.buckets.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let cf = c as f64;
            if cf >= remaining {
                return bucket_midpoint(i);
            }
            remaining -= cf;
        }
        bucket_midpoint(BUCKETS - 1)
    }

    /// Folds `other` into `self` (used to aggregate per-replica drift
    /// histograms by scheme). An empty side adopts the other's buckets.
    pub fn merge(&mut self, other: &Self) {
        if self.buckets.is_empty() {
            self.buckets.clone_from(&other.buckets);
        } else {
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
        }
        self.sum += other.sum;
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_strictly_monotone() {
        for i in 1..=BUCKETS {
            assert!(
                bucket_lower_bound(i) > bucket_lower_bound(i - 1),
                "bound {i} must exceed bound {}",
                i - 1
            );
        }
    }

    #[test]
    fn values_land_in_their_bucket() {
        for &v in &[1e-9, 0.5, 1.0, 3.0, 250.0, 1e9] {
            let i = bucket_index(v);
            assert!(v >= bucket_lower_bound(i), "{v} vs bucket {i}");
            if i < BUCKETS - 1 {
                assert!(v < bucket_lower_bound(i + 1), "{v} vs bucket {i}");
            }
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        assert_eq!(bucket_index(1e30), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(10.0);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert!((s.mean() - 10.0).abs() < 1e-9);
        let p50 = s.quantile(0.5);
        assert!(
            (7.0..15.0).contains(&p50),
            "p50 {p50} must be within one bucket of 10"
        );
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1.0);
        b.record(4.0);
        b.record(16.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
        assert!((s.sum - 21.0).abs() < 1e-9);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&s);
        assert_eq!(empty.count(), 3);
    }
}
