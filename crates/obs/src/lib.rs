//! blot-obs — the observability layer of the BLOT store.
//!
//! A dependency-free, std-only metrics kit: the rest of the workspace
//! instruments its hot paths with handles from a [`MetricsRegistry`]
//! and never pays more than a relaxed atomic per event.
//!
//! * [`Counter`] / [`Gauge`] — monotone and signed event counts;
//! * [`Histogram`] — fixed-bucket log-scale value distribution with a
//!   lock-free record path and tear-free snapshots;
//! * [`Span`] — RAII wall-time measurement into a histogram
//!   (monotonic [`std::time::Instant`] timing);
//! * [`MetricsRegistry`] — names instruments and produces [`Snapshot`]s
//!   with text-table and JSON rendering;
//! * [`trace`] — structured query tracing: [`TraceSpan`] trees with
//!   wire-propagable [`SpanContext`]s, recorded into a bounded
//!   [`FlightRecorder`] ring with text / JSON / Chrome `trace_event`
//!   exporters.
//!
//! # Design rules
//!
//! * **Lock-free recording.** Registration (`registry.counter("…")`)
//!   takes a mutex; recording (`c.inc()`, `h.record(x)`) is relaxed
//!   atomics only. Callers fetch handles once, at construction, and
//!   clone them into closures — handles are `Arc`-backed and cheap.
//! * **Tear-free snapshots.** A histogram's count is *derived* from its
//!   bucket counts at snapshot time, so a snapshot taken mid-record can
//!   never report a count that disagrees with its buckets.
//! * **Compiled-out mode.** With the `off` cargo feature every handle
//!   is zero-sized and every record call a no-op; [`enabled`] reports
//!   which build this is. The bench-smoke overhead guard compares the
//!   two builds and fails if instrumentation costs more than 5%.

#![warn(missing_docs)]

mod counter;
mod export;
mod histogram;
mod registry;
mod router;
mod server;
mod span;
pub mod trace;

pub use counter::{Counter, Gauge};
pub use histogram::{bucket_lower_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricsRegistry, Snapshot};
pub use router::RouterMetrics;
pub use server::ServerMetrics;
pub use span::Span;
pub use trace::{
    names, FlightRecorder, Name, SpanContext, SpanHandle, SpanId, SpanRecord, TraceId, TraceSpan,
};

/// True when the record path is compiled in (the `off` feature is not
/// active). The overhead-guard binary prints this next to its timings
/// so the two builds cannot be confused.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(not(feature = "off"))
}
