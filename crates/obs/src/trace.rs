//! Structured query tracing: span trees into a bounded flight recorder.
//!
//! A [`TraceSpan`] is an RAII wall-time measurement like [`crate::Span`],
//! but instead of folding into a histogram it records a *structured*
//! [`SpanRecord`] — trace id, span id, parent link, name, start/duration
//! in microseconds, simulated milliseconds, and up to four static
//! key/value annotations — into a [`FlightRecorder`]: a bounded ring
//! buffer that keeps the most recent spans and evicts the oldest.
//!
//! # Design rules (mirroring the metrics kit)
//!
//! * **Lock-free recording.** The workspace forbids `unsafe`, so each
//!   ring slot is a seqlock over plain `AtomicU64` words: a writer
//!   claims a ticket with one `fetch_add`, marks the slot's sequence
//!   odd, stores the record's words, and marks it even. No mutex is
//!   ever taken on the record path.
//! * **Tear-free snapshots.** A reader validates the slot sequence
//!   before and after copying the words; a torn read (writer wrapped
//!   the ring mid-copy) is detected and the slot skipped. Every record
//!   a snapshot returns was written in full. The snapshot is a sample,
//!   not a consistent cut: concurrent writers may evict slots while it
//!   runs.
//! * **Static vocabulary.** Span names and annotation keys are [`Name`]
//!   indices into a fixed table ([`names`]), so a record is plain
//!   numbers end to end — which is what lets it live in atomic words.
//! * **Compiled-out mode.** With the `off` feature every handle here is
//!   a ZST and every record call a no-op; only the plain-data id types
//!   ([`TraceId`], [`SpanId`], [`SpanContext`]) stay real, because the
//!   wire protocol carries them regardless of how the peer was built.

use std::fmt;
use std::fmt::Write as _;
#[cfg(not(feature = "off"))]
use std::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(feature = "off")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "off"))]
use std::sync::Arc;
#[cfg(not(feature = "off"))]
use std::time::Instant;

/// Maximum static key/value annotations per span.
pub const MAX_NOTES: usize = 4;

/// The fixed span-name / annotation-key vocabulary. A [`Name`] is an
/// index into this table; keeping names numeric is what allows the
/// flight recorder to store records as atomic words without `unsafe`.
const VOCAB: &[&str] = &[
    "store.query",      // 0
    "route",            // 1
    "scan",             // 2
    "merge",            // 3
    "scan.unit",        // 4
    "unit.prune",       // 5
    "unit.decode",      // 6
    "pool.task",        // 7
    "server.request",   // 8
    "server.admission", // 9
    "server.batch",     // 10
    "client",           // 11
    "replica",          // 12
    "units",            // 13
    "units_skipped",    // 14
    "bytes",            // 15
    "bytes_skipped",    // 16
    "records",          // 17
    "batch_size",       // 18
    "pruned",           // 19
    "drift_permille",   // 20
    "queries",          // 21
    "failed_over",      // 22
    "partition",        // 23
    "queue_us",         // 24
    "router.query",     // 25
    "router.shard",     // 26
    "shard",            // 27
    "fanout",           // 28
];

/// A span name or annotation key: an index into the static vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(u16);

impl Name {
    /// The vocabulary string this name stands for.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        VOCAB.get(usize::from(self.0)).copied().unwrap_or("?")
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The span-name and annotation-key constants (the trace schema).
pub mod names {
    use super::Name;

    /// Root span of one store query.
    pub const QUERY: Name = Name(0);
    /// Replica choice + task planning stage.
    pub const ROUTE: Name = Name(1);
    /// The scan stage: all per-unit tasks of one query.
    pub const SCAN: Name = Name(2);
    /// Result assembly: merge per-unit outputs, drift accounting.
    pub const MERGE: Name = Name(3);
    /// One storage unit's scan task (worker thread).
    pub const SCAN_UNIT: Name = Name(4);
    /// Zone-map footer consult ahead of a unit's payload fetch.
    pub const UNIT_PRUNE: Name = Name(5);
    /// Decode + filter of one unit's payload.
    pub const UNIT_DECODE: Name = Name(6);
    /// Scan-pool task wrapper (queue wait + execution).
    pub const POOL_TASK: Name = Name(7);
    /// Server-side root of one remote request.
    pub const SERVER_REQUEST: Name = Name(8);
    /// Admission-queue wait: submit → batch drain.
    pub const SERVER_ADMISSION: Name = Name(9);
    /// Batch residency: drain → response slot filled.
    pub const SERVER_BATCH: Name = Name(10);
    /// Client-side root span around one remote call.
    pub const CLIENT: Name = Name(11);
    /// Key: replica id routed to.
    pub const REPLICA: Name = Name(12);
    /// Key: units scanned.
    pub const UNITS: Name = Name(13);
    /// Key: units skipped via zone maps.
    pub const UNITS_SKIPPED: Name = Name(14);
    /// Key: bytes transferred.
    pub const BYTES: Name = Name(15);
    /// Key: payload bytes pruning avoided.
    pub const BYTES_SKIPPED: Name = Name(16);
    /// Key: records matched.
    pub const RECORDS: Name = Name(17);
    /// Key: queries in the same server batch.
    pub const BATCH_SIZE: Name = Name(18);
    /// Key: 1 when a zone map pruned the unit.
    pub const PRUNED: Name = Name(19);
    /// Key: predicted/measured cost ratio × 1000.
    pub const DRIFT_PERMILLE: Name = Name(20);
    /// Key: query count (batch roots).
    pub const QUERIES: Name = Name(21);
    /// Key: replicas failed over before this one answered.
    pub const FAILED_OVER: Name = Name(22);
    /// Key: partition index of a scanned unit.
    pub const PARTITION: Name = Name(23);
    /// Key: microseconds a pool task waited before running.
    pub const QUEUE_US: Name = Name(24);
    /// Coordinator-side root of one scatter-gather query.
    pub const ROUTER_QUERY: Name = Name(25);
    /// One shard's leg of a scatter-gather query (dispatch → reply).
    pub const ROUTER_SHARD: Name = Name(26);
    /// Key: shard id a sub-query was routed to.
    pub const SHARD: Name = Name(27);
    /// Key: shards a query fanned out to.
    pub const FANOUT: Name = Name(28);
}

/// 128-bit trace identifier. Plain data — real in every build, because
/// the wire protocol carries it even when recording is compiled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Generates a fresh, non-zero trace id from the wall clock and a
    /// process-wide counter (no OS randomness needed).
    #[must_use]
    pub fn generate() -> Self {
        let a = next_entropy();
        let b = next_entropy();
        Self((u128::from(a) << 64 | u128::from(b)).max(1))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// 64-bit span identifier, unique within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Generates a fresh, non-zero span id.
    #[must_use]
    pub fn generate() -> Self {
        Self(next_entropy().max(1))
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A position in a trace: the id pair children parent themselves under.
/// This is what crosses thread and wire boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The trace every descendant span shares.
    pub trace: TraceId,
    /// The span new children name as their parent.
    pub span: SpanId,
}

impl SpanContext {
    /// A fresh root context (new trace, new root span id). Used by
    /// clients that start a trace without owning a recorder.
    #[must_use]
    pub fn fresh() -> Self {
        Self {
            trace: TraceId::generate(),
            span: SpanId::generate(),
        }
    }
}

/// Splitmix64 round: the id generator's mixer.
const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One 64-bit id word: wall-clock nanos mixed with a process counter,
/// so ids are unique within a process and overwhelmingly likely unique
/// across the client/server pair of one request.
fn next_entropy() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED);
    let tick = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
        .unwrap_or(0);
    splitmix64(nanos ^ tick.rotate_left(17)) ^ splitmix64(tick)
}

/// One finished span, as stored in (and snapshotted from) the recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span id; `None` for trace roots.
    pub parent: Option<SpanId>,
    /// Span name (vocabulary index).
    pub name: Name,
    /// Microseconds from the recorder's epoch to the span's start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Simulated milliseconds attributed to the span (0 if none).
    pub sim_ms: f64,
    notes: [(Name, u64); MAX_NOTES],
    n_notes: u8,
}

impl SpanRecord {
    /// The span's static key/value annotations.
    #[must_use]
    pub fn notes(&self) -> &[(Name, u64)] {
        let n = usize::from(self.n_notes).min(MAX_NOTES);
        self.notes.get(..n).unwrap_or(&[])
    }

    /// Looks up one annotation by key.
    #[must_use]
    pub fn note_value(&self, key: Name) -> Option<u64> {
        self.notes()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }
}

/// Words per ring slot: the fixed atomic-word encoding of a
/// [`SpanRecord`]. Layout: trace hi, trace lo, span, parent,
/// name|n_notes, note keys (4×16 packed), note values ×4, start_us,
/// dur_us, sim_ms bits.
#[cfg(not(feature = "off"))]
const SLOT_WORDS: usize = 13;

#[cfg(not(feature = "off"))]
#[derive(Debug)]
struct Slot {
    /// 0 = never written; odd = write in progress; even = `2·ticket+2`
    /// of the last completed write.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

#[cfg(not(feature = "off"))]
impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[cfg(not(feature = "off"))]
fn encode_words(rec: &SpanRecord) -> [u64; SLOT_WORDS] {
    let mut keys = 0u64;
    for (i, (k, _)) in rec.notes.iter().enumerate() {
        keys |= u64::from(k.0) << (16 * i);
    }
    let [n0, n1, n2, n3] = rec.notes;
    [
        u64::try_from(rec.trace.0 >> 64).unwrap_or(0),
        u64::try_from(rec.trace.0 & u128::from(u64::MAX)).unwrap_or(0),
        rec.span.0,
        rec.parent.map_or(0, |p| p.0),
        u64::from(rec.name.0) | (u64::from(rec.n_notes) << 16),
        keys,
        n0.1,
        n1.1,
        n2.1,
        n3.1,
        rec.start_us,
        rec.dur_us,
        rec.sim_ms.to_bits(),
    ]
}

#[cfg(not(feature = "off"))]
#[allow(clippy::cast_possible_truncation)] // masked 16-bit extractions
fn decode_words(w: &[u64; SLOT_WORDS]) -> SpanRecord {
    let [hi, lo, span, parent, tag, keys, v0, v1, v2, v3, start_us, dur_us, sim_bits] = *w;
    let values = [v0, v1, v2, v3];
    let mut notes = [(Name(0), 0u64); MAX_NOTES];
    for (i, (slot, value)) in notes.iter_mut().zip(values).enumerate() {
        *slot = (Name((keys >> (16 * i) & 0xFFFF) as u16), value);
    }
    SpanRecord {
        trace: TraceId(u128::from(hi) << 64 | u128::from(lo)),
        span: SpanId(span),
        parent: (parent != 0).then_some(SpanId(parent)),
        name: Name((tag & 0xFFFF) as u16),
        start_us,
        dur_us,
        sim_ms: f64::from_bits(sim_bits),
        notes,
        n_notes: (tag >> 16 & 0xFF) as u8,
    }
}

#[cfg(not(feature = "off"))]
#[derive(Debug)]
struct Inner {
    epoch: Instant,
    /// Total records ever claimed; `head % slots.len()` is the next slot.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

#[cfg(not(feature = "off"))]
impl Inner {
    fn record(&self, rec: &SpanRecord) {
        let len = self.slots.len();
        if len == 0 {
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = usize::try_from(ticket % (len as u64)).unwrap_or(0);
        let Some(slot) = self.slots.get(idx) else {
            return;
        };
        let words = encode_words(rec);
        slot.seq
            .store(ticket.wrapping_mul(2).wrapping_add(1), Ordering::Release);
        for (cell, word) in slot.words.iter().zip(words) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.seq
            .store(ticket.wrapping_mul(2).wrapping_add(2), Ordering::Release);
    }

    fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<(u64, SpanRecord)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // Retry a torn slot a couple of times, then give it up: a
            // slot being rewritten that fast is being evicted anyway.
            for _ in 0..3 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 % 2 == 1 {
                    break;
                }
                let mut words = [0u64; SLOT_WORDS];
                for (word, cell) in words.iter_mut().zip(slot.words.iter()) {
                    *word = cell.load(Ordering::Relaxed);
                }
                fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) == s1 {
                    out.push(((s1 - 2) / 2, decode_words(&words)));
                    break;
                }
            }
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, rec)| rec).collect()
    }
}

/// A bounded, lock-free ring buffer of finished spans ("flight
/// recorder"): the most recent `capacity` spans are retained, the
/// oldest evicted. Cloning produces another handle to the same ring.
/// With the `off` feature this is a ZST and recording a no-op.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    #[cfg(not(feature = "off"))]
    inner: Option<Arc<Inner>>,
}

impl FlightRecorder {
    /// Creates a recorder retaining the most recent `capacity` spans.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        #[cfg(not(feature = "off"))]
        {
            Self {
                inner: Some(Arc::new(Inner {
                    epoch: Instant::now(),
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| Slot::new()).collect(),
                })),
            }
        }
        #[cfg(feature = "off")]
        {
            let _ = capacity;
            Self {}
        }
    }

    /// A recorder that drops everything (the default for services that
    /// never attached one).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Starts a new root span: fresh trace id, no parent.
    pub fn span(&self, name: Name) -> TraceSpan {
        self.start_span(name, TraceId::generate(), None)
    }

    /// Starts a span under an externally supplied context (a client's
    /// wire-propagated trace, or a handle from another thread).
    pub fn span_under(&self, ctx: SpanContext, name: Name) -> TraceSpan {
        self.start_span(name, ctx.trace, Some(ctx.span))
    }

    fn start_span(&self, name: Name, trace: TraceId, parent: Option<SpanId>) -> TraceSpan {
        #[cfg(not(feature = "off"))]
        {
            TraceSpan {
                inner: self.inner.clone(),
                trace,
                span: SpanId::generate(),
                parent,
                name,
                started: Instant::now(),
                start_us: self.inner.as_ref().map_or(0, |i| elapsed_us(i.epoch)),
                sim_ms: 0.0,
                notes: [(Name(0), 0); MAX_NOTES],
                n_notes: 0,
            }
        }
        #[cfg(feature = "off")]
        {
            let _ = (name, trace, parent);
            TraceSpan {}
        }
    }

    /// Copies out every fully written record, oldest first. Each record
    /// is tear-free; the set is a sample, not a consistent cut.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        #[cfg(not(feature = "off"))]
        {
            self.inner
                .as_ref()
                .map(|i| i.snapshot())
                .unwrap_or_default()
        }
        #[cfg(feature = "off")]
        {
            Vec::new()
        }
    }

    /// Total spans ever recorded (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        #[cfg(not(feature = "off"))]
        {
            self.inner
                .as_ref()
                .map_or(0, |i| i.head.load(Ordering::Relaxed))
        }
        #[cfg(feature = "off")]
        {
            0
        }
    }

    /// Ring capacity (0 when disabled or compiled out).
    #[must_use]
    pub fn capacity(&self) -> usize {
        #[cfg(not(feature = "off"))]
        {
            self.inner.as_ref().map_or(0, |i| i.slots.len())
        }
        #[cfg(feature = "off")]
        {
            0
        }
    }
}

#[cfg(not(feature = "off"))]
fn elapsed_us(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A live span: records a [`SpanRecord`] into its recorder when dropped
/// (or [`TraceSpan::finish`]ed). ZST with the `off` feature.
#[must_use = "a trace span records on drop — bind it (`let _span = …`) for the scope to measure"]
#[derive(Debug)]
pub struct TraceSpan {
    #[cfg(not(feature = "off"))]
    inner: Option<Arc<Inner>>,
    #[cfg(not(feature = "off"))]
    trace: TraceId,
    #[cfg(not(feature = "off"))]
    span: SpanId,
    #[cfg(not(feature = "off"))]
    parent: Option<SpanId>,
    #[cfg(not(feature = "off"))]
    name: Name,
    #[cfg(not(feature = "off"))]
    started: Instant,
    #[cfg(not(feature = "off"))]
    start_us: u64,
    #[cfg(not(feature = "off"))]
    sim_ms: f64,
    #[cfg(not(feature = "off"))]
    notes: [(Name, u64); MAX_NOTES],
    #[cfg(not(feature = "off"))]
    n_notes: u8,
}

impl TraceSpan {
    /// This span's position in its trace — what children parent under.
    /// `None` when recording is compiled out.
    #[must_use]
    pub fn context(&self) -> Option<SpanContext> {
        #[cfg(not(feature = "off"))]
        {
            Some(SpanContext {
                trace: self.trace,
                span: self.span,
            })
        }
        #[cfg(feature = "off")]
        {
            None
        }
    }

    /// A cheap, cloneable, `Send` handle for opening children of this
    /// span from other threads (scan-pool workers).
    #[must_use]
    pub fn handle(&self) -> SpanHandle {
        #[cfg(not(feature = "off"))]
        {
            SpanHandle {
                inner: self.inner.clone(),
                ctx: SpanContext {
                    trace: self.trace,
                    span: self.span,
                },
            }
        }
        #[cfg(feature = "off")]
        {
            SpanHandle {}
        }
    }

    /// Opens a child span in the same recorder.
    pub fn child(&self, name: Name) -> TraceSpan {
        self.handle().child(name)
    }

    /// Attaches a static key/value annotation (first [`MAX_NOTES`] win).
    pub fn note(&mut self, key: Name, value: u64) {
        #[cfg(not(feature = "off"))]
        {
            let n = usize::from(self.n_notes);
            if let Some(slot) = self.notes.get_mut(n) {
                *slot = (key, value);
                self.n_notes = self.n_notes.saturating_add(1);
            }
        }
        #[cfg(feature = "off")]
        {
            let _ = (key, value);
        }
    }

    /// Attributes simulated milliseconds to the span.
    pub fn set_sim_ms(&mut self, ms: f64) {
        #[cfg(not(feature = "off"))]
        {
            self.sim_ms = ms;
        }
        #[cfg(feature = "off")]
        {
            let _ = ms;
        }
    }

    /// Ends the span now (alias for dropping it).
    pub fn finish(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        #[cfg(not(feature = "off"))]
        if let Some(inner) = &self.inner {
            inner.record(&SpanRecord {
                trace: self.trace,
                span: self.span,
                parent: self.parent,
                name: self.name,
                start_us: self.start_us,
                dur_us: u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX),
                sim_ms: self.sim_ms,
                notes: self.notes,
                n_notes: self.n_notes,
            });
        }
    }
}

/// A cloneable, `Send` handle at a fixed position in a trace: what a
/// query's scan closures capture so per-unit spans parent correctly
/// across the scan pool. ZST with the `off` feature.
#[derive(Debug, Clone, Default)]
pub struct SpanHandle {
    #[cfg(not(feature = "off"))]
    inner: Option<Arc<Inner>>,
    #[cfg(not(feature = "off"))]
    ctx: SpanContext,
}

impl Default for SpanContext {
    fn default() -> Self {
        Self {
            trace: TraceId(0),
            span: SpanId(0),
        }
    }
}

impl SpanHandle {
    /// A handle that records nowhere (placeholder for untraced work).
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Opens a child span under this handle's position.
    pub fn child(&self, name: Name) -> TraceSpan {
        #[cfg(not(feature = "off"))]
        {
            TraceSpan {
                inner: self.inner.clone(),
                trace: self.ctx.trace,
                span: SpanId::generate(),
                parent: Some(self.ctx.span),
                name,
                started: Instant::now(),
                start_us: self.inner.as_ref().map_or(0, |i| elapsed_us(i.epoch)),
                sim_ms: 0.0,
                notes: [(Name(0), 0); MAX_NOTES],
                n_notes: 0,
            }
        }
        #[cfg(feature = "off")]
        {
            let _ = name;
            TraceSpan {}
        }
    }

    /// The context this handle points at (`None` when compiled out or
    /// detached).
    #[must_use]
    pub fn context(&self) -> Option<SpanContext> {
        #[cfg(not(feature = "off"))]
        {
            (self.ctx.trace.0 != 0 || self.inner.is_some()).then_some(self.ctx)
        }
        #[cfg(feature = "off")]
        {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Exporters. Always compiled (they operate on snapshot data, which is
// simply empty in an `off` build), shared by the server's Trace reply,
// the CLI and the tests.

fn push_notes_json(out: &mut String, rec: &SpanRecord) {
    out.push_str(",\"notes\":{");
    for (i, (k, v)) in rec.notes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push('}');
}

/// Renders records as a JSON array (one object per span), the shape the
/// server's `Trace` reply carries.
#[must_use]
pub fn records_to_json(records: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"sim_ms\":{}",
            rec.trace,
            rec.span,
            rec.parent
                .map_or_else(|| "null".to_owned(), |p| format!("\"{p}\"")),
            rec.name,
            rec.start_us,
            rec.dur_us,
            if rec.sim_ms.is_finite() { rec.sim_ms } else { 0.0 },
        );
        push_notes_json(&mut out, rec);
        out.push('}');
    }
    out.push(']');
    out
}

/// Renders records as Chrome `trace_event` JSON (an array of `ph:"X"`
/// complete events), loadable in `chrome://tracing` or Perfetto. Each
/// trace gets its own `tid` lane so concurrent queries do not overlap.
#[must_use]
pub fn records_to_chrome(records: &[SpanRecord]) -> String {
    let mut lanes: Vec<TraceId> = Vec::new();
    let mut out = String::from("[");
    for (i, rec) in records.iter().enumerate() {
        let tid = match lanes.iter().position(|t| *t == rec.trace) {
            Some(p) => p + 1,
            None => {
                lanes.push(rec.trace);
                lanes.len()
            }
        };
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"blot\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"trace\":\"{}\",\"span\":\"{}\"",
            rec.name, rec.start_us, rec.dur_us, rec.trace, rec.span,
        );
        for (k, v) in rec.notes() {
            let _ = write!(out, ",\"{k}\":{v}");
        }
        if rec.sim_ms > 0.0 && rec.sim_ms.is_finite() {
            let _ = write!(out, ",\"sim_ms\":{}", rec.sim_ms);
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// Renders records as an indented per-trace tree for terminals.
#[must_use]
pub fn records_to_text(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    let mut traces: Vec<TraceId> = Vec::new();
    for rec in records {
        if !traces.contains(&rec.trace) {
            traces.push(rec.trace);
        }
    }
    for trace in traces {
        let _ = writeln!(out, "trace {trace}:");
        let mut of_trace: Vec<&SpanRecord> = records.iter().filter(|r| r.trace == trace).collect();
        of_trace.sort_by_key(|r| r.start_us);
        // Depth by walking parent links within the snapshot; a parent
        // evicted from the ring renders its children at depth 0.
        for rec in &of_trace {
            let mut depth = 0usize;
            let mut at = rec.parent;
            while let Some(p) = at {
                match of_trace.iter().find(|r| r.span == p) {
                    Some(parent) => {
                        depth += 1;
                        at = parent.parent;
                    }
                    None => break,
                }
                if depth > 16 {
                    break;
                }
            }
            let indent = "  ".repeat(depth + 1);
            let _ = write!(
                out,
                "{indent}{:<16} {:>9.3} ms",
                rec.name.as_str(),
                rec.dur_us as f64 / 1e3
            );
            if rec.sim_ms > 0.0 {
                let _ = write!(out, "  sim {:.1} ms", rec.sim_ms);
            }
            for (k, v) in rec.notes() {
                let _ = write!(out, "  {k}={v}");
            }
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    out
}

/// Keeps only traces in which at least one span lasted `slow_ms`
/// milliseconds (wall time) or more. Whole traces survive or drop
/// together — a slow scan keeps its fast siblings for context.
/// `slow_ms <= 0` keeps everything.
#[must_use]
pub fn filter_slow(records: &[SpanRecord], slow_ms: f64) -> Vec<SpanRecord> {
    if slow_ms <= 0.0 {
        return records.to_vec();
    }
    let mut slow: Vec<TraceId> = Vec::new();
    for rec in records {
        #[allow(clippy::cast_precision_loss)]
        let dur_ms = rec.dur_us as f64 / 1e3;
        if dur_ms >= slow_ms && !slow.contains(&rec.trace) {
            slow.push(rec.trace);
        }
    }
    records
        .iter()
        .filter(|r| slow.contains(&r.trace))
        .copied()
        .collect()
}

/// Keeps the spans of the `last` most recent distinct traces, recency
/// judged by each trace's latest span start. `last == 0` keeps
/// everything.
#[must_use]
pub fn filter_last(records: &[SpanRecord], last: usize) -> Vec<SpanRecord> {
    if last == 0 {
        return records.to_vec();
    }
    let mut latest: Vec<(TraceId, u64)> = Vec::new();
    for rec in records {
        match latest.iter_mut().find(|(t, _)| *t == rec.trace) {
            Some((_, at)) => *at = (*at).max(rec.start_us),
            None => latest.push((rec.trace, rec.start_us)),
        }
    }
    latest.sort_by_key(|&(_, at)| std::cmp::Reverse(at));
    latest.truncate(last);
    records
        .iter()
        .filter(|r| latest.iter().any(|&(t, _)| t == r.trace))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_unique_and_names_resolve() {
        for (i, a) in VOCAB.iter().enumerate() {
            for b in VOCAB.get(i + 1..).unwrap_or(&[]) {
                assert_ne!(a, b, "duplicate vocabulary entry {a}");
            }
        }
        assert_eq!(names::QUERY.as_str(), "store.query");
        assert_eq!(names::QUEUE_US.as_str(), "queue_us");
        assert_eq!(Name(u16::MAX).as_str(), "?");
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a.0, 0);
        assert_ne!(a, b);
        assert_ne!(SpanId::generate(), SpanId::generate());
        let ctx = SpanContext::fresh();
        assert_ne!(ctx.trace.0, 0);
        assert_ne!(ctx.span.0, 0);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn spans_record_on_drop_with_parent_links() {
        let rec = FlightRecorder::new(16);
        let mut root = rec.span(names::QUERY);
        root.note(names::REPLICA, 3);
        let child = root.child(names::SCAN);
        let grandchild = child.handle().child(names::SCAN_UNIT);
        grandchild.finish();
        child.finish();
        let root_ctx = root.context().expect("enabled build");
        root.finish();
        let records = rec.snapshot();
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.trace == root_ctx.trace));
        let unit = records
            .iter()
            .find(|r| r.name == names::SCAN_UNIT)
            .expect("unit span");
        let scan = records
            .iter()
            .find(|r| r.name == names::SCAN)
            .expect("scan span");
        assert_eq!(unit.parent, Some(scan.span));
        assert_eq!(scan.parent, Some(root_ctx.span));
        let root_rec = records
            .iter()
            .find(|r| r.name == names::QUERY)
            .expect("root span");
        assert_eq!(root_rec.parent, None);
        assert_eq!(root_rec.note_value(names::REPLICA), Some(3));
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn ring_evicts_oldest_and_keeps_order() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            let mut s = rec.span(names::SCAN_UNIT);
            s.note(names::PARTITION, i);
            s.finish();
        }
        let records = rec.snapshot();
        assert_eq!(records.len(), 4);
        assert_eq!(rec.recorded(), 10);
        let parts: Vec<u64> = records
            .iter()
            .filter_map(|r| r.note_value(names::PARTITION))
            .collect();
        assert_eq!(parts, vec![6, 7, 8, 9]);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn adopted_context_joins_the_existing_trace() {
        let rec = FlightRecorder::new(8);
        let client = SpanContext::fresh();
        let span = rec.span_under(client, names::SERVER_REQUEST);
        span.finish();
        let records = rec.snapshot();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].trace, client.trace);
        assert_eq!(records[0].parent, Some(client.span));
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn concurrent_recording_never_tears_records() {
        let rec = FlightRecorder::new(32);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let mut s = rec.span(names::SCAN_UNIT);
                    // Both notes carry the same value: a torn record
                    // would disagree with itself.
                    s.note(names::BYTES, t * 1000 + i);
                    s.note(names::RECORDS, t * 1000 + i);
                    s.finish();
                    if i % 16 == 0 {
                        let _ = rec.snapshot();
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("recorder thread");
        }
        assert_eq!(rec.recorded(), 800);
        for r in rec.snapshot() {
            assert_eq!(r.note_value(names::BYTES), r.note_value(names::RECORDS));
            assert_eq!(r.name, names::SCAN_UNIT);
            assert_ne!(r.trace.0, 0);
        }
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = FlightRecorder::disabled();
        rec.span(names::QUERY).finish();
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.capacity(), 0);
    }

    #[cfg(feature = "off")]
    #[test]
    fn off_build_compiles_trace_handles_to_zsts() {
        assert_eq!(std::mem::size_of::<FlightRecorder>(), 0);
        assert_eq!(std::mem::size_of::<TraceSpan>(), 0);
        assert_eq!(std::mem::size_of::<SpanHandle>(), 0);
        let rec = FlightRecorder::new(1024);
        let span = rec.span(names::QUERY);
        assert!(span.context().is_none());
        span.finish();
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn exporters_emit_wellformed_json() {
        let rec = FlightRecorder::new(8);
        let mut root = rec.span(names::QUERY);
        root.note(names::UNITS, 2);
        root.set_sim_ms(1.5);
        root.child(names::SCAN).finish();
        root.finish();
        let records = rec.snapshot();
        let json = records_to_json(&records);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        let chrome = records_to_chrome(&records);
        assert!(chrome.starts_with('[') && chrome.ends_with(']'), "{chrome}");
        if crate::enabled() {
            assert!(json.contains("\"name\":\"store.query\""), "{json}");
            assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
            assert!(records_to_text(&records).contains("store.query"));
        } else {
            assert_eq!(json, "[]");
            assert_eq!(chrome, "[]");
        }
    }

    /// A hand-built record for the filter tests (durations under test
    /// control, unlike recorder-produced wall times).
    fn record(trace: u128, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span: SpanId::generate(),
            parent: None,
            name: names::QUERY,
            start_us,
            dur_us,
            sim_ms: 0.0,
            notes: [(Name(0), 0); MAX_NOTES],
            n_notes: 0,
        }
    }

    #[test]
    fn filter_slow_keeps_whole_traces_above_threshold() {
        let records = vec![
            record(1, 0, 50),      // trace 1: fast sibling...
            record(1, 10, 12_000), // ...but one 12 ms span makes it slow
            record(2, 20, 900),    // trace 2: all spans under 10 ms
        ];
        let slow = filter_slow(&records, 10.0);
        assert_eq!(slow.len(), 2);
        assert!(slow.iter().all(|r| r.trace == TraceId(1)));
        assert_eq!(filter_slow(&records, 0.0).len(), 3);
    }

    #[test]
    fn filter_last_keeps_most_recent_traces() {
        let records = vec![
            record(1, 0, 10),
            record(2, 100, 10),
            record(1, 250, 10), // trace 1's latest span is newest overall
            record(3, 200, 10),
        ];
        let last = filter_last(&records, 2);
        assert_eq!(last.len(), 3);
        assert!(last
            .iter()
            .all(|r| r.trace == TraceId(1) || r.trace == TraceId(3)));
        assert_eq!(filter_last(&records, 0).len(), 4);
        assert_eq!(filter_last(&records, 10).len(), 4);
    }
}
