//! The metrics registry: names instruments, hands out handles, takes
//! snapshots.
//!
//! Registration is the *cold* path and takes a mutex; it happens once,
//! when a store / pool / subsystem is constructed. The returned handles
//! are the hot path and never touch the registry again.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of instruments.
///
/// Cloning produces another handle to the same registry. Instrument
/// lookups are get-or-create: asking twice for the same name and kind
/// returns handles to the same cell. Asking for an existing name with a
/// *different* kind returns a detached instrument (recorded values are
/// kept but never appear in snapshots) — silently shadowing a metric
/// would corrupt both series, and the record path must not fail.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn with_map<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> T) -> T {
        // Recover from poisoning like `storage::sync`: the map is a
        // name table, always valid.
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut map)
    }

    /// Returns the counter named `name`, creating it if absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.with_map(|map| {
            match map
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Counter(Counter::new()))
            {
                Metric::Counter(c) => c.clone(),
                Metric::Gauge(_) | Metric::Histogram(_) => Counter::new(),
            }
        })
    }

    /// Returns the gauge named `name`, creating it if absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.with_map(|map| {
            match map
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Gauge(Gauge::new()))
            {
                Metric::Gauge(g) => g.clone(),
                Metric::Counter(_) | Metric::Histogram(_) => Gauge::new(),
            }
        })
    }

    /// Returns the histogram named `name`, creating it if absent.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.with_map(|map| {
            match map
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Histogram(Histogram::new()))
            {
                Metric::Histogram(h) => h.clone(),
                Metric::Counter(_) | Metric::Gauge(_) => Histogram::new(),
            }
        })
    }

    /// A point-in-time copy of every registered instrument, sorted by
    /// name. Concurrent recording keeps going; each instrument is read
    /// atomically (see the histogram tear-freedom note).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.with_map(|map| {
            let mut snap = Snapshot::default();
            for (name, metric) in map.iter() {
                match metric {
                    Metric::Counter(c) => snap.counters.push((name.clone(), c.value())),
                    Metric::Gauge(g) => snap.gauges.push((name.clone(), g.value())),
                    Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
                }
            }
            snap
        })
    }
}

/// A point-in-time copy of a registry's instruments, sorted by name
/// within each kind.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram states.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the counter named `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the gauge named `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// State of the histogram named `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_cell() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        if crate::enabled() {
            assert_eq!(r.snapshot().counter("x"), Some(2));
        }
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_shadowing() {
        let r = MetricsRegistry::new();
        let c = r.counter("x");
        c.add(5);
        let h = r.histogram("x"); // wrong kind: detached
        h.record(1.0);
        if crate::enabled() {
            assert_eq!(r.snapshot().counter("x"), Some(5));
        }
        assert!(r.snapshot().histogram("x").is_none());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = MetricsRegistry::new();
        let _ = r.counter("zeta");
        let _ = r.counter("alpha");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
