//! RAII wall-time spans.
//!
//! A [`Span`] samples [`std::time::Instant`] (monotonic) on creation
//! and records the elapsed milliseconds into its histogram when
//! dropped — covering early returns and `?` propagation for free. The
//! overhead budget is two `Instant` samples plus one histogram record
//! (≈ tens of nanoseconds), which is why every `BlotStore` operation
//! can afford one.

use crate::histogram::Histogram;

/// Records wall-clock milliseconds into a [`Histogram`] on drop.
#[must_use = "a span records on drop — bind it (`let _span = …`) for the scope to measure"]
#[derive(Debug)]
pub struct Span {
    #[cfg(not(feature = "off"))]
    histogram: Histogram,
    #[cfg(not(feature = "off"))]
    started: std::time::Instant,
}

impl Span {
    /// Starts a span that records into `histogram` when dropped.
    pub fn start(histogram: &Histogram) -> Self {
        #[cfg(not(feature = "off"))]
        {
            Self {
                histogram: histogram.clone(),
                started: std::time::Instant::now(),
            }
        }
        #[cfg(feature = "off")]
        {
            let _ = histogram;
            Self {}
        }
    }

    /// Ends the span now (alias for dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(not(feature = "off"))]
        self.histogram
            .record(self.started.elapsed().as_secs_f64() * 1e3);
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_time_on_drop() {
        let h = Histogram::new();
        {
            let _span = Span::start(&h);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert!(s.sum >= 1.0, "slept 2ms but recorded {}", s.sum);
    }

    #[test]
    fn explicit_finish_records_once() {
        let h = Histogram::new();
        let span = Span::start(&h);
        span.finish();
        assert_eq!(h.snapshot().count(), 1);
    }
}
