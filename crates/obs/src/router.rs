//! The coordinator's instrument bundle.
//!
//! `blot-router` registers these in its own registry (the coordinator
//! has no store of its own), so a `Stats` request against the
//! coordinator snapshots the routing layer alongside the aggregated
//! per-shard documents. Names follow the dotted convention under a
//! `router.` prefix; per-shard counters carry the shard id in the name
//! (`router.shard0.queries`), keeping the registry's flat string-keyed
//! model.

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::registry::MetricsRegistry;

/// Handles for everything the scatter-gather coordinator records.
/// Cheap to clone; clones share the underlying cells.
#[derive(Debug, Clone)]
pub struct RouterMetrics {
    /// Scatter-gather queries executed (`router.queries`).
    pub queries: Counter,
    /// Queries answered without touching every shard because the shard
    /// map pruned the fan-out (`router.fanout_pruned`).
    pub fanout_pruned: Counter,
    /// Shards touched per query (`router.fanout`).
    pub fanout: Histogram,
    /// Wall-clock scatter→gather latency per query, in milliseconds
    /// (`router.gather_ms`).
    pub gather_ms: Histogram,
    /// Sub-queries retried after a shard shed or transport error
    /// (`router.retries`).
    pub retries: Counter,
    /// Queries that failed because a shard stayed unavailable
    /// (`router.shard_failures`).
    pub shard_failures: Counter,
    /// Per-shard sub-query counters (`router.shard{i}.queries`),
    /// indexed by shard id.
    pub shard_queries: Vec<Counter>,
    /// Per-shard sub-query error counters (`router.shard{i}.errors`),
    /// indexed by shard id.
    pub shard_errors: Vec<Counter>,
}

impl RouterMetrics {
    /// Registers (or re-attaches to) the routing instruments in
    /// `registry`, with per-shard counters for shard ids `0..shards`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry, shards: u32) -> Self {
        let shard_queries = (0..shards)
            .map(|i| registry.counter(&format!("router.shard{i}.queries")))
            .collect();
        let shard_errors = (0..shards)
            .map(|i| registry.counter(&format!("router.shard{i}.errors")))
            .collect();
        Self {
            queries: registry.counter("router.queries"),
            fanout_pruned: registry.counter("router.fanout_pruned"),
            fanout: registry.histogram("router.fanout"),
            gather_ms: registry.histogram("router.gather_ms"),
            retries: registry.counter("router.retries"),
            shard_failures: registry.counter("router.shard_failures"),
            shard_queries,
            shard_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_covers_every_shard_and_snapshots() {
        let registry = MetricsRegistry::new();
        let m = RouterMetrics::register(&registry, 4);
        assert_eq!(m.shard_queries.len(), 4);
        assert_eq!(m.shard_errors.len(), 4);
        m.queries.inc();
        m.fanout.record(3.0);
        for c in &m.shard_queries {
            c.inc();
        }
        let snap = registry.snapshot();
        if crate::enabled() {
            assert_eq!(snap.counter("router.queries"), Some(1));
            assert_eq!(snap.counter("router.shard3.queries"), Some(1));
            assert!(snap.histogram("router.fanout").is_some());
        }
    }
}
