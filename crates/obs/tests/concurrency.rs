//! Concurrency stress tests for blot-obs, in the style of
//! `crates/core/tests/concurrency.rs`: many threads hammer shared
//! instruments while a reader snapshots, and the final state must sum
//! exactly.
//!
//! These tests only make sense with the record path compiled in.
#![cfg(not(feature = "off"))]
// Test code: panicking on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use blot_obs::{bucket_lower_bound, Histogram, MetricsRegistry, BUCKETS};

const THREADS: u64 = 8;
const ROUNDS: u64 = 5_000;

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("stress.counter");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let c = counter.clone();
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    if (t + i) % 3 == 0 {
                        c.add(2);
                    } else {
                        c.inc();
                    }
                }
            })
        })
        .collect();
    let mut expected = 0u64;
    for t in 0..THREADS {
        for i in 0..ROUNDS {
            expected += if (t + i) % 3 == 0 { 2 } else { 1 };
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.value(), expected);
    assert_eq!(
        registry.snapshot().counter("stress.counter"),
        Some(expected)
    );
}

#[test]
fn concurrent_histogram_records_sum_exactly() {
    let h = Histogram::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    // Values spread over many buckets.
                    #[allow(clippy::cast_precision_loss)]
                    h.record(((t * ROUNDS + i) % 1000) as f64 + 0.5);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let s = h.snapshot();
    assert_eq!(s.count(), THREADS * ROUNDS);
    // Σ of (k % 1000 + 0.5) over k = 0..THREADS·ROUNDS.
    let mut expected = 0.0;
    for k in 0..THREADS * ROUNDS {
        #[allow(clippy::cast_precision_loss)]
        let v = (k % 1000) as f64 + 0.5;
        expected += v;
    }
    assert!(
        (s.sum - expected).abs() / expected < 1e-9,
        "sum {} vs expected {expected}",
        s.sum
    );
}

#[test]
fn snapshot_while_recording_never_tears() {
    // A snapshot's count is derived from its buckets, so at any moment
    // it must (a) equal the bucket sum by construction and (b) be
    // monotonically non-decreasing across successive snapshots.
    let h = Histogram::new();
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    #[allow(clippy::cast_precision_loss)]
                    h.record((i % 64) as f64 + 1.0);
                }
            })
        })
        .collect();
    let mut last = 0u64;
    while writers.iter().any(|w| !w.is_finished()) {
        let s = h.snapshot();
        let count = s.count();
        let bucket_sum: u64 = s.buckets.iter().sum();
        assert_eq!(count, bucket_sum, "snapshot count must match its buckets");
        assert!(count >= last, "count went backwards: {count} < {last}");
        last = count;
    }
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(h.snapshot().count(), 4 * 20_000);
}

#[test]
fn histogram_bucket_boundaries_are_monotone() {
    let mut prev = -1.0;
    for i in 0..=BUCKETS {
        let b = bucket_lower_bound(i);
        assert!(b > prev, "bound {i} = {b} must exceed previous {prev}");
        prev = b;
    }
}
