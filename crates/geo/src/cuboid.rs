use crate::{Point, QuerySize};

/// An axis-aligned cuboid in (x, y, t) space.
///
/// Cuboids represent the dataset universe `U`, space partitions `p_i`
/// (Definition 1/2 of the paper) and the ranges of concrete queries
/// (Definition 6). A cuboid is half-open conceptually — records on shared
/// partition boundaries are assigned to exactly one partition by the
/// partitioner — but intersection tests here are closed, matching the
/// paper's `Range(p) ∩ Range(q) ≠ ∅` involvement test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cuboid {
    min: Point,
    max: Point,
}

impl Cuboid {
    /// Creates a cuboid from its minimum and maximum corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` exceeds `max` on any axis or any coordinate is NaN.
    #[must_use]
    pub fn new(min: Point, max: Point) -> Self {
        for axis in 0..3 {
            let (lo, hi) = (min.axis(axis), max.axis(axis));
            assert!(
                lo <= hi,
                "cuboid min must not exceed max on axis {axis}: {lo} > {hi}"
            );
        }
        Self { min, max }
    }

    /// Creates the query cuboid of extent `size` centred at `centroid`
    /// (the paper's `⟨W, H, T, x, y, t⟩` form of Definition 6).
    #[must_use]
    pub fn from_centroid(centroid: Point, size: QuerySize) -> Self {
        let (hw, hh, ht) = (size.w / 2.0, size.h / 2.0, size.t / 2.0);
        let min = Point::new(centroid.x - hw, centroid.y - hh, centroid.t - ht);
        let max = Point::new(centroid.x + hw, centroid.y + hh, centroid.t + ht);
        Self::new(min, max)
    }

    /// Minimum corner.
    #[must_use]
    pub const fn min(&self) -> Point {
        self.min
    }

    /// Maximum corner.
    #[must_use]
    pub const fn max(&self) -> Point {
        self.max
    }

    /// Centroid of the cuboid.
    #[must_use]
    pub fn centroid(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
            (self.min.t + self.max.t) / 2.0,
        )
    }

    /// The extent ⟨W, H, T⟩ of this cuboid.
    #[must_use]
    pub fn size(&self) -> QuerySize {
        QuerySize::new(
            self.max.x - self.min.x,
            self.max.y - self.min.y,
            self.max.t - self.min.t,
        )
    }

    /// Extent along `axis` (wrapping modulo 3, like [`Point::axis`]).
    #[must_use]
    pub fn extent(&self, axis: usize) -> f64 {
        self.max.axis(axis) - self.min.axis(axis)
    }

    /// Volume W·H·T. Zero for degenerate cuboids.
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.extent(0) * self.extent(1) * self.extent(2)
    }

    /// Whether the point lies inside the cuboid (closed on all faces).
    #[must_use]
    pub fn contains_point(&self, p: &Point) -> bool {
        (0..3).all(|a| self.min.axis(a) <= p.axis(a) && p.axis(a) <= self.max.axis(a))
    }

    /// Whether the point lies inside, treating the maximum face of each
    /// axis as exclusive unless `upper_closed[axis]` is set.
    ///
    /// Partitioners use this to assign boundary records to exactly one
    /// partition: interior boundaries are half-open, universe boundaries
    /// closed.
    #[must_use]
    pub fn contains_point_half_open(&self, p: &Point, upper_closed: [bool; 3]) -> bool {
        upper_closed.iter().enumerate().all(|(a, &closed)| {
            let v = p.axis(a);
            v >= self.min.axis(a) && (v < self.max.axis(a) || (closed && v <= self.max.axis(a)))
        })
    }

    /// Whether `other` lies entirely within this cuboid.
    #[must_use]
    pub fn contains_cuboid(&self, other: &Self) -> bool {
        (0..3)
            .all(|a| self.min.axis(a) <= other.min.axis(a) && other.max.axis(a) <= self.max.axis(a))
    }

    /// Whether the two cuboids intersect (closed-boundary test, the
    /// paper's partition-involvement predicate).
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        (0..3)
            .all(|a| self.min.axis(a) <= other.max.axis(a) && other.min.axis(a) <= self.max.axis(a))
    }

    /// The intersection of the two cuboids, or `None` if disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        if !self.intersects(other) {
            return None;
        }
        Some(Self::new(
            self.min.max_with(&other.min),
            self.max.min_with(&other.max),
        ))
    }

    /// The smallest cuboid containing both inputs.
    #[must_use]
    pub fn union_bounds(&self, other: &Self) -> Self {
        Self::new(self.min.min_with(&other.min), self.max.max_with(&other.max))
    }

    /// Splits the cuboid at `value` along `axis` into (low, high) halves.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the cuboid's extent on that axis.
    #[must_use]
    pub fn split_at(&self, axis: usize, value: f64) -> (Self, Self) {
        assert!(
            self.min.axis(axis) <= value && value <= self.max.axis(axis),
            "split value {value} outside cuboid on axis {axis}"
        );
        let low = Self::new(self.min, self.max.with_axis(axis, value));
        let high = Self::new(self.min.with_axis(axis, value), self.max);
        (low, high)
    }

    /// The feasible *centroid range* `CR(Q_G)` for queries of size `qs`
    /// inside this universe (§IV-B): the set of centroids for which the
    /// query box stays within the universe. Axes where the query is larger
    /// than the universe collapse to the universe centroid.
    #[must_use]
    pub fn centroid_range(&self, qs: QuerySize) -> Self {
        let c = self.centroid();
        let mut min = c;
        let mut max = c;
        for axis in 0..3 {
            let q = qs.axis(axis);
            if q < self.extent(axis) {
                min = min.with_axis(axis, self.min.axis(axis) + q / 2.0);
                max = max.with_axis(axis, self.max.axis(axis) - q / 2.0);
            }
        }
        Self::new(min, max)
    }

    /// The centroid range `CR(Q_G, p)` of Equation 12: centroids within
    /// `CR(Q_G)` whose query of size `qs` intersects `partition`. Returns
    /// `None` when no feasible centroid reaches the partition.
    #[must_use]
    pub fn centroid_range_for(&self, qs: QuerySize, partition: &Self) -> Option<Self> {
        let cr = self.centroid_range(qs);
        let mut min = cr.min;
        let mut max = cr.max;
        for axis in 0..3 {
            let half = qs.axis(axis) / 2.0;
            let lo = (partition.min.axis(axis) - half).max(cr.min.axis(axis));
            let hi = (partition.max.axis(axis) + half).min(cr.max.axis(axis));
            if hi < lo {
                return None;
            }
            min = min.with_axis(axis, lo);
            max = max.with_axis(axis, hi);
        }
        Some(Self::new(min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Cuboid {
        Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 1.0))
    }

    #[test]
    fn construction_and_accessors() {
        let c = Cuboid::new(Point::new(0.0, 1.0, 2.0), Point::new(3.0, 5.0, 9.0));
        assert_eq!(c.extent(0), 3.0);
        assert_eq!(c.extent(1), 4.0);
        assert_eq!(c.extent(2), 7.0);
        assert_eq!(c.volume(), 84.0);
        assert_eq!(c.centroid(), Point::new(1.5, 3.0, 5.5));
        assert_eq!(c.size().w, 3.0);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_corners_panic() {
        let _ = Cuboid::new(Point::new(1.0, 0.0, 0.0), Point::new(0.0, 1.0, 1.0));
    }

    #[test]
    fn from_centroid_roundtrip() {
        let qs = QuerySize::new(2.0, 4.0, 6.0);
        let c = Cuboid::from_centroid(Point::new(10.0, 10.0, 10.0), qs);
        assert_eq!(c.min(), Point::new(9.0, 8.0, 7.0));
        assert_eq!(c.max(), Point::new(11.0, 12.0, 13.0));
        assert_eq!(c.centroid(), Point::new(10.0, 10.0, 10.0));
    }

    #[test]
    fn intersection_cases() {
        let a = unit();
        let b = Cuboid::new(Point::new(0.5, 0.5, 0.5), Point::new(2.0, 2.0, 2.0));
        let c = Cuboid::new(Point::new(2.0, 2.0, 2.0), Point::new(3.0, 3.0, 3.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.min(), Point::new(0.5, 0.5, 0.5));
        assert_eq!(i.max(), Point::new(1.0, 1.0, 1.0));
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
        // Touching faces count as intersecting (closed test).
        let d = Cuboid::new(Point::new(1.0, 0.0, 0.0), Point::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn containment() {
        let a = unit();
        let inner = Cuboid::new(Point::new(0.25, 0.25, 0.25), Point::new(0.75, 0.75, 0.75));
        assert!(a.contains_cuboid(&inner));
        assert!(!inner.contains_cuboid(&a));
        assert!(a.contains_point(&Point::new(1.0, 1.0, 1.0)));
        assert!(!a.contains_point(&Point::new(1.0001, 1.0, 1.0)));
    }

    #[test]
    fn half_open_containment_assigns_boundary_once() {
        let (lo, hi) = unit().split_at(0, 0.5);
        let p = Point::new(0.5, 0.2, 0.2);
        let in_lo = lo.contains_point_half_open(&p, [false, false, false]);
        let in_hi = hi.contains_point_half_open(&p, [false, false, false]);
        assert!(
            !in_lo && in_hi,
            "boundary point must fall in exactly one half"
        );
        // Universe max face closed.
        let p_max = Point::new(1.0, 0.2, 0.2);
        assert!(hi.contains_point_half_open(&p_max, [true, false, false]));
        assert!(!hi.contains_point_half_open(&p_max, [false, false, false]));
    }

    #[test]
    fn split_produces_disjoint_cover() {
        let c = unit();
        let (lo, hi) = c.split_at(2, 0.25);
        assert_eq!(lo.volume() + hi.volume(), c.volume());
        assert_eq!(lo.union_bounds(&hi), c);
    }

    #[test]
    fn centroid_range_shrinks_by_query_size() {
        let u = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 10.0, 10.0));
        let cr = u.centroid_range(QuerySize::new(2.0, 4.0, 20.0));
        assert_eq!(cr.min(), Point::new(1.0, 2.0, 5.0));
        assert_eq!(cr.max(), Point::new(9.0, 8.0, 5.0));
    }

    #[test]
    fn centroid_range_for_matches_equation_12_shape() {
        let u = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 10.0, 10.0));
        let p = Cuboid::new(Point::new(4.0, 4.0, 4.0), Point::new(6.0, 6.0, 6.0));
        let qs = QuerySize::new(2.0, 2.0, 2.0);
        let cr = u.centroid_range_for(qs, &p).unwrap();
        // west = max(W/2, west(p) - W/2) = max(1, 3) = 3; east = min(9, 7) = 7.
        assert_eq!(cr.min(), Point::new(3.0, 3.0, 3.0));
        assert_eq!(cr.max(), Point::new(7.0, 7.0, 7.0));
        // A corner partition clamps against the feasible range.
        let corner = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 1.0));
        let cr2 = u.centroid_range_for(qs, &corner).unwrap();
        assert_eq!(cr2.min(), Point::new(1.0, 1.0, 1.0));
        assert_eq!(cr2.max(), Point::new(2.0, 2.0, 2.0));
    }
}
