/// A point in the spatio-temporal universe: two spatial coordinates and a
/// temporal coordinate.
///
/// In the BLOT data model, `x` is typically a longitude, `y` a latitude
/// and `t` a timestamp (seconds since some epoch), but the geometry is
/// agnostic to units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// First spatial coordinate (e.g. longitude, degrees).
    pub x: f64,
    /// Second spatial coordinate (e.g. latitude, degrees).
    pub y: f64,
    /// Temporal coordinate (e.g. seconds since dataset start).
    pub t: f64,
}

impl Point {
    /// Creates a point from its three coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64, t: f64) -> Self {
        Self { x, y, t }
    }

    /// Returns the coordinate along `axis` (0 = x, 1 = y, 2 = t).
    /// Higher axes wrap modulo 3, making the accessor total — every
    /// caller passes a literal or a `0..3` loop index anyway.
    #[must_use]
    pub fn axis(&self, axis: usize) -> f64 {
        match axis % 3 {
            0 => self.x,
            1 => self.y,
            _ => self.t,
        }
    }

    /// Returns a copy with the coordinate along `axis` replaced by
    /// `value`. Higher axes wrap modulo 3, like [`Point::axis`].
    #[must_use]
    pub fn with_axis(mut self, axis: usize, value: f64) -> Self {
        match axis % 3 {
            0 => self.x = value,
            1 => self.y = value,
            _ => self.t = value,
        }
        self
    }

    /// Component-wise minimum of two points.
    #[must_use]
    pub fn min_with(&self, other: &Self) -> Self {
        Self::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.t.min(other.t),
        )
    }

    /// Component-wise maximum of two points.
    #[must_use]
    pub fn max_with(&self, other: &Self) -> Self {
        Self::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.t.max(other.t),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_accessors_roundtrip() {
        let p = Point::new(1.0, 2.0, 3.0);
        assert_eq!(p.axis(0), 1.0);
        assert_eq!(p.axis(1), 2.0);
        assert_eq!(p.axis(2), 3.0);
        let q = p.with_axis(1, 9.0);
        assert_eq!(q.axis(1), 9.0);
        assert_eq!(q.axis(0), 1.0);
    }

    #[test]
    fn axis_wraps_modulo_three() {
        let p = Point::new(1.0, 2.0, 3.0);
        assert_eq!(p.axis(3), p.axis(0));
        assert_eq!(p.axis(5), p.axis(2));
        assert_eq!(p.with_axis(4, 9.0), p.with_axis(1, 9.0));
    }

    #[test]
    fn min_max_with() {
        let a = Point::new(1.0, 5.0, 2.0);
        let b = Point::new(3.0, 4.0, 2.0);
        assert_eq!(a.min_with(&b), Point::new(1.0, 4.0, 2.0));
        assert_eq!(a.max_with(&b), Point::new(3.0, 5.0, 2.0));
    }
}
