/// The spatio-temporal extent ⟨W, H, T⟩ of a (grouped) range query.
///
/// §III-C1 of the paper reduces the workload size by replacing concrete
/// queries `⟨W, H, T, x, y, t⟩` with *grouped queries* `⟨W, H, T⟩` that fix
/// only the query extent and leave the centroid position random. This type
/// is that extent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySize {
    /// Extent along the first spatial axis (width, W).
    pub w: f64,
    /// Extent along the second spatial axis (height, H).
    pub h: f64,
    /// Extent along the temporal axis (duration, T).
    pub t: f64,
}

impl QuerySize {
    /// Creates a query size from its three extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is negative or not finite.
    #[must_use]
    pub fn new(w: f64, h: f64, t: f64) -> Self {
        assert!(
            w >= 0.0 && h >= 0.0 && t >= 0.0 && w.is_finite() && h.is_finite() && t.is_finite(),
            "query extents must be finite and non-negative: ({w}, {h}, {t})"
        );
        Self { w, h, t }
    }

    /// Returns the extent along `axis` (0 = W, 1 = H, 2 = T). Higher
    /// axes wrap modulo 3, making the accessor total — every caller
    /// passes a literal or a `0..3` loop index anyway.
    #[must_use]
    pub fn axis(&self, axis: usize) -> f64 {
        match axis % 3 {
            0 => self.w,
            1 => self.h,
            _ => self.t,
        }
    }

    /// Volume W·H·T of the query box.
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.w * self.h * self.t
    }

    /// Euclidean distance between two query sizes, used when clustering
    /// range sizes with k-means (§III-C1). Axes can be weighted to balance
    /// heterogeneous units (degrees vs. seconds).
    #[must_use]
    pub fn distance(&self, other: &Self, weights: [f64; 3]) -> f64 {
        let [ww, wh, wt] = weights;
        let dw = (self.w - other.w) * ww;
        let dh = (self.h - other.h) * wh;
        let dt = (self.t - other.t) * wt;
        (dw * dw + dh * dh + dt * dt).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_axis() {
        let qs = QuerySize::new(2.0, 3.0, 4.0);
        assert_eq!(qs.volume(), 24.0);
        assert_eq!(qs.axis(0), 2.0);
        assert_eq!(qs.axis(2), 4.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_extent_panics() {
        let _ = QuerySize::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn weighted_distance() {
        let a = QuerySize::new(0.0, 0.0, 0.0);
        let b = QuerySize::new(1.0, 1.0, 1.0);
        assert!((a.distance(&b, [1.0, 1.0, 1.0]) - 3f64.sqrt()).abs() < 1e-12);
        assert!((a.distance(&b, [1.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}
