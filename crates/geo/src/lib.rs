//! Spatio-temporal geometry kernel for BLOT systems.
//!
//! BLOT ("Big LOcation Tracking") systems, as described in *Exploring the
//! Use of Diverse Replicas for Big Location Tracking Data* (Ding et al.,
//! ICDCS 2014), organise location tracking records inside a three
//! dimensional universe: two spatial axes (`x`, `y`) and one temporal axis
//! (`t`). Every partition and every range query is an axis-aligned cuboid
//! in this space.
//!
//! This crate provides the small, dependency-free geometric vocabulary
//! shared by all the other `blot-*` crates:
//!
//! * [`Point`] — a point in (x, y, t) space,
//! * [`Cuboid`] — an axis-aligned box, used for partitions, queries and
//!   the dataset universe,
//! * [`QuerySize`] — the ⟨W, H, T⟩ extent of a *grouped query* (a query
//!   whose position is unknown but whose size is fixed, Definition 6 of
//!   the paper as adjusted in §III-C1),
//! * the *centroid-range* algebra of §IV-B used by the query cost model
//!   (Equations 8–12): [`Cuboid::centroid_range`],
//!   [`Cuboid::centroid_range_for`], and
//!   [`intersection_probability`].
//!
//! # Example
//!
//! ```
//! use blot_geo::{Cuboid, Point, QuerySize, intersection_probability};
//!
//! // A universe: 2° × 2° of Shanghai for one month of seconds.
//! let universe = Cuboid::new(Point::new(120.0, 30.0, 0.0),
//!                            Point::new(122.0, 32.0, 2.6e6));
//! // A partition covering the south-west spatial quadrant, first half in time.
//! let part = Cuboid::new(Point::new(120.0, 30.0, 0.0),
//!                        Point::new(121.0, 31.0, 1.3e6));
//! // Grouped queries of size 0.2° × 0.2° × 1 day.
//! let qs = QuerySize::new(0.2, 0.2, 86_400.0);
//! let p = intersection_probability(&universe, qs, &part);
//! assert!(p > 0.0 && p <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cuboid;
mod json;
mod point;
mod query_size;

pub use cuboid::Cuboid;
pub use point::Point;
pub use query_size::QuerySize;

/// Probability that a random query of size `qs`, with centroid uniformly
/// distributed over the feasible centroid range of `universe`, intersects
/// the fixed `partition` (Equation 12 of the paper).
///
/// The probability is computed independently per axis and multiplied:
/// the centroid is uniform on a cuboid, so the axis coordinates are
/// independent uniform variables.
///
/// Degenerate axes — a query at least as large as the universe on an axis
/// — always intersect every partition on that axis, contributing a factor
/// of `1`.
///
/// Partitions are assumed to lie inside `universe`; parts of a partition
/// outside the universe cannot attract any query centroid and are
/// effectively clipped.
pub fn intersection_probability(universe: &Cuboid, qs: QuerySize, partition: &Cuboid) -> f64 {
    intersection_probability_within(universe, universe, qs, partition)
}

/// Like [`intersection_probability`], but with the query centroid
/// uniform over `centroid_region ∩ CR(Q_G)` instead of the whole
/// feasible range — the generalisation needed for *hot-region*
/// workloads and partial replication (the paper's future-work
/// extension), where queries concentrate on a sub-universe.
///
/// Returns 0 when the restricted centroid region is empty on some axis.
#[must_use]
pub fn intersection_probability_within(
    universe: &Cuboid,
    centroid_region: &Cuboid,
    qs: QuerySize,
    partition: &Cuboid,
) -> f64 {
    let mut p = 1.0;
    for axis in 0..3 {
        let u_lo = universe.min().axis(axis);
        let u_hi = universe.max().axis(axis);
        let u_len = u_hi - u_lo;
        let q_len = qs.axis(axis);
        // Feasible centroid interval: [u_lo + q/2, u_hi - q/2], or the
        // universe midpoint when the query spans the whole axis.
        let (mut c_lo, mut c_hi) = if q_len >= u_len {
            let mid = (u_lo + u_hi) / 2.0;
            (mid, mid)
        } else {
            (u_lo + q_len / 2.0, u_hi - q_len / 2.0)
        };
        // Restrict to the caller's centroid region.
        c_lo = c_lo.max(centroid_region.min().axis(axis));
        c_hi = c_hi.min(centroid_region.max().axis(axis));
        if c_hi < c_lo {
            return 0.0;
        }
        // Centroids whose query touches the partition on this axis.
        let lo = (partition.min().axis(axis) - q_len / 2.0).max(c_lo);
        let hi = (partition.max().axis(axis) + q_len / 2.0).min(c_hi);
        if hi < lo || (hi == lo && c_hi > c_lo) {
            return 0.0;
        }
        if c_hi > c_lo {
            p *= (hi - lo) / (c_hi - c_lo);
        }
        // Degenerate interval (single possible centroid position):
        // probability on this axis is 1 if that centroid reaches the
        // partition, which the bounds check above already decided.
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Cuboid {
        Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 10.0, 10.0))
    }

    #[test]
    fn probability_of_full_cover_partition_is_one() {
        let u = universe();
        let p = intersection_probability(&u, QuerySize::new(1.0, 1.0, 1.0), &u);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probability_scales_with_partition_extent() {
        let u = universe();
        let half = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(5.0, 10.0, 10.0));
        let quarter = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(2.5, 10.0, 10.0));
        let qs = QuerySize::new(1.0, 1.0, 1.0);
        let p_half = intersection_probability(&u, qs, &half);
        let p_quarter = intersection_probability(&u, qs, &quarter);
        assert!(p_half > p_quarter);
        // Expanded by half a query on each side, over a 9-long feasible range.
        assert!((p_half - (5.0 + 0.5 - 0.5) / 9.0).abs() < 1e-12);
    }

    #[test]
    fn probability_one_when_query_spans_universe() {
        let u = universe();
        let tiny = Cuboid::new(Point::new(4.0, 4.0, 4.0), Point::new(4.1, 4.1, 4.1));
        let qs = QuerySize::new(10.0, 10.0, 10.0);
        let p = intersection_probability(&u, qs, &tiny);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_on_one_axis_yields_zero_probability_only_if_unreachable() {
        // A partition glued to the west border with queries so small they
        // can sit entirely in the east: probability strictly between 0 and 1.
        let u = universe();
        let west = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 10.0, 10.0));
        let p = intersection_probability(&u, QuerySize::new(0.5, 0.5, 0.5), &west);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn restricted_centroid_region_changes_probability() {
        let u = universe();
        let part = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(2.0, 10.0, 10.0));
        let qs = QuerySize::new(1.0, 1.0, 1.0);
        // Centroids restricted to the west quarter: the west partition
        // becomes much more likely than under the full range.
        let west_region = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(2.5, 10.0, 10.0));
        let p_full = intersection_probability(&u, qs, &part);
        let p_west = intersection_probability_within(&u, &west_region, qs, &part);
        assert!(p_west > p_full);
        assert!(
            (p_west - 1.0).abs() < 1e-12,
            "all west-quarter queries touch it"
        );
        // Centroids restricted to the east half never reach it.
        let east_region = Cuboid::new(Point::new(6.0, 0.0, 0.0), Point::new(10.0, 10.0, 10.0));
        let p_east = intersection_probability_within(&u, &east_region, qs, &part);
        assert_eq!(p_east, 0.0);
        // Empty restriction (region outside the feasible range).
        let outside = Cuboid::new(Point::new(9.9, 0.0, 0.0), Point::new(10.0, 10.0, 10.0));
        let p_out =
            intersection_probability_within(&u, &outside, QuerySize::new(9.9, 1.0, 1.0), &part);
        assert_eq!(p_out, 0.0);
    }

    #[test]
    fn unrestricted_region_matches_plain_probability() {
        let u = universe();
        let part = Cuboid::new(Point::new(2.0, 3.0, 1.0), Point::new(4.5, 6.0, 7.0));
        let qs = QuerySize::new(1.5, 2.0, 3.0);
        let a = intersection_probability(&u, qs, &part);
        let b = intersection_probability_within(&u, &u, qs, &part);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn monte_carlo_agreement() {
        use rand::{Rng, SeedableRng};
        let u = universe();
        let part = Cuboid::new(Point::new(2.0, 3.0, 1.0), Point::new(4.5, 6.0, 7.0));
        let qs = QuerySize::new(1.5, 2.0, 3.0);
        let analytic = intersection_probability(&u, qs, &part);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let mut hits = 0u32;
        let n = 200_000;
        for _ in 0..n {
            let cx = rng.gen_range(0.75..=9.25);
            let cy = rng.gen_range(1.0..=9.0);
            let ct = rng.gen_range(1.5..=8.5);
            let q = Cuboid::from_centroid(Point::new(cx, cy, ct), qs);
            if q.intersects(&part) {
                hits += 1;
            }
        }
        let empirical = f64::from(hits) / f64::from(n);
        assert!(
            (analytic - empirical).abs() < 0.01,
            "analytic={analytic} empirical={empirical}"
        );
    }
}
