//! JSON round-trips for the geometry types (manifest persistence).

use crate::{Cuboid, Point};
use blot_json::{FromJson, Json, JsonError, ToJson};

impl ToJson for Point {
    /// `[x, y, t]`.
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::Num(self.x),
            Json::Num(self.y),
            Json::Num(self.t),
        ])
    }
}

impl FromJson for Point {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_array() {
            Some([x, y, t]) => {
                let coord = |v: &Json, name| {
                    v.as_f64()
                        .ok_or_else(|| JsonError::shape(format!("point {name} must be a number")))
                };
                Ok(Point::new(coord(x, "x")?, coord(y, "y")?, coord(t, "t")?))
            }
            _ => Err(JsonError::shape("expected a 3-element [x, y, t] array")),
        }
    }
}

impl ToJson for Cuboid {
    /// `{"min": [...], "max": [...]}`.
    fn to_json(&self) -> Json {
        Json::obj([("min", self.min().to_json()), ("max", self.max().to_json())])
    }
}

impl FromJson for Cuboid {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let min = Point::from_json(value.field("min")?)?;
        let max = Point::from_json(value.field("max")?)?;
        // `Cuboid::new` asserts the ordering invariant; validate here so
        // corrupt input surfaces as an error rather than a panic.
        for axis in 0..3 {
            if min.axis(axis) > max.axis(axis) || min.axis(axis).is_nan() || max.axis(axis).is_nan()
            {
                return Err(JsonError::shape(format!(
                    "cuboid min exceeds max on axis {axis}"
                )));
            }
        }
        Ok(Cuboid::new(min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_round_trips() {
        let p = Point::new(121.47, 31.23, 86_400.0);
        let j = p.to_json();
        assert_eq!(Point::from_json(&j).expect("round-trip"), p);
    }

    #[test]
    fn cuboid_round_trips_through_text() {
        let c = Cuboid::new(Point::new(-1.0, 2.0, 0.0), Point::new(3.5, 2.0, 10.0));
        let text = c.to_json().pretty();
        let back = Cuboid::from_json(&Json::parse(&text).expect("parse")).expect("shape");
        assert_eq!(back, c);
    }

    #[test]
    fn inverted_cuboid_is_rejected_not_panicking() {
        let bad = Json::parse(r#"{"min":[1,0,0],"max":[0,0,0]}"#).expect("parse");
        assert!(Cuboid::from_json(&bad).is_err());
    }

    #[test]
    fn nan_becomes_null_and_is_rejected() {
        let j = Point::new(f64::NAN, 0.0, 0.0).to_json();
        let text = j.to_string();
        let parsed = Json::parse(&text).expect("parse");
        assert!(Point::from_json(&parsed).is_err());
    }
}
