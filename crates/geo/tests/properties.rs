//! Property-based tests for the geometry kernel.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_geo::{intersection_probability, Cuboid, Point, QuerySize};
use proptest::prelude::*;

fn arb_point(lo: f64, hi: f64) -> impl Strategy<Value = Point> {
    (lo..hi, lo..hi, lo..hi).prop_map(|(x, y, t)| Point::new(x, y, t))
}

fn arb_cuboid() -> impl Strategy<Value = Cuboid> {
    (arb_point(-100.0, 100.0), arb_point(-100.0, 100.0))
        .prop_map(|(a, b)| Cuboid::new(a.min_with(&b), a.max_with(&b)))
}

proptest! {
    #[test]
    fn intersection_is_commutative(a in arb_cuboid(), b in arb_cuboid()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn intersection_contained_in_both(a in arb_cuboid(), b in arb_cuboid()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_cuboid(&i));
            prop_assert!(b.contains_cuboid(&i));
            prop_assert!(i.volume() <= a.volume() + 1e-9);
            prop_assert!(i.volume() <= b.volume() + 1e-9);
        }
    }

    #[test]
    fn union_bounds_contains_both(a in arb_cuboid(), b in arb_cuboid()) {
        let u = a.union_bounds(&b);
        prop_assert!(u.contains_cuboid(&a));
        prop_assert!(u.contains_cuboid(&b));
    }

    #[test]
    fn split_partitions_volume(c in arb_cuboid(), axis in 0usize..3, frac in 0.0f64..=1.0) {
        let lo_v = c.min().axis(axis);
        let hi_v = c.max().axis(axis);
        let at = lo_v + (hi_v - lo_v) * frac;
        let (lo, hi) = c.split_at(axis, at);
        prop_assert!((lo.volume() + hi.volume() - c.volume()).abs() <= 1e-6 * c.volume().max(1.0));
        prop_assert_eq!(lo.union_bounds(&hi), c);
    }

    #[test]
    fn probability_is_a_probability(
        part_a in arb_point(0.0, 50.0),
        part_b in arb_point(0.0, 50.0),
        qw in 0.1f64..60.0, qh in 0.1f64..60.0, qt in 0.1f64..60.0,
    ) {
        let u = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(50.0, 50.0, 50.0));
        let part = Cuboid::new(part_a.min_with(&part_b), part_a.max_with(&part_b));
        let p = intersection_probability(&u, QuerySize::new(qw, qh, qt), &part);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "p = {}", p);
    }

    #[test]
    fn probability_matches_centroid_range_volume_ratio(
        qw in 0.5f64..10.0, qh in 0.5f64..10.0, qt in 0.5f64..10.0,
        px in 0.0f64..40.0, py in 0.0f64..40.0, pt in 0.0f64..40.0,
        pw in 1.0f64..10.0, ph in 1.0f64..10.0, pd in 1.0f64..10.0,
    ) {
        // When no axis degenerates, Equation 12's volume ratio must equal
        // the per-axis product computed by `intersection_probability`.
        let u = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(50.0, 50.0, 50.0));
        let part = Cuboid::new(
            Point::new(px, py, pt),
            Point::new((px + pw).min(50.0), (py + ph).min(50.0), (pt + pd).min(50.0)),
        );
        let qs = QuerySize::new(qw, qh, qt);
        let p = intersection_probability(&u, qs, &part);
        let cr = u.centroid_range(qs);
        match u.centroid_range_for(qs, &part) {
            Some(crp) => {
                let ratio = crp.volume() / cr.volume();
                prop_assert!((p - ratio).abs() < 1e-9, "p={} ratio={}", p, ratio);
            }
            None => prop_assert!(p == 0.0),
        }
    }

    #[test]
    fn monotone_in_query_size(
        scale in 1.0f64..4.0,
        qw in 0.5f64..5.0, qh in 0.5f64..5.0, qt in 0.5f64..5.0,
    ) {
        // Larger queries can only be more likely to touch a fixed partition.
        let u = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(50.0, 50.0, 50.0));
        let part = Cuboid::new(Point::new(20.0, 20.0, 20.0), Point::new(30.0, 30.0, 30.0));
        let small = intersection_probability(&u, QuerySize::new(qw, qh, qt), &part);
        let large = intersection_probability(
            &u,
            QuerySize::new(qw * scale, qh * scale, qt * scale),
            &part,
        );
        prop_assert!(large >= small - 1e-12);
    }
}
