//! Property-based tests for the selection algorithms on random cost
//! matrices.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_core::select::{
    ideal_cost, prune_dominated, select_greedy, select_greedy_reference,
    select_greedy_reference_with_stats, select_greedy_with_stats, select_mip, select_single,
    CostMatrix,
};
use blot_core::units::Bytes;
use blot_mip::MipSolver;
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = CostMatrix> {
    (2usize..=5, 2usize..=8).prop_flat_map(|(n, m)| {
        let costs = prop::collection::vec(prop::collection::vec(1.0f64..100.0, m), n);
        let weights = prop::collection::vec(0.5f64..4.0, n);
        let storage = prop::collection::vec(1.0f64..20.0, m);
        (costs, weights, storage).prop_map(|(costs, weights, storage)| CostMatrix {
            costs,
            weights,
            storage: storage.into_iter().map(Bytes::new).collect(),
        })
    })
}

/// Brute-force the optimal subset (m ≤ 8 ⇒ ≤ 256 subsets).
fn brute_force(matrix: &CostMatrix, budget: Bytes) -> f64 {
    let m = matrix.n_candidates();
    let mut best = f64::INFINITY;
    for mask in 1u32..(1 << m) {
        let chosen: Vec<usize> = (0..m).filter(|&j| mask >> j & 1 == 1).collect();
        if matrix.storage_of(&chosen) <= budget {
            best = best.min(matrix.workload_cost(&chosen));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mip_is_exact_on_random_matrices(matrix in arb_matrix(), budget_frac in 0.2f64..1.0) {
        let budget = matrix.storage.iter().copied().sum::<Bytes>() * budget_frac;
        let brute = brute_force(&matrix, budget);
        if brute.is_finite() {
            let mip = select_mip(&matrix, budget, &MipSolver::default()).expect("feasible");
            prop_assert!(
                (mip.workload_cost - brute).abs() <= 1e-6 * brute.max(1.0),
                "mip {} vs brute {}",
                mip.workload_cost,
                brute
            );
            prop_assert!(mip.storage <= budget + Bytes::new(1e-9));
        }
    }

    #[test]
    fn strategy_ordering_always_holds(matrix in arb_matrix(), budget_frac in 0.2f64..1.5) {
        let budget = matrix.storage.iter().copied().sum::<Bytes>() * budget_frac;
        let single = select_single(&matrix, budget).workload_cost;
        let greedy = select_greedy(&matrix, budget).workload_cost;
        let ideal = ideal_cost(&matrix);
        if single.is_finite() {
            let mip = select_mip(&matrix, budget, &MipSolver::default()).expect("feasible");
            prop_assert!(mip.workload_cost <= single + 1e-9);
            prop_assert!(mip.workload_cost <= greedy + 1e-9);
            prop_assert!(mip.workload_cost + 1e-9 >= ideal);
            // Note: greedy *can* lose to single at tight budgets (the
            // density heuristic spends budget on small cheap replicas) —
            // the paper's own Figure 4 shows this below budget 1.0×, so
            // no ordering is asserted between them.
            prop_assert!(greedy + 1e-9 >= ideal);
        }
    }

    #[test]
    fn pruning_never_changes_the_optimum(matrix in arb_matrix(), budget_frac in 0.3f64..1.0) {
        let budget = matrix.storage.iter().copied().sum::<Bytes>() * budget_frac;
        let kept = prune_dominated(&matrix);
        prop_assert!(!kept.is_empty());
        let before = brute_force(&matrix, budget);
        let sub = CostMatrix {
            costs: matrix
                .costs
                .iter()
                .map(|row| kept.iter().map(|&j| row[j]).collect())
                .collect(),
            weights: matrix.weights.clone(),
            storage: kept.iter().map(|&j| matrix.storage[j]).collect(),
        };
        let after = brute_force(&sub, budget);
        if before.is_finite() {
            prop_assert!(
                (before - after).abs() <= 1e-9 * before.max(1.0),
                "pruning changed optimum {before} → {after}"
            );
        } else {
            prop_assert!(after.is_infinite());
        }
    }

    #[test]
    fn lazy_greedy_matches_naive_reference_exactly(
        matrix in arb_matrix(),
        budget_frac in 0.05f64..2.0,
    ) {
        let budget = matrix.storage.iter().copied().sum::<Bytes>() * budget_frac;
        let lazy = select_greedy(&matrix, budget);
        let naive = select_greedy_reference(&matrix, budget);
        // Not just the same set: the same candidates in the same pick
        // order, and bit-identical cost/storage.
        prop_assert_eq!(&lazy.chosen, &naive.chosen);
        prop_assert!(lazy.workload_cost.total_cmp(&naive.workload_cost).is_eq());
        prop_assert!(lazy.storage.get().total_cmp(&naive.storage.get()).is_eq());
    }

    #[test]
    fn lazy_greedy_never_evaluates_more_than_naive(
        matrix in arb_matrix(),
        budget_frac in 0.05f64..2.0,
    ) {
        let budget = matrix.storage.iter().copied().sum::<Bytes>() * budget_frac;
        let (_, lazy) = select_greedy_with_stats(&matrix, budget);
        let (_, naive) = select_greedy_reference_with_stats(&matrix, budget);
        prop_assert!(
            lazy.gain_evaluations <= naive.gain_evaluations,
            "lazy {} > naive {}",
            lazy.gain_evaluations,
            naive.gain_evaluations
        );
    }

    #[test]
    fn greedy_stays_within_budget_and_improves_monotonically(
        matrix in arb_matrix(),
        budget_frac in 0.1f64..2.0,
    ) {
        let budget = matrix.storage.iter().copied().sum::<Bytes>() * budget_frac;
        let sel = select_greedy(&matrix, budget);
        prop_assert!(sel.storage <= budget + Bytes::new(1e-9));
        // Each chosen prefix must cost no more than the previous one.
        let mut prev = f64::INFINITY;
        for k in 1..=sel.chosen.len() {
            let cost = matrix.workload_cost(&sel.chosen[..k]);
            prop_assert!(cost <= prev + 1e-9);
            prev = cost;
        }
    }
}

/// The lazy greedy's whole point: on a realistic-sized instance it does
/// a fraction of the naive loop's gain evaluations while picking the
/// exact same replicas. The ISSUE acceptance bound is < 50% on a
/// 200-query × 64-candidate matrix; CELF typically lands far below.
#[test]
fn lazy_greedy_halves_evaluations_on_200x64() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(0xCE1F);
    let (n, m) = (200usize, 64usize);
    let matrix = CostMatrix {
        costs: (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(1.0..500.0)).collect())
            .collect(),
        weights: (0..n).map(|_| rng.gen_range(0.5..4.0)).collect(),
        storage: (0..m)
            .map(|_| Bytes::new(rng.gen_range(1.0..30.0)))
            .collect(),
    };
    let budget = matrix.storage.iter().copied().sum::<Bytes>() * 0.4;
    let (lazy_sel, lazy) = select_greedy_with_stats(&matrix, budget);
    let (naive_sel, naive) = select_greedy_reference_with_stats(&matrix, budget);
    assert_eq!(lazy_sel.chosen, naive_sel.chosen);
    assert!(
        !lazy_sel.chosen.is_empty(),
        "instance must actually select something"
    );
    assert!(
        2 * lazy.gain_evaluations < naive.gain_evaluations,
        "lazy did {} evaluations, naive {} — expected < 50%",
        lazy.gain_evaluations,
        naive.gain_evaluations
    );
}
