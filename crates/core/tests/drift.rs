//! Cost-model drift accounting, end to end: a store with a
//! mis-calibrated cost model must flag the affected encoding scheme in
//! its [`DriftReport`], while a calibrated store stays in band.
// Test code: panicking on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use blot_core::obs::DriftBand;
use blot_core::prelude::*;
use blot_storage::MemBackend;
use blot_tracegen::FleetConfig;

const GOOD: EncodingScheme = EncodingScheme::new(Layout::Row, Compression::Lzf);
const BAD: EncodingScheme = EncodingScheme::new(Layout::Column, Compression::Deflate);

fn fleet() -> FleetConfig {
    let mut config = FleetConfig::small();
    config.num_taxis = 60;
    config.records_per_taxi = 150;
    config
}

/// A dozen distinct centroid queries of varying extent.
fn queries(universe: &Cuboid) -> Vec<Cuboid> {
    (2..14)
        .map(|k| {
            let f = f64::from(k);
            Cuboid::from_centroid(
                universe.centroid(),
                QuerySize::new(
                    universe.extent(0) / f,
                    universe.extent(1) / f,
                    universe.extent(2) / f,
                ),
            )
        })
        .collect()
}

fn store_with_model(model: CostModel) -> BlotStore<MemBackend> {
    let config = fleet();
    let data = config.generate();
    let universe = config.universe();
    let mut store = BlotStore::new(
        MemBackend::new(),
        EnvProfile::local_cluster(),
        universe,
        model,
    );
    store
        .build_replica(&data, ReplicaConfig::new(SchemeSpec::new(16, 4), GOOD))
        .unwrap();
    store
        .build_replica(&data, ReplicaConfig::new(SchemeSpec::new(4, 2), BAD))
        .unwrap();
    store
}

/// The band used by both tests: wide enough to absorb calibration
/// noise, far narrower than a 1000× parameter error.
fn band() -> DriftBand {
    DriftBand {
        lo: 0.05,
        hi: 20.0,
        min_samples: 8,
    }
}

fn calibrated_model() -> CostModel {
    let config = fleet();
    CostModel::calibrate(&EnvProfile::local_cluster(), &config.generate(), 0xD81F7)
}

#[test]
fn calibrated_store_stays_in_band() {
    if !blot_obs::enabled() {
        return;
    }
    let store = store_with_model(calibrated_model());
    for q in queries(&store.universe()) {
        for replica in 0..2 {
            store.query_on(replica, &q).unwrap();
        }
    }
    let report = store.drift_report(band());
    for row in &report.schemes {
        if row.scheme == GOOD || row.scheme == BAD {
            assert!(
                row.samples >= 12,
                "{:?}: {} samples",
                row.scheme,
                row.samples
            );
        }
    }
    assert!(
        report.is_calibrated(),
        "calibrated model must stay in band: {:?}",
        report.flagged().collect::<Vec<_>>()
    );
}

#[test]
fn miscalibrated_scheme_is_flagged() {
    if !blot_obs::enabled() {
        return;
    }
    // Take the calibrated parameters and corrupt one scheme's ScanRate
    // by 1000×: predictions for that scheme (and only that scheme) are
    // now three orders of magnitude too expensive.
    let calibrated = calibrated_model();
    let params = blot_codec::SchemeTable::build(|s| {
        let p = calibrated.params(s);
        if s == BAD {
            CostParams {
                ms_per_record: Millis::new(p.ms_per_record.get() * 1000.0),
                extra_ms: Millis::new(p.extra_ms.get() * 1000.0),
            }
        } else {
            p
        }
    });
    let bpr = blot_codec::SchemeTable::build(|s| calibrated.bytes_per_record(s));
    let store = store_with_model(CostModel::from_params("miscalibrated", params, bpr));
    for q in queries(&store.universe()) {
        for replica in 0..2 {
            store.query_on(replica, &q).unwrap();
        }
    }
    let report = store.drift_report(band());
    let flagged: Vec<EncodingScheme> = report.flagged().map(|s| s.scheme).collect();
    assert_eq!(flagged, vec![BAD], "exactly the corrupted scheme drifts");
    let bad_row = report
        .schemes
        .iter()
        .find(|s| s.scheme == BAD)
        .expect("BAD row present");
    assert!(
        bad_row.median_ratio > band().hi,
        "1000× over-prediction must blow the upper bound, got {}",
        bad_row.median_ratio
    );
    assert!(!report.is_calibrated());
}
