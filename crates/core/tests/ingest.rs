//! Continuous-ingest integration: new GPS fixes land in every replica,
//! queries see them immediately, and repair still works afterwards.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_core::prelude::*;
use blot_core::store::BlotStore;
use blot_core::CoreError;
use blot_storage::{FailingBackend, FailureMode, MemBackend, UnitKey};
use blot_tracegen::FleetConfig;

fn store_with_data() -> (
    BlotStore<FailingBackend<MemBackend>>,
    RecordBatch,
    FleetConfig,
) {
    let mut fleet = FleetConfig::small();
    fleet.num_taxis = 50;
    fleet.records_per_taxi = 100;
    let data = fleet.generate();
    let universe = fleet.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0x1A6);
    let mut store = BlotStore::new(FailingBackend::new(MemBackend::new()), env, universe, model);
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(16, 4),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .unwrap();
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .unwrap();
    (store, data, fleet)
}

/// Fresh fixes from taxis that were not in the original build.
fn new_fixes(fleet: &FleetConfig, n: u32) -> RecordBatch {
    let mut extended = fleet.clone();
    extended.num_taxis = fleet.num_taxis + n;
    (fleet.num_taxis..extended.num_taxis)
        .flat_map(|taxi| extended.taxi_trace(taxi))
        .collect()
}

#[test]
fn ingested_records_are_visible_on_every_replica() {
    let (mut store, data, fleet) = store_with_data();
    let incoming = new_fixes(&fleet, 10);
    assert!(!incoming.is_empty());
    let before: Vec<u64> = store.replicas().iter().map(|r| r.bytes).collect();

    let report = store.ingest(&incoming).expect("ingest");
    assert_eq!(report.records, incoming.len());
    assert!(report.units_rewritten > 0);

    let u = store.universe();
    for id in 0..2 {
        let result = store.query_on(id, &u).expect("query");
        assert_eq!(
            result.records.len(),
            data.len() + incoming.len(),
            "replica {id} must serve old + new records"
        );
        assert_eq!(
            store.replicas()[id as usize].records,
            (data.len() + incoming.len()) as u64
        );
        assert_ne!(store.replicas()[id as usize].bytes, before[id as usize]);
    }

    // Partition counts stay truthful.
    for replica in store.replicas() {
        let total: usize = replica.scheme.partitions().iter().map(|p| p.count).sum();
        assert_eq!(total, data.len() + incoming.len());
    }
}

#[test]
fn ingest_rejects_out_of_universe_records() {
    let (mut store, data, _) = store_with_data();
    let mut bad = RecordBatch::new();
    bad.push(Record::new(9_999, -1, 0.0, 0.0)); // far outside
    match store.ingest(&bad) {
        Err(CoreError::OutOfUniverse { rejected }) => assert_eq!(rejected, 1),
        other => panic!("expected OutOfUniverse, got {other:?}"),
    }
    // Nothing was written.
    let u = store.universe();
    assert_eq!(store.query_on(0, &u).unwrap().records.len(), data.len());
}

#[test]
fn repair_after_ingest_restores_the_grown_unit() {
    let (mut store, data, fleet) = store_with_data();
    let incoming = new_fixes(&fleet, 5);
    store.ingest(&incoming).expect("ingest");

    // Kill a unit on replica 0; repair must reconstruct it *including*
    // the ingested records (sourced from replica 1).
    let key = UnitKey {
        replica: 0,
        partition: 2,
    };
    store.backend().inject(key, FailureMode::Drop);
    let report = store.repair_all().expect("repair");
    assert!(report.repaired.contains(&key));
    assert!(report.unrecoverable.is_empty());

    let u = store.universe();
    assert_eq!(
        store.query_on(0, &u).unwrap().records.len(),
        data.len() + incoming.len()
    );
}

#[test]
fn ingest_into_empty_store_errors() {
    let mut fleet = FleetConfig::small();
    fleet.num_taxis = 5;
    fleet.records_per_taxi = 10;
    let data = fleet.generate();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 1);
    let mut store: BlotStore<MemBackend> =
        BlotStore::new(MemBackend::new(), env, fleet.universe(), model);
    assert!(matches!(store.ingest(&data), Err(CoreError::NoReplicas)));
}
