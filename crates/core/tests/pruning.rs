//! Zone-map pruning integration: pruned queries stay bit-identical to
//! the oracle on every replica, skipped units are counted, legacy units
//! (no footer) still scan, and scrub/repair heal stripped or forged
//! footers.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_codec::{ZoneMap, ZONE_MAP_FOOTER_LEN};
use blot_core::prelude::*;
use blot_core::store::BlotStore;
use blot_storage::{Backend, MemBackend, UnitKey};
use blot_tracegen::FleetConfig;

/// Two diverse replicas over a fleet whose universe reserves 2× time
/// headroom, so trailing time slices exist for zone maps to prune.
fn store_with_data() -> (BlotStore<MemBackend>, RecordBatch) {
    let mut fleet = FleetConfig::small();
    fleet.num_taxis = 60;
    fleet.records_per_taxi = 200;
    let data = fleet.generate();
    let universe = fleet.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 0x2A9);
    let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(16, 4),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .unwrap();
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .unwrap();
    (store, data)
}

/// Multiset fingerprint of a batch, order-independent and float-exact.
type Fingerprint = Vec<(u32, i64, u64, u64, u32, u32, bool, u8)>;

fn fingerprint(batch: &RecordBatch) -> Fingerprint {
    let mut keys: Fingerprint = batch
        .iter()
        .map(|r| {
            (
                r.oid,
                r.time,
                r.x.to_bits(),
                r.y.to_bits(),
                r.speed.to_bits(),
                r.heading.to_bits(),
                r.occupied,
                r.passengers,
            )
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn last_fix_time(data: &RecordBatch) -> i64 {
    data.times.iter().copied().max().expect("non-empty fleet")
}

/// "Everything after T" — the selective shape zone maps exist for.
fn tail_query(u: &Cuboid, t_lo: f64) -> Cuboid {
    Cuboid::new(
        Point::new(u.min().x, u.min().y, t_lo),
        Point::new(u.max().x, u.max().y, u.max().t - 1.0),
    )
}

#[test]
fn pruned_queries_match_the_oracle_on_every_replica() {
    let (store, data) = store_with_data();
    let u = store.universe();
    let t_max = last_fix_time(&data) as f64;
    let queries = [
        // Mid-universe box: plenty of matches, little pruning.
        Cuboid::from_centroid(
            u.centroid(),
            QuerySize::new(u.extent(0) / 3.0, u.extent(1) / 3.0, u.extent(2) / 3.0),
        ),
        // Time tail straddling the last fixes: matches + prunes.
        tail_query(&u, t_max * 0.9),
        // Entirely inside the ingest headroom: prunes everything.
        tail_query(&u, t_max + 1.0),
        // Thin spatial sliver.
        Cuboid::new(
            Point::new(121.0, u.min().y, 0.0),
            Point::new(121.05, u.max().y, t_max),
        ),
    ];
    for (qi, q) in queries.iter().enumerate() {
        let expected = fingerprint(&data.filter_range(q));
        for id in 0..2 {
            let result = store.query_on(id, q).unwrap();
            assert_eq!(
                fingerprint(&result.records),
                expected,
                "query {qi} on replica {id} diverged from the oracle"
            );
        }
    }
}

#[test]
fn headroom_query_skips_every_involved_unit() {
    let (store, data) = store_with_data();
    let u = store.universe();
    let q = tail_query(&u, last_fix_time(&data) as f64 + 1.0);
    let before = store.metrics().units_skipped.value();
    let result = store.query_on(0, &q).unwrap();
    assert!(result.records.is_empty());
    assert!(result.partitions_scanned > 0, "tail slices must be planned");
    assert_eq!(
        result.units_skipped, result.partitions_scanned,
        "no unit holds post-tail data, so all must prune"
    );
    assert!(result.bytes_skipped > 0);
    assert_eq!(
        store.metrics().units_skipped.value() - before,
        result.units_skipped as u64
    );
    assert!(store.metrics().bytes_skipped.value() >= result.bytes_skipped);
}

#[test]
fn straddling_query_prunes_some_units_and_scans_the_rest() {
    let (store, data) = store_with_data();
    let u = store.universe();
    // Pick the prune threshold from the actual per-unit bounds: the
    // median of the distinct unit max-times guarantees both outcomes.
    let mut maxes: Vec<i64> = store
        .backend()
        .list()
        .into_iter()
        .filter(|k| k.replica == 0)
        .map(|k| {
            let bytes = store.backend().get(k).unwrap();
            let (_, zm) = ZoneMap::split_footer(&bytes[1..]).unwrap();
            zm.expect("freshly built units carry footers")
        })
        .filter(|zm| zm.count > 0)
        .map(|zm| zm.max_time)
        .collect();
    maxes.sort_unstable();
    maxes.dedup();
    assert!(maxes.len() >= 2, "need spread in unit bounds");
    let t_lo = maxes[maxes.len() / 2] as f64 + 0.5;
    let q = tail_query(&u, t_lo);
    let result = store.query_on(0, &q).unwrap();
    assert!(result.units_skipped > 0, "half the unit bounds sit below T");
    assert!(
        result.units_skipped < result.partitions_scanned,
        "half the unit bounds sit above T"
    );
    assert_eq!(
        fingerprint(&result.records),
        fingerprint(&data.filter_range(&q))
    );
}

#[test]
fn legacy_units_scan_identically_and_scrub_flags_them() {
    let (store, data) = store_with_data();
    let u = store.universe();
    let q = tail_query(&u, last_fix_time(&data) as f64 * 0.9);
    let expected = fingerprint(&data.filter_range(&q));

    // Strip the footer from every unit of replica 0, simulating data
    // written before zone maps existed.
    let stripped: Vec<UnitKey> = store
        .backend()
        .list()
        .into_iter()
        .filter(|k| k.replica == 0)
        .collect();
    for &key in &stripped {
        let mut bytes = store.backend().get(key).unwrap();
        let (payload, zm) = ZoneMap::split_footer(&bytes[1..]).unwrap();
        assert!(zm.is_some(), "built units carry footers");
        let keep = 1 + payload.len();
        assert_eq!(keep + ZONE_MAP_FOOTER_LEN, bytes.len());
        bytes.truncate(keep);
        store.backend().put(key, bytes).unwrap();
    }

    // Legacy units still answer queries exactly — they just can't prune.
    let result = store.query_on(0, &q).unwrap();
    assert_eq!(fingerprint(&result.records), expected);
    assert_eq!(result.units_skipped, 0, "no footer, no pruning");

    // Scrub reports exactly the stripped units as footer mismatches.
    let before = store.metrics().scrub_footer_mismatches.value();
    let mut damaged = store.scrub().unwrap();
    damaged.sort_unstable();
    let mut want = stripped.clone();
    want.sort_unstable();
    assert_eq!(damaged, want);
    assert_eq!(
        store.metrics().scrub_footer_mismatches.value() - before,
        stripped.len() as u64
    );

    // Repair rewrites them with fresh footers and counts the mismatches.
    let report = store.repair_all().unwrap();
    assert_eq!(report.units_footer_mismatch, stripped.len() as u64);
    assert_eq!(report.units_repaired, stripped.len() as u64);
    assert!(report.unrecoverable.is_empty());
    assert!(store.scrub().unwrap().is_empty(), "post-repair scrub clean");

    // Pruning works again after the upgrade-by-repair.
    let beyond = tail_query(&u, last_fix_time(&data) as f64 + 1.0);
    let result = store.query_on(0, &beyond).unwrap();
    assert!(result.units_skipped > 0);
    assert_eq!(
        fingerprint(&result.records),
        fingerprint(&RecordBatch::new())
    );
}

#[test]
fn forged_footer_is_caught_by_scrub_and_healed_by_repair() {
    let (store, data) = store_with_data();
    let u = store.universe();
    let key = UnitKey {
        replica: 0,
        partition: 3,
    };

    // Replace the unit's footer with a checksum-valid footer describing
    // entirely different data: bounds lie, bytes don't.
    let mut bytes = store.backend().get(key).unwrap();
    let keep = bytes.len() - ZONE_MAP_FOOTER_LEN;
    bytes.truncate(keep);
    let mut alien = RecordBatch::new();
    for i in 0..3 {
        alien.push(Record::new(i, 999_999_999, 100.0, 10.0));
    }
    ZoneMap::from_batch(&alien).append_to(&mut bytes);
    store.backend().put(key, bytes).unwrap();

    // Scrub compares stored bounds against the decoded payload and
    // flags exactly this unit.
    let damaged = store.scrub().unwrap();
    assert_eq!(damaged, vec![key]);

    store.repair_unit(key).unwrap();
    assert!(store.scrub().unwrap().is_empty());

    // The healed footer prunes and answers correctly again.
    let q = tail_query(&u, last_fix_time(&data) as f64 * 0.9);
    let result = store.query_on(0, &q).unwrap();
    assert_eq!(
        fingerprint(&result.records),
        fingerprint(&data.filter_range(&q))
    );
}
