//! Concurrency stress tests: many threads querying one store through
//! the shared scan-executor pool must see exactly the results a serial
//! caller sees.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_core::prelude::*;
use blot_storage::{MemBackend, ScanExecutor};
use blot_tracegen::FleetConfig;
use std::sync::Arc;

fn build_store() -> (BlotStore<MemBackend>, Vec<Cuboid>, RecordBatch) {
    let mut config = FleetConfig::small();
    config.num_taxis = 60;
    config.records_per_taxi = 100;
    let data = config.generate();
    let universe = config.universe();
    let env = EnvProfile::local_cluster();
    let model = CostModel::calibrate(&env, &data, 23);
    // A deliberately small pool so tasks from concurrent queries
    // interleave on shared workers.
    let mut store = BlotStore::with_pool(
        MemBackend::new(),
        env,
        universe,
        model,
        Arc::new(ScanExecutor::new(3)),
    );
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(16, 4),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
        )
        .unwrap();
    store
        .build_replica(
            &data,
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        )
        .unwrap();
    // A mix of query shapes: centred boxes of growing extent plus a few
    // off-centre slabs, so different partition counts are involved.
    let mut queries = Vec::new();
    for k in 1..=6 {
        let f = f64::from(k) / 7.0;
        queries.push(Cuboid::from_centroid(
            universe.centroid(),
            QuerySize::new(
                universe.extent(0) * f,
                universe.extent(1) * f,
                universe.extent(2) * f,
            ),
        ));
    }
    queries.push(universe);
    (store, queries, data)
}

#[test]
fn concurrent_queries_match_serial_results() {
    let (store, queries, data) = build_store();

    // Serial oracle: per query, the matched record count on each replica
    // (both replicas must agree with the raw-data count).
    let expected: Vec<usize> = queries.iter().map(|q| data.count_in_range(q)).collect();
    for (q, &want) in queries.iter().zip(&expected) {
        for id in 0..2 {
            assert_eq!(store.query_on(id, q).unwrap().records.len(), want);
        }
    }

    // Hammer the same store from many threads through the shared pool:
    // every thread loops over every query on every replica.
    let store = Arc::new(store);
    let queries = Arc::new(queries);
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let store = Arc::clone(&store);
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for round in 0..4 {
                    for (qi, q) in queries.iter().enumerate() {
                        let id = ((t + round + qi) % 2) as u32;
                        let result = store.query_on(id, q).unwrap();
                        assert_eq!(
                            result.records.len(),
                            expected[qi],
                            "thread {t} round {round} query {qi} replica {id}"
                        );
                        assert!(result.records.iter().all(|r| r.in_range(q)));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_routed_queries_agree_with_oracle() {
    let (store, queries, data) = build_store();
    let expected: Vec<usize> = queries.iter().map(|q| data.count_in_range(q)).collect();
    let store = Arc::new(store);
    let queries = Arc::new(queries);
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let store = Arc::clone(&store);
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for (qi, q) in queries.iter().enumerate() {
                    let result = store.query(q).unwrap();
                    assert_eq!(result.records.len(), expected[qi]);
                    assert!(result.failed_over.is_empty());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
