//! The full adaptive loop: serve queries → log → derive workload →
//! recommend → apply → serve better.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_codec::SchemeTable;
use blot_core::adapt::{recommend, Strategy};
use blot_core::cost::{CostModel, CostParams};
use blot_core::prelude::*;
use blot_core::store::BlotStore;
use blot_storage::MemBackend;
use blot_tracegen::FleetConfig;

fn synthetic_model() -> CostModel {
    // Scan-dominated, deterministic.
    let params = SchemeTable::build(|_| CostParams {
        ms_per_record: Millis::new(1e-2),
        // Small enough that per-record scanning dominates even for tiny
        // probes — the regime this test is about.
        extra_ms: Millis::new(2.0),
    });
    let bpr = SchemeTable::build(|_| 38.0);
    CostModel::from_params("synthetic", params, bpr)
}

#[test]
fn adaptive_loop_improves_a_mismatched_store() {
    let mut fleet = FleetConfig::small();
    fleet.num_taxis = 60;
    fleet.records_per_taxi = 120;
    let data = fleet.generate();
    let universe = fleet.universe();
    let model = synthetic_model();

    // Day 0: ops provisioned one coarse replica.
    let coarse = ReplicaConfig::new(
        SchemeSpec::new(4, 2),
        EncodingScheme::new(Layout::Row, Compression::Plain),
    );
    let mut store = BlotStore::new(
        MemBackend::new(),
        EnvProfile::local_cluster(),
        universe,
        model.clone(),
    );
    store.enable_query_log(1000);
    store.build_replica(&data, coarse).expect("build");

    // The real workload turns out to be tiny cell probes.
    for i in 0..120 {
        let f = 0.02 + 0.002 * f64::from(i % 5);
        let q = Cuboid::from_centroid(
            universe.centroid(),
            QuerySize::new(f, f, universe.extent(2) / 50.0),
        );
        let _ = store.query(&q).expect("query");
    }
    let log = store.query_log();
    assert_eq!(log.len(), 120);

    // Nightly job: derive the workload and ask the advisor.
    let workload = log.derive_workload(3, 0xADA);
    let candidates = ReplicaConfig::grid(
        &[
            SchemeSpec::new(4, 2),
            SchemeSpec::new(16, 4),
            SchemeSpec::new(64, 16),
        ],
        &[
            EncodingScheme::new(Layout::Row, Compression::Plain),
            EncodingScheme::new(Layout::Row, Compression::Lzf),
        ],
    );
    let budget = Bytes::new(38.0 * 6.5e7 * 3.0); // three plain copies
    let rec = recommend(
        &model,
        &workload,
        &candidates,
        &[coarse],
        &data,
        universe,
        6.5e7,
        budget,
        Strategy::Exact,
    )
    .expect("recommend");

    // The advisor must propose at least one finer replica and a real
    // improvement over the coarse-only layout.
    assert!(
        !rec.to_build.is_empty(),
        "advisor should propose builds: {rec:?}"
    );
    assert!(
        rec.to_build
            .iter()
            .any(|c| c.spec.total_partitions() > coarse.spec.total_partitions()),
        "expected a finer-grained proposal, got {:?}",
        rec.to_build
    );
    assert!(
        rec.improvement() > 0.2,
        "improvement was only {}",
        rec.improvement()
    );

    // Apply the migration and check routing now prefers a new replica
    // for the hot query shape.
    for config in &rec.to_build {
        store.build_replica(&data, *config).expect("apply build");
    }
    let hot = Cuboid::from_centroid(
        universe.centroid(),
        QuerySize::new(0.02, 0.02, universe.extent(2) / 50.0),
    );
    let first = store.route(&hot)[0];
    assert_ne!(
        first, 0,
        "hot queries should now route to a recommended replica"
    );
    // And results stay correct.
    let result = store.query(&hot).expect("query after migration");
    assert_eq!(result.records.len(), data.count_in_range(&hot));
}
