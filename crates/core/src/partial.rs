//! Partial replication — the paper's future-work extension (§VII):
//! *"The use of partial replication, where only frequently accessed
//! data ranges are replicated, is one of our future work."*
//!
//! The model: real query logs concentrate on hot regions (downtown,
//! business hours). A *hot workload* attaches a **centroid region** to
//! each grouped query — its instances are uniform over that region
//! instead of the whole universe. A *partial replica* stores only the
//! records inside a sub-universe region, at proportionally lower
//! storage cost, and can serve exactly those query groups whose
//! instances always stay inside its region.
//!
//! Everything downstream is unchanged: [`estimate_matrix`] produces an
//! ordinary [`CostMatrix`] over the extended candidate list, so the
//! greedy and MIP selectors and dominance pruning apply as-is. Query
//! groups a partial candidate cannot serve get a large finite penalty
//! cost (not `∞`, which would break the MIP); any real instance keeps
//! at least one full candidate, so the optimum never pays the penalty.

use blot_geo::{intersection_probability_within, Cuboid, QuerySize};
use blot_index::PartitioningScheme;
use blot_model::RecordBatch;

use crate::cost::CostModel;
use crate::replica::ReplicaConfig;
use crate::select::CostMatrix;
use crate::units::PartitionCount;

/// A grouped query restricted to a hot region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotGroupedQuery {
    /// The query extent ⟨W, H, T⟩.
    pub size: QuerySize,
    /// Region the query *centroids* are uniform over.
    pub centroid_region: Cuboid,
    /// Weight (frequency) of the group.
    pub weight: f64,
}

impl HotGroupedQuery {
    /// The tight region that contains every instance of this group: the
    /// centroid region dilated by half the query extent per axis.
    #[must_use]
    pub fn footprint(&self, universe: &Cuboid) -> Cuboid {
        let mut min = self.centroid_region.min();
        let mut max = self.centroid_region.max();
        for (axis, half) in [self.size.w / 2.0, self.size.h / 2.0, self.size.t / 2.0]
            .into_iter()
            .enumerate()
        {
            min = min.with_axis(axis, (min.axis(axis) - half).max(universe.min().axis(axis)));
            max = max.with_axis(axis, (max.axis(axis) + half).min(universe.max().axis(axis)));
        }
        Cuboid::new(min, max)
    }
}

/// A candidate replica that may cover only part of the universe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialCandidate {
    /// Partitioning and encoding.
    pub config: ReplicaConfig,
    /// Region the replica stores, or `None` for a full replica.
    pub region: Option<Cuboid>,
}

impl PartialCandidate {
    /// A conventional full replica.
    #[must_use]
    pub fn full(config: ReplicaConfig) -> Self {
        Self {
            config,
            region: None,
        }
    }

    /// A partial replica over `region`.
    #[must_use]
    pub fn partial(config: ReplicaConfig, region: Cuboid) -> Self {
        Self {
            config,
            region: Some(region),
        }
    }

    /// Whether every instance of `q` stays inside this candidate's
    /// stored region.
    #[must_use]
    pub fn serves(&self, q: &HotGroupedQuery, universe: &Cuboid) -> bool {
        match &self.region {
            None => true,
            Some(region) => region.contains_cuboid(&q.footprint(universe)),
        }
    }
}

/// Builds the selection cost matrix over hot queries and (possibly
/// partial) candidates.
///
/// For a partial candidate over region `R`:
/// * storage is scaled by the sample fraction of records inside `R`;
/// * its partitioning scheme is built over `R` from the sample records
///   inside `R` (equal-count splits of the hot data);
/// * query groups it cannot serve are priced at `penalty_factor ×` the
///   most expensive servable cost in the matrix.
///
/// # Panics
///
/// Panics if `candidates` or `workload` is empty.
#[must_use]
pub fn estimate_matrix(
    model: &CostModel,
    workload: &[HotGroupedQuery],
    candidates: &[PartialCandidate],
    sample: &RecordBatch,
    universe: Cuboid,
    dataset_records: f64,
) -> CostMatrix {
    assert!(!candidates.is_empty(), "need at least one candidate");
    assert!(!workload.is_empty(), "need at least one query group");
    #[allow(clippy::cast_precision_loss)]
    let sample_len = sample.len() as f64;

    // Build each candidate's scheme over its own region + record share.
    struct Built {
        scheme: PartitioningScheme,
        records: f64,
        universe: Cuboid,
    }
    let built: Vec<Built> = candidates
        .iter()
        .map(|c| match &c.region {
            None => Built {
                scheme: PartitioningScheme::build(sample, universe, c.config.spec),
                records: dataset_records,
                universe,
            },
            Some(region) => {
                let local = sample.filter_range(region);
                #[allow(clippy::cast_precision_loss)]
                let frac = if sample.is_empty() {
                    0.0
                } else {
                    local.len() as f64 / sample_len
                };
                Built {
                    scheme: PartitioningScheme::build(&local, *region, c.config.spec),
                    records: dataset_records * frac,
                    universe: *region,
                }
            }
        })
        .collect();

    // Serviceable costs first; penalties placed after we know the max.
    let mut costs: Vec<Vec<Option<f64>>> = Vec::with_capacity(workload.len());
    for q in workload {
        let row: Vec<Option<f64>> = candidates
            .iter()
            .zip(&built)
            .map(|(c, b)| {
                if !c.serves(q, &universe) {
                    return None;
                }
                let np: f64 = b
                    .scheme
                    .partitions()
                    .iter()
                    .map(|p| {
                        intersection_probability_within(
                            &b.universe,
                            &q.centroid_region,
                            q.size,
                            &p.range,
                        )
                    })
                    .sum();
                Some(
                    model
                        .cost_with_np(
                            PartitionCount::new(np),
                            b.scheme.len(),
                            c.config.encoding,
                            b.records,
                        )
                        .get(),
                )
            })
            .collect();
        costs.push(row);
    }
    let max_cost = costs
        .iter()
        .flatten()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max)
        .max(1.0);
    let penalty = max_cost * 1e3;
    CostMatrix {
        costs: costs
            .into_iter()
            .map(|row| row.into_iter().map(|c| c.unwrap_or(penalty)).collect())
            .collect(),
        weights: workload.iter().map(|q| q.weight).collect(),
        storage: candidates
            .iter()
            .zip(&built)
            .map(|(c, b)| model.replica_storage_bytes(c.config.encoding, b.records))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{select_greedy, select_mip};
    use blot_codec::{Compression, EncodingScheme, Layout};
    use blot_index::SchemeSpec;
    use blot_mip::MipSolver;
    use blot_tracegen::FleetConfig;

    fn setup() -> (RecordBatch, Cuboid, CostModel, Cuboid) {
        let mut config = FleetConfig::small();
        config.num_taxis = 80;
        config.records_per_taxi = 150;
        let sample = config.generate();
        let universe = config.universe();
        // A synthetic scan-dominated model keeps this test deterministic
        // (measured debug-build decode times would drown the signal in
        // the cloud profile's huge ExtraTime).
        let params = blot_codec::SchemeTable::build(|_| crate::cost::CostParams {
            ms_per_record: crate::units::Millis::new(1e-3),
            extra_ms: crate::units::Millis::new(50.0),
        });
        let bpr = blot_codec::SchemeTable::build(|_| 38.0);
        let model = CostModel::from_params("synthetic", params, bpr);

        // The hot region: the quarter of the universe around downtown.
        let hot = config.hotspots()[0];
        let c = universe.centroid();
        let region = Cuboid::new(
            blot_geo::Point::new(
                (hot.0 - 0.5).max(universe.min().x),
                (hot.1 - 0.5).max(universe.min().y),
                universe.min().t,
            ),
            blot_geo::Point::new(
                (hot.0 + 0.5).min(universe.max().x),
                (hot.1 + 0.5).min(universe.max().y),
                c.t,
            ),
        );
        (sample, universe, model, region)
    }

    fn hot_workload(universe: &Cuboid, region: &Cuboid) -> Vec<HotGroupedQuery> {
        vec![
            // Frequent small queries inside the hot region.
            HotGroupedQuery {
                size: QuerySize::new(0.05, 0.05, universe.extent(2) / 64.0),
                centroid_region: *region,
                weight: 100.0,
            },
            HotGroupedQuery {
                size: QuerySize::new(0.2, 0.2, universe.extent(2) / 16.0),
                centroid_region: *region,
                weight: 20.0,
            },
            // Rare universe-wide sweeps.
            HotGroupedQuery {
                size: QuerySize::new(
                    universe.extent(0) / 2.0,
                    universe.extent(1) / 2.0,
                    universe.extent(2) / 2.0,
                ),
                centroid_region: *universe,
                weight: 1.0,
            },
        ]
    }

    #[test]
    fn footprint_dilates_and_clamps() {
        let u = Cuboid::new(
            blot_geo::Point::new(0.0, 0.0, 0.0),
            blot_geo::Point::new(10.0, 10.0, 10.0),
        );
        let q = HotGroupedQuery {
            size: QuerySize::new(2.0, 2.0, 2.0),
            centroid_region: Cuboid::new(
                blot_geo::Point::new(0.5, 4.0, 4.0),
                blot_geo::Point::new(2.0, 6.0, 6.0),
            ),
            weight: 1.0,
        };
        let f = q.footprint(&u);
        assert_eq!(f.min(), blot_geo::Point::new(0.0, 3.0, 3.0)); // clamped west
        assert_eq!(f.max(), blot_geo::Point::new(3.0, 7.0, 7.0));
    }

    #[test]
    fn serves_respects_region_containment() {
        let (_, universe, _, region) = setup();
        let cfg = ReplicaConfig::new(
            SchemeSpec::new(16, 4),
            EncodingScheme::new(Layout::Row, Compression::Lzf),
        );
        let partial = PartialCandidate::partial(cfg, region);
        let full = PartialCandidate::full(cfg);
        let w = hot_workload(&universe, &region);
        // Small hot queries sit near the region border, so their
        // footprint leaks out of the region: only a query group whose
        // dilated footprint stays inside is servable. Check the
        // universe-wide group is definitely not servable and the full
        // replica serves everything.
        assert!(w.iter().all(|q| full.serves(q, &universe)));
        assert!(!partial.serves(&w[2], &universe));
        // Shrinking the centroid region to the region's core makes the
        // small group servable.
        let core = Cuboid::new(
            blot_geo::Point::new(
                region.min().x + 0.1,
                region.min().y + 0.1,
                region.min().t + universe.extent(2) / 32.0,
            ),
            blot_geo::Point::new(
                region.max().x - 0.1,
                region.max().y - 0.1,
                region.max().t - universe.extent(2) / 32.0,
            ),
        );
        let mut q = w[0];
        q.centroid_region = core;
        assert!(partial.serves(&q, &universe));
    }

    #[test]
    fn partial_replicas_beat_full_only_under_tight_budgets() {
        let (sample, universe, model, region) = setup();
        let mut w = hot_workload(&universe, &region);
        // Keep centroids well inside the region so partials can serve.
        for q in &mut w[..2] {
            let shrink = 0.15;
            q.centroid_region = Cuboid::new(
                blot_geo::Point::new(
                    region.min().x + shrink,
                    region.min().y + shrink,
                    region.min().t + universe.extent(2) / 16.0,
                ),
                blot_geo::Point::new(
                    region.max().x - shrink,
                    region.max().y - shrink,
                    region.max().t - universe.extent(2) / 16.0,
                ),
            );
        }
        let configs = [
            ReplicaConfig::new(
                SchemeSpec::new(4, 2),
                EncodingScheme::new(Layout::Row, Compression::Plain),
            ),
            ReplicaConfig::new(
                SchemeSpec::new(64, 8),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ),
            ReplicaConfig::new(
                SchemeSpec::new(16, 4),
                EncodingScheme::new(Layout::Column, Compression::Deflate),
            ),
        ];
        let full_only: Vec<PartialCandidate> =
            configs.iter().map(|&c| PartialCandidate::full(c)).collect();
        let mut extended = full_only.clone();
        for &c in &configs {
            extended.push(PartialCandidate::partial(c, region));
        }
        let m_full = estimate_matrix(&model, &w, &full_only, &sample, universe, 65e6);
        let m_ext = estimate_matrix(&model, &w, &extended, &sample, universe, 65e6);

        // Partial replicas store strictly less.
        for j in 3..6 {
            assert!(m_ext.storage[j] < m_ext.storage[j - 3]);
        }
        // Budget: the cheapest full replica plus the cheapest partial,
        // with a little slack — enough for full + partial, too tight for
        // two full replicas (guarded below so data drift in the sample
        // generator cannot silently leave the regime this test is about).
        let min_full = m_full.cheapest_storage();
        let min_partial = m_ext.storage[3..].iter().copied().fold(
            crate::units::Bytes::new(f64::INFINITY),
            crate::units::Bytes::min,
        );
        let budget = (min_full + min_partial) * 1.02;
        assert!(
            budget < 2.0 * min_full,
            "test regime broken: two full replicas fit the budget"
        );
        let solver = MipSolver::default();
        let best_full = select_mip(&m_full, budget, &solver).expect("full-only");
        let best_ext = select_mip(&m_ext, budget, &solver).expect("extended");
        assert!(
            best_ext.workload_cost < best_full.workload_cost,
            "partial replicas must help under tight budgets: {} vs {}",
            best_ext.workload_cost,
            best_full.workload_cost
        );
        // And the greedy heuristic also benefits.
        let g_full = select_greedy(&m_full, budget);
        let g_ext = select_greedy(&m_ext, budget);
        assert!(g_ext.workload_cost <= g_full.workload_cost * 1.001);
    }
}
