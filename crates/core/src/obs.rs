//! Store-level observability: instrument handles and cost-model drift
//! accounting.
//!
//! Every [`BlotStore`](crate::store::BlotStore) owns a [`StoreMetrics`]
//! bundle: pre-registered handles into a [`MetricsRegistry`] that the
//! hot paths record into without ever touching the registry again. The
//! headline instrument is *drift* — each `query_on` records the ratio
//! of the cost model's predicted `Cost(q, r)` (Eq. 6/7) to the measured
//! simulated time into a per-(replica, scheme) histogram, and
//! [`DriftReport`] flags the encoding schemes whose median ratio has
//! left a configurable band. A flagged scheme means the calibrated
//! `ScanRate`/`ExtraTime` parameters (§V-B) no longer describe the
//! workload, so routing decisions and the replica-selection matrix
//! built from them are suspect and recalibration is due.

use blot_codec::{EncodingScheme, SchemeTable};
use blot_obs::{Counter, Histogram, HistogramSnapshot, MetricsRegistry};

/// Pre-registered instrument handles for one store.
///
/// Created by the store's constructor; cloned handles of the same
/// registry can be obtained via [`registry`](Self::registry) (e.g. for
/// export). With `blot-obs` compiled out (`off` feature) every handle
/// is a zero-sized no-op and counters read back as zero.
#[derive(Debug)]
pub struct StoreMetrics {
    registry: MetricsRegistry,
    /// Queries accepted by [`query`](crate::store::BlotStore::query).
    pub queries: Counter,
    /// Replicas that failed before one answered, summed over queries.
    pub query_failovers: Counter,
    /// Host wall-clock per `query` call, milliseconds.
    pub query_wall_ms: Histogram,
    /// Simulated (paper) milliseconds per executed query.
    pub query_sim_ms: Histogram,
    /// Records returned to callers.
    pub records_returned: Counter,
    /// Storage units scanned by queries.
    pub units_scanned: Counter,
    /// Involved units whose zone-map footer proved them disjoint from
    /// the query range — payload never fetched or decoded.
    pub units_skipped: Counter,
    /// Payload bytes those skipped units never transferred.
    pub bytes_skipped: Counter,
    /// Records decoded from storage units (queries, ingest, scrub).
    pub records_decoded: Counter,
    /// Bytes read from the backend (queries, ingest, scrub).
    pub bytes_read: Counter,
    /// Host wall-clock per replica build, milliseconds.
    pub build_wall_ms: Histogram,
    /// Storage units written by replica builds.
    pub build_units: Counter,
    /// Host wall-clock per ingest batch, milliseconds.
    pub ingest_wall_ms: Histogram,
    /// Records ingested (counted once, not per replica).
    pub ingest_records: Counter,
    /// Storage units rewritten by ingest across all replicas.
    pub ingest_units_rewritten: Counter,
    /// Host wall-clock per scrub pass, milliseconds.
    pub scrub_wall_ms: Histogram,
    /// Storage units examined by scrub passes.
    pub scrub_units_scanned: Counter,
    /// Units that read back and decoded cleanly.
    pub scrub_units_verified: Counter,
    /// Units found missing or corrupt.
    pub scrub_units_damaged: Counter,
    /// Units whose zone-map footer disagrees with (or is missing for)
    /// the records it covers — counted within `scrub_units_damaged`.
    pub scrub_footer_mismatches: Counter,
    /// Host wall-clock per unit repair, milliseconds.
    pub repair_wall_ms: Histogram,
    /// Damaged units successfully rebuilt.
    pub repair_units_repaired: Counter,
    /// Damaged units with no surviving source.
    pub repair_units_failed: Counter,
    /// Unit decodes per encoding scheme.
    decodes: SchemeTable<Counter>,
}

impl StoreMetrics {
    /// Creates a bundle backed by a fresh registry.
    #[must_use]
    pub fn new() -> Self {
        Self::register(&MetricsRegistry::new())
    }

    /// Creates a bundle backed by an existing registry (to share one
    /// exporter across stores).
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            registry: registry.clone(),
            queries: registry.counter("store.queries"),
            query_failovers: registry.counter("store.query_failovers"),
            query_wall_ms: registry.histogram("store.query_wall_ms"),
            query_sim_ms: registry.histogram("store.query_sim_ms"),
            records_returned: registry.counter("store.records_returned"),
            units_scanned: registry.counter("store.units_scanned"),
            units_skipped: registry.counter("scan.units_skipped"),
            bytes_skipped: registry.counter("scan.bytes_skipped"),
            records_decoded: registry.counter("store.records_decoded"),
            bytes_read: registry.counter("store.bytes_read"),
            build_wall_ms: registry.histogram("store.build_wall_ms"),
            build_units: registry.counter("store.build_units"),
            ingest_wall_ms: registry.histogram("store.ingest_wall_ms"),
            ingest_records: registry.counter("store.ingest_records"),
            ingest_units_rewritten: registry.counter("store.ingest_units_rewritten"),
            scrub_wall_ms: registry.histogram("store.scrub_wall_ms"),
            scrub_units_scanned: registry.counter("store.scrub_units_scanned"),
            scrub_units_verified: registry.counter("store.scrub_units_verified"),
            scrub_units_damaged: registry.counter("store.scrub_units_damaged"),
            scrub_footer_mismatches: registry.counter("store.scrub_footer_mismatches"),
            repair_wall_ms: registry.histogram("store.repair_wall_ms"),
            repair_units_repaired: registry.counter("store.repair_units_repaired"),
            repair_units_failed: registry.counter("store.repair_units_failed"),
            decodes: SchemeTable::build(|scheme| {
                registry.counter(&format!(
                    "codec.decodes{{scheme={}}}",
                    scheme.metric_label()
                ))
            }),
        }
    }

    /// The registry behind the handles (for snapshots / export).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Handle counting unit decodes under `scheme`.
    #[must_use]
    pub fn decode_counter(&self, scheme: EncodingScheme) -> Counter {
        self.decodes.get(scheme).clone()
    }

    /// Registers the per-replica instruments for replica `id` encoded
    /// with `scheme`.
    #[must_use]
    pub fn replica(&self, id: u32, scheme: EncodingScheme) -> ReplicaMetrics {
        let label = scheme.metric_label();
        ReplicaMetrics {
            routed_first: self.registry.counter(&format!("replica.{id}.routed_first")),
            queries: self.registry.counter(&format!("replica.{id}.queries")),
            sim_ms: self.registry.histogram(&format!("replica.{id}.sim_ms")),
            drift: self
                .registry
                .histogram(&format!("drift.ratio{{replica={id},scheme={label}}}")),
        }
    }
}

impl Default for StoreMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-replica instrument handles, held by each built replica.
#[derive(Debug)]
pub struct ReplicaMetrics {
    /// Times this replica was the routing winner (estimated cheapest).
    pub routed_first: Counter,
    /// Queries actually executed on this replica.
    pub queries: Counter,
    /// Simulated milliseconds per query on this replica.
    pub sim_ms: Histogram,
    /// Predicted/actual cost ratio per query (see [`DriftReport`]).
    pub drift: Histogram,
}

/// Acceptable band for the median predicted/actual cost ratio.
///
/// A perfectly calibrated model sits at ratio 1.0. The default band
/// `[0.5, 2.0]` tolerates a 2× error either way — comfortably wider
/// than the calibration noise of §V-B, yet narrow enough to catch a
/// mis-set `ScanRate` (which shifts the ratio by the same factor it is
/// wrong by). Schemes with fewer than `min_samples` observations are
/// never flagged: a median over a handful of queries is noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBand {
    /// Lower bound (exclusive flag threshold) for the median ratio.
    pub lo: f64,
    /// Upper bound (exclusive flag threshold) for the median ratio.
    pub hi: f64,
    /// Minimum drift samples before a scheme can be flagged.
    pub min_samples: u64,
}

impl Default for DriftBand {
    fn default() -> Self {
        Self {
            lo: 0.5,
            hi: 2.0,
            min_samples: 8,
        }
    }
}

impl DriftBand {
    /// True when `median` (of a scheme with enough samples) is outside
    /// the band.
    #[must_use]
    pub fn flags(&self, median: f64, samples: u64) -> bool {
        samples >= self.min_samples && !(self.lo..=self.hi).contains(&median)
    }
}

/// Drift summary for one encoding scheme.
#[derive(Debug, Clone, Copy)]
pub struct SchemeDrift {
    /// The scheme.
    pub scheme: EncodingScheme,
    /// Drift samples observed (queries executed under this scheme).
    pub samples: u64,
    /// Median predicted/actual cost ratio (1.0 = calibrated; 0.0 when
    /// no samples).
    pub median_ratio: f64,
    /// Mean predicted/actual cost ratio.
    pub mean_ratio: f64,
    /// Whether the median left the band (with enough samples).
    pub flagged: bool,
}

/// Cost-model drift accounting across every encoding scheme a store
/// serves queries with.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// The band the report was evaluated against.
    pub band: DriftBand,
    /// One row per scheme in grid order (schemes with zero samples
    /// included, never flagged).
    pub schemes: Vec<SchemeDrift>,
}

impl DriftReport {
    /// Builds a report from per-replica drift histograms, merging the
    /// samples of replicas that share an encoding scheme.
    pub fn from_samples(
        band: DriftBand,
        samples: impl IntoIterator<Item = (EncodingScheme, HistogramSnapshot)>,
    ) -> Self {
        let mut acc: Vec<(EncodingScheme, HistogramSnapshot)> = Vec::new();
        for (scheme, snap) in samples {
            if let Some((_, existing)) = acc.iter_mut().find(|&&mut (s, _)| s == scheme) {
                existing.merge(&snap);
            } else {
                acc.push((scheme, snap));
            }
        }
        let merged: SchemeTable<HistogramSnapshot> = SchemeTable::build(|s| {
            acc.iter()
                .find(|&&(scheme, _)| scheme == s)
                .map(|(_, snap)| snap.clone())
                .unwrap_or_default()
        });
        let schemes = merged
            .iter()
            .map(|(scheme, snap)| {
                let samples = snap.count();
                let median_ratio = if samples == 0 {
                    0.0
                } else {
                    snap.quantile(0.5)
                };
                SchemeDrift {
                    scheme,
                    samples,
                    median_ratio,
                    mean_ratio: snap.mean(),
                    flagged: band.flags(median_ratio, samples),
                }
            })
            .collect();
        Self { band, schemes }
    }

    /// The schemes whose median ratio left the band.
    pub fn flagged(&self) -> impl Iterator<Item = &SchemeDrift> {
        self.schemes.iter().filter(|s| s.flagged)
    }

    /// True when no scheme is flagged — the cost model still describes
    /// what the store measures.
    #[must_use]
    pub fn is_calibrated(&self) -> bool {
        self.schemes.iter().all(|s| !s.flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blot_codec::{Compression, Layout};

    fn ratios(values: &[f64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn calibrated_schemes_are_not_flagged() {
        let scheme = EncodingScheme::new(Layout::Row, Compression::Lzf);
        let snap = ratios(&[1.0; 20]);
        let report = DriftReport::from_samples(DriftBand::default(), [(scheme, snap)]);
        if blot_obs::enabled() {
            let row = report
                .schemes
                .iter()
                .find(|s| s.scheme == scheme)
                .copied()
                .unwrap_or_else(|| panic!("scheme row missing"));
            assert_eq!(row.samples, 20);
            assert!((row.median_ratio - 1.0).abs() < 0.2, "{}", row.median_ratio);
        }
        assert!(report.is_calibrated());
    }

    #[test]
    fn drifted_scheme_is_flagged_and_merged_across_replicas() {
        let drifted = EncodingScheme::new(Layout::Column, Compression::Deflate);
        let fine = EncodingScheme::new(Layout::Row, Compression::Plain);
        // Two replicas share the drifted scheme: 5 + 5 samples only
        // reach min_samples=8 when merged.
        let report = DriftReport::from_samples(
            DriftBand::default(),
            [
                (drifted, ratios(&[8.0; 5])),
                (drifted, ratios(&[8.0; 5])),
                (fine, ratios(&[1.1; 10])),
            ],
        );
        if blot_obs::enabled() {
            let flagged: Vec<EncodingScheme> = report.flagged().map(|s| s.scheme).collect();
            assert_eq!(flagged, vec![drifted]);
            assert!(!report.is_calibrated());
        }
    }

    #[test]
    fn too_few_samples_never_flag() {
        let band = DriftBand::default();
        assert!(!band.flags(100.0, band.min_samples - 1));
        assert!(band.flags(100.0, band.min_samples));
        assert!(!band.flags(1.0, 1_000));
    }
}
