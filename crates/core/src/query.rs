//! Grouped queries and weighted workloads (Definition 6, §III-C1).

use blot_geo::{Cuboid, QuerySize};

/// A grouped query `Q_G = ⟨W, H, T⟩`: all range queries of one extent,
/// with centroid position uniform over the feasible range (§III-C1).
///
/// Grouped queries are the unit of the input workload — "queries with
/// the same size of range often occur many times in real situations".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupedQuery {
    /// The common extent of the group.
    pub size: QuerySize,
}

impl GroupedQuery {
    /// Creates a grouped query of the given extent.
    #[must_use]
    pub const fn new(size: QuerySize) -> Self {
        Self { size }
    }

    /// Materialises the concrete query of this size centred at the given
    /// fractional position of the universe's feasible centroid range
    /// (0 = west/south/earliest corner, 1 = opposite corner).
    #[must_use]
    pub fn at(&self, universe: &Cuboid, fx: f64, fy: f64, ft: f64) -> Cuboid {
        let cr = universe.centroid_range(self.size);
        let c = blot_geo::Point::new(
            cr.min().x + (cr.max().x - cr.min().x) * fx.clamp(0.0, 1.0),
            cr.min().y + (cr.max().y - cr.min().y) * fy.clamp(0.0, 1.0),
            cr.min().t + (cr.max().t - cr.min().t) * ft.clamp(0.0, 1.0),
        );
        Cuboid::from_centroid(c, self.size)
    }
}

/// A weighted set of grouped queries
/// `W = {(q₁, w₁), …, (q_n, w_n)}` (Definition 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    entries: Vec<(GroupedQuery, f64)>,
}

impl Workload {
    /// Creates a workload from `(query, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or not finite.
    #[must_use]
    pub fn new(entries: Vec<(GroupedQuery, f64)>) -> Self {
        assert!(
            entries.iter().all(|(_, w)| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        Self { entries }
    }

    /// The `(query, weight)` pairs.
    #[must_use]
    pub fn entries(&self) -> &[(GroupedQuery, f64)] {
        &self.entries
    }

    /// Number of grouped queries `n = |W|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the workload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the workload with weights scaled to sum to 1 (the
    /// normalisation the paper notes is used "in some situations").
    #[must_use]
    pub fn normalized(&self) -> Self {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return self.clone();
        }
        Self {
            entries: self.entries.iter().map(|&(q, w)| (q, w / total)).collect(),
        }
    }

    /// The paper's synthetic evaluation workload: "8 grouped queries
    /// with wildly varied range size" (§V-C), spanning tiny single-cell
    /// probes (q1) up to the whole universe (q8). Sizes are geometric in
    /// each dimension so consecutive queries prefer different
    /// partitioning granularities.
    ///
    /// Weights fall geometrically with size — a query twice as large is
    /// issued half as often — reflecting the frequency interpretation of
    /// Definition 6 and real analytical workloads (cell statistics are
    /// run constantly, universe sweeps rarely). This also makes each
    /// query's *weighted* cost comparable in magnitude, as in the
    /// paper's Figure 6 bars.
    #[must_use]
    pub fn paper_synthetic(universe: &Cuboid) -> Self {
        let w = universe.extent(0);
        let h = universe.extent(1);
        let t = universe.extent(2);
        let entries = (0..8)
            .map(|i| {
                // Fractions 1/128 … 1 by powers of 2.
                let f = 2f64.powi(i - 7);
                let q = GroupedQuery::new(QuerySize::new(w * f, h * f, t * f));
                (q, 2f64.powi(7 - i))
            })
            .collect();
        Self::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blot_geo::Point;

    fn universe() -> Cuboid {
        Cuboid::new(
            Point::new(120.0, 30.0, 0.0),
            Point::new(122.0, 32.0, 1000.0),
        )
    }

    #[test]
    fn paper_workload_has_eight_varied_queries() {
        let w = Workload::paper_synthetic(&universe());
        assert_eq!(w.len(), 8);
        let sizes: Vec<f64> = w.entries().iter().map(|(q, _)| q.size.volume()).collect();
        for pair in sizes.windows(2) {
            assert!(pair[1] > pair[0], "sizes must grow");
        }
        // Largest query covers the whole universe.
        let last = w.entries()[7].0.size;
        assert_eq!(last.w, 2.0);
        assert_eq!(last.t, 1000.0);
        // Smallest is 1/128 per axis.
        assert!((w.entries()[0].0.size.w - 2.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_sums_to_one() {
        let w = Workload::paper_synthetic(&universe()).normalized();
        let total: f64 = w.entries().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn materialised_query_stays_in_universe() {
        let u = universe();
        let q = GroupedQuery::new(QuerySize::new(0.5, 0.5, 100.0));
        for (fx, fy, ft) in [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (0.5, 0.25, 0.75)] {
            let c = q.at(&u, fx, fy, ft);
            assert!(u.contains_cuboid(&c), "query at ({fx},{fy},{ft}) escapes");
            assert!((c.extent(0) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let q = GroupedQuery::new(QuerySize::new(1.0, 1.0, 1.0));
        let _ = Workload::new(vec![(q, -1.0)]);
    }
}
