//! Replica configurations: partitioning spec × encoding scheme
//! (Definition 4).

use blot_codec::EncodingScheme;
use blot_index::SchemeSpec;
use std::fmt;

/// A candidate replica `r = ⟨D, P, E⟩` before it is built: the
/// partitioning shape `P` and the encoding scheme `E` (the dataset `D`
/// is implicit — all replicas share it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaConfig {
    /// Partitioning scheme shape.
    pub spec: SchemeSpec,
    /// Encoding scheme.
    pub encoding: EncodingScheme,
}

impl ReplicaConfig {
    /// Creates a configuration.
    #[must_use]
    pub const fn new(spec: SchemeSpec, encoding: EncodingScheme) -> Self {
        Self { spec, encoding }
    }

    /// The full candidate grid `R_C`: every partitioning spec crossed
    /// with every encoding scheme (`m = m_P · m_E`, §III-A).
    ///
    /// With the paper's 25 specs and its 7 encoding schemes this yields
    /// 175 candidates. The paper itself states "25 × 7 = 150", an
    /// arithmetic slip (25 × 7 = 175); we keep the full 175-candidate
    /// grid and note the discrepancy in EXPERIMENTS.md.
    #[must_use]
    pub fn grid(specs: &[SchemeSpec], encodings: &[EncodingScheme]) -> Vec<Self> {
        let mut v = Vec::with_capacity(specs.len() * encodings.len());
        for &spec in specs {
            for &encoding in encodings {
                v.push(Self::new(spec, encoding));
            }
        }
        v
    }
}

impl fmt::Display for ReplicaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.spec, self.encoding)
    }
}

impl std::str::FromStr for ReplicaConfig {
    type Err = String;

    /// Parses the [`Display`](fmt::Display) form, e.g. `S16xT8/ROW-LZF`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (spec, enc) = s
            .split_once('/')
            .ok_or_else(|| format!("expected <spec>/<encoding>, got `{s}`"))?;
        Ok(Self::new(spec.parse()?, enc.parse()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_size() {
        let grid = ReplicaConfig::grid(&SchemeSpec::paper_grid(), &EncodingScheme::all());
        // 25 partitioning schemes × 7 encoding schemes.
        assert_eq!(grid.len(), 175);
        // All configurations are distinct.
        let mut set = std::collections::HashSet::new();
        for c in &grid {
            assert!(set.insert(*c), "duplicate candidate {c}");
        }
    }

    #[test]
    fn display_is_informative() {
        let grid = ReplicaConfig::grid(&SchemeSpec::small_grid(), &EncodingScheme::all());
        let s = grid[0].to_string();
        assert!(s.contains("S4xT2"), "{s}");
        assert!(s.contains("ROW-PLAIN"), "{s}");
    }
}
