//! An executable BLOT store with diverse replicas.
//!
//! Ties the whole paper together (Figure 1 / Figure 2): physical
//! replicas are built by partitioning + encoding the logical dataset;
//! each incoming range query is routed to the replica with the lowest
//! *estimated* cost; damaged storage units are repaired from any other
//! replica because "diverse replicas can recover each other when
//! failures occur \[since\] they share the same logical view of the data"
//! (§I).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blot_codec::EncodingScheme;
use blot_geo::Cuboid;
use blot_index::PartitioningScheme;
use blot_model::RecordBatch;
use blot_obs::{
    names, FlightRecorder, MetricsRegistry, Snapshot, Span, SpanContext, SpanHandle, TraceId,
    TraceSpan,
};
use blot_storage::scan::{run_scan, run_scan_traced, ScanReport, ScanTask};
use blot_storage::sync::Mutex;
use blot_storage::{Backend, EnvProfile, ScanExecutor, StorageError, UnitKey};

use crate::adapt::QueryLog;
use crate::cost::CostModel;
use crate::obs::{DriftBand, DriftReport, ReplicaMetrics, StoreMetrics};
use crate::replica::ReplicaConfig;
use crate::CoreError;

/// A physical replica that has been built into the backend.
#[derive(Debug)]
pub struct BuiltReplica {
    /// Replica id (index into the store's replica list).
    pub id: u32,
    /// The configuration it was built from.
    pub config: ReplicaConfig,
    /// Its partitioning scheme (with per-partition counts of the built
    /// data).
    pub scheme: PartitioningScheme,
    /// Records stored.
    pub records: u64,
    /// Encoded bytes across all its storage units.
    pub bytes: u64,
    /// Per-replica instrument handles (routing wins, query costs,
    /// cost-model drift).
    pub obs: ReplicaMetrics,
}

/// Result of one range query.
#[derive(Debug)]
pub struct QueryResult {
    /// Matching records (order unspecified).
    pub records: RecordBatch,
    /// Replica that served the query.
    pub replica: u32,
    /// Σ simulated task milliseconds (the paper's query cost).
    pub sim_ms: f64,
    /// Simulated wall-clock with fully parallel mappers.
    pub makespan_ms: f64,
    /// Involved partitions scanned.
    pub partitions_scanned: usize,
    /// Involved partitions skipped via their zone-map footer — counted
    /// within `partitions_scanned` (they were planned and charged a
    /// footer read, but their payload was never fetched).
    pub units_skipped: usize,
    /// Payload bytes the skipped partitions never transferred.
    pub bytes_skipped: u64,
    /// Replicas that failed before one answered (failover path).
    pub failed_over: Vec<u32>,
}

/// One query of a traced micro-batch: the range plus the trace context
/// it should execute under. `ctx: Some(..)` joins an existing trace
/// (e.g. one a remote client opened and shipped over the wire); `None`
/// starts a fresh trace for this query.
#[derive(Debug, Clone, Copy)]
pub struct TracedQuery {
    /// The query range.
    pub range: Cuboid,
    /// Adopted trace context, if the caller already has one.
    pub ctx: Option<SpanContext>,
}

impl TracedQuery {
    /// A traced query with no pre-existing context (fresh trace).
    #[must_use]
    pub fn new(range: Cuboid) -> Self {
        Self { range, ctx: None }
    }
}

/// One offender captured by the slow-query log: enough structured
/// context to attribute the time (and the cost-model's miss) to a
/// specific query, replica and encoding scheme.
#[derive(Debug, Clone, Copy)]
pub struct SlowQueryEntry {
    /// Trace id of the offending query (zero when it ran untraced).
    pub trace: TraceId,
    /// Replica that served it.
    pub replica: u32,
    /// That replica's encoding scheme.
    pub scheme: EncodingScheme,
    /// Involved storage units scanned (including footer-skipped ones).
    pub units_scanned: usize,
    /// Involved units skipped via their zone-map footer.
    pub units_skipped: usize,
    /// The cost model's predicted `Cost(q, r)` in simulated ms.
    pub predicted_ms: f64,
    /// Measured simulated ms (the paper's query cost).
    pub measured_ms: f64,
    /// The threshold that was in force when the entry was captured.
    pub threshold_ms: f64,
}

impl SlowQueryEntry {
    /// Predicted / measured cost ratio (0 when nothing was measured):
    /// a per-query drift sample, < 1 when the model was optimistic.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.measured_ms > 0.0 {
            self.predicted_ms / self.measured_ms
        } else {
            0.0
        }
    }

    /// The structured log line for this offender.
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "slow-query trace={} replica={} scheme={} sim_ms={:.3} threshold_ms={:.3} \
             units={} skipped={} predicted_ms={:.3} ratio={:.3}",
            self.trace,
            self.replica,
            self.scheme.metric_label(),
            self.measured_ms,
            self.threshold_ms,
            self.units_scanned,
            self.units_skipped,
            self.predicted_ms,
            self.ratio(),
        )
    }
}

/// Report of a [`BlotStore::repair_all`] pass.
#[derive(Debug, Default)]
pub struct RepairReport {
    /// Units found damaged and rebuilt.
    pub repaired: Vec<UnitKey>,
    /// Units found damaged with no surviving source.
    pub unrecoverable: Vec<UnitKey>,
    /// Units examined by the scrub phase of this pass. Sourced from the
    /// store metrics: 0 when `blot-obs` is compiled out.
    pub units_scanned: u64,
    /// Units that read back and decoded cleanly during the scrub phase.
    /// Sourced from the store metrics: 0 when `blot-obs` is compiled out.
    pub units_verified: u64,
    /// Damaged units successfully rebuilt (`repaired.len()`).
    pub units_repaired: u64,
    /// Damaged units with no surviving source (`unrecoverable.len()`).
    pub units_failed: u64,
    /// Units flagged because their zone-map footer disagreed with (or
    /// was missing for) the decoded payload — a subset of the damaged
    /// count. Repair rewrites them with a fresh footer. Sourced from the
    /// store metrics: 0 when `blot-obs` is compiled out.
    pub units_footer_mismatch: u64,
}

/// Result of one [`BlotStore::ingest`] call.
#[derive(Debug, Default)]
pub struct IngestReport {
    /// Records appended (to every replica).
    pub records: usize,
    /// Storage units rewritten across all replicas.
    pub units_rewritten: usize,
}

/// A BLOT store over a storage backend and a simulated environment.
///
/// All unit-granular work — query scans, replica builds, ingest
/// re-encodes, scrub verifies, repair extraction — runs on one shared
/// [`ScanExecutor`] pool created with the store (or passed in via
/// [`with_pool`](Self::with_pool) to share across stores).
#[derive(Debug)]
pub struct BlotStore<B> {
    backend: Arc<B>,
    env: EnvProfile,
    universe: Cuboid,
    model: CostModel,
    replicas: Vec<BuiltReplica>,
    /// Optional query log feeding adaptive reconfiguration (§II-E).
    log: Option<Mutex<QueryLog>>,
    /// Shared executor for all unit-granular work.
    pool: Arc<ScanExecutor>,
    /// Instrument handles (see [`crate::obs`]).
    metrics: StoreMetrics,
    /// Per-store flight recorder holding the most recent trace spans.
    recorder: FlightRecorder,
    /// Slow-query threshold in simulated ms as `f64` bits (0 = off).
    slow_ms_bits: AtomicU64,
    /// Bounded slow-query log, oldest evicted.
    slow_log: Mutex<VecDeque<SlowQueryEntry>>,
}

/// Spans the per-store flight recorder retains (oldest evicted).
const TRACE_CAPACITY: usize = 4096;

/// Entries the slow-query log retains (oldest evicted).
const SLOW_LOG_CAPACITY: usize = 256;

/// Converts a partition index to its storage id, surfacing overflow
/// instead of silently truncating.
fn partition_id(pid: usize) -> Result<u32, CoreError> {
    u32::try_from(pid).map_err(|_| CoreError::IdOverflow { what: "partition" })
}

/// Scans one storage unit, recording a `scan.unit` span (with
/// `unit.prune` / `unit.decode` children) under `trace`. A detached
/// handle takes the exact untraced path.
fn scan_one_unit(
    backend: &dyn Backend,
    env: &EnvProfile,
    task: &ScanTask,
    trace: &SpanHandle,
) -> Result<ScanReport, StorageError> {
    if trace.context().is_none() {
        return run_scan(backend, env, task);
    }
    let mut unit = trace.child(names::SCAN_UNIT);
    unit.note(names::PARTITION, u64::from(task.key.partition));
    let report = run_scan_traced(backend, env, task, &unit.handle());
    if let Ok(r) = &report {
        unit.note(names::BYTES, r.bytes);
        unit.set_sim_ms(r.sim_ms);
    }
    unit.finish();
    report
}

impl<B: Backend + 'static> BlotStore<B> {
    /// Creates an empty store with its own executor pool sized from
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn new(backend: B, env: EnvProfile, universe: Cuboid, model: CostModel) -> Self {
        Self::with_pool(
            backend,
            env,
            universe,
            model,
            Arc::new(ScanExecutor::with_default_parallelism()),
        )
    }

    /// Creates an empty store sharing an existing executor pool —
    /// multiple stores on one host should share one pool rather than
    /// oversubscribing the machine.
    #[must_use]
    pub fn with_pool(
        backend: B,
        env: EnvProfile,
        universe: Cuboid,
        model: CostModel,
        pool: Arc<ScanExecutor>,
    ) -> Self {
        let metrics = StoreMetrics::new();
        pool.attach_metrics(metrics.registry());
        Self {
            backend: Arc::new(backend),
            env,
            universe,
            model,
            replicas: Vec::new(),
            log: None,
            pool,
            metrics,
            recorder: FlightRecorder::new(TRACE_CAPACITY),
            slow_ms_bits: AtomicU64::new(0),
            slow_log: Mutex::new(VecDeque::new()),
        }
    }

    /// The store's flight recorder. Traced queries
    /// ([`query_traced`](Self::query_traced),
    /// [`query_batch_traced`](Self::query_batch_traced)) record their
    /// span trees here; untraced queries record nothing.
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Sets the slow-query threshold in simulated milliseconds. Any
    /// query whose measured simulated cost exceeds it is captured in
    /// the slow-query log; `ms <= 0` disables the log.
    pub fn set_slow_query_ms(&self, ms: f64) {
        let bits = if ms > 0.0 { ms.to_bits() } else { 0 };
        self.slow_ms_bits.store(bits, Ordering::Relaxed);
    }

    /// The current slow-query threshold, if the log is enabled.
    #[must_use]
    pub fn slow_query_ms(&self) -> Option<f64> {
        let bits = self.slow_ms_bits.load(Ordering::Relaxed);
        (bits != 0).then(|| f64::from_bits(bits))
    }

    /// Removes and returns every slow-query entry captured so far,
    /// oldest first.
    pub fn drain_slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.slow_log.lock().drain(..).collect()
    }

    /// The store's shared scan-executor pool.
    #[must_use]
    pub fn pool(&self) -> &Arc<ScanExecutor> {
        &self.pool
    }

    /// The store's instrument handles.
    #[must_use]
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// A point-in-time copy of every metric the store (and its executor
    /// pool) has recorded. Empty when `blot-obs` is compiled out.
    #[must_use]
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.registry().snapshot()
    }

    /// Evaluates cost-model drift against `band`: per-replica
    /// predicted/actual ratio histograms are merged by encoding scheme
    /// and each scheme's median is checked against the band.
    #[must_use]
    pub fn drift_report(&self, band: DriftBand) -> DriftReport {
        DriftReport::from_samples(
            band,
            self.replicas
                .iter()
                .map(|r| (r.config.encoding, r.obs.drift.snapshot())),
        )
    }

    /// The backend as a shareable trait object (what pool tasks capture).
    fn backend_dyn(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend) as Arc<dyn Backend>
    }

    /// Starts recording executed query ranges into a bounded
    /// [`QueryLog`] for later [`adapt::recommend`](crate::adapt::recommend)
    /// calls. Replaces any previous log.
    pub fn enable_query_log(&mut self, capacity: usize) {
        self.log = Some(Mutex::new(QueryLog::new(capacity)));
    }

    /// A snapshot of the query log (empty if logging was never enabled).
    #[must_use]
    pub fn query_log(&self) -> QueryLog {
        self.log
            .as_ref()
            .map_or_else(|| QueryLog::new(1), |l| l.lock().clone())
    }

    /// The store's backend (for failure injection in tests and for
    /// inspecting storage use).
    #[must_use]
    pub fn backend(&self) -> &B {
        self.backend.as_ref()
    }

    /// The built replicas.
    #[must_use]
    pub fn replicas(&self) -> &[BuiltReplica] {
        &self.replicas
    }

    /// The store's universe.
    #[must_use]
    pub fn universe(&self) -> Cuboid {
        self.universe
    }

    /// The calibrated cost model routing queries.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Total encoded bytes across all replicas.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.replicas.iter().map(|r| r.bytes).sum()
    }

    /// Builds a physical replica of `data` under `config`: partitions
    /// the records, encodes every partition on the executor pool, and
    /// writes the storage units in partition order. Returns the new
    /// replica's id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Storage`] if a unit cannot be written.
    pub fn build_replica(
        &mut self,
        data: &RecordBatch,
        config: ReplicaConfig,
    ) -> Result<u32, CoreError> {
        let id = u32::try_from(self.replicas.len())
            .map_err(|_| CoreError::IdOverflow { what: "replica" })?;
        let _span = Span::start(&self.metrics.build_wall_ms);
        let scheme = PartitioningScheme::build(data, self.universe, config.spec);
        let parts = scheme.assign_batch(data);
        let keys: Vec<UnitKey> = (0..parts.len())
            .map(|pid| {
                Ok(UnitKey {
                    replica: id,
                    partition: partition_id(pid)?,
                })
            })
            .collect::<Result<_, CoreError>>()?;
        // CPU-heavy encodes fan out on the pool; the (ordered) backend
        // puts stay on this thread.
        let encoding = config.encoding;
        let encodes: Vec<_> = parts
            .into_iter()
            .map(|part| move || Ok(encoding.encode(&part)))
            .collect();
        let units = self.pool.execute_all(encodes)?;
        let mut bytes = 0u64;
        for (key, unit) in keys.into_iter().zip(units) {
            bytes += unit.len() as u64;
            self.metrics.build_units.inc();
            self.backend.put(key, unit)?;
        }
        self.replicas.push(BuiltReplica {
            id,
            config,
            scheme,
            records: data.len() as u64,
            bytes,
            obs: self.metrics.replica(id, config.encoding),
        });
        Ok(id)
    }

    /// Re-attaches a replica whose storage units already exist in the
    /// backend (e.g. after reopening an on-disk store): no units are
    /// written, only the in-memory metadata is restored. The caller is
    /// responsible for `scheme` matching what the units were built with
    /// — [`scrub`](Self::scrub) will flag any mismatch as corruption.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IdOverflow`] if the store already holds
    /// `u32::MAX` replicas.
    pub fn restore_replica(
        &mut self,
        config: ReplicaConfig,
        scheme: PartitioningScheme,
        records: u64,
        bytes: u64,
    ) -> Result<u32, CoreError> {
        let id = u32::try_from(self.replicas.len())
            .map_err(|_| CoreError::IdOverflow { what: "replica" })?;
        self.replicas.push(BuiltReplica {
            id,
            config,
            scheme,
            records,
            bytes,
            obs: self.metrics.replica(id, config.encoding),
        });
        Ok(id)
    }

    /// Appends a batch of new records to **every** replica, preserving
    /// the diverse-replica invariant that all replicas encode the same
    /// logical dataset.
    ///
    /// Each touched storage unit is read, decoded, extended and
    /// re-encoded (BLOT units are optimised for sequential scans, not
    /// in-place appends). Partition boundaries stay fixed — continuous
    /// ingest skews partition sizes over time, which is exactly the
    /// drift the adaptive advisor (`adapt::recommend`) exists to detect
    /// and correct by re-selecting and rebuilding.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoReplicas`] — nothing to ingest into;
    /// * [`CoreError::OutOfUniverse`] — some records fall outside the
    ///   universe (nothing is written);
    /// * [`CoreError::Storage`] — a unit could not be read or written.
    pub fn ingest(&mut self, batch: &RecordBatch) -> Result<IngestReport, CoreError> {
        if self.replicas.is_empty() {
            return Err(CoreError::NoReplicas);
        }
        let rejected = (0..batch.len())
            .filter(|&i| !self.universe.contains_point(&batch.point(i)))
            .count();
        if rejected > 0 {
            return Err(CoreError::OutOfUniverse { rejected });
        }
        let _span = Span::start(&self.metrics.ingest_wall_ms);
        self.metrics.ingest_records.add(batch.len() as u64);
        let mut report = IngestReport {
            records: batch.len(),
            units_rewritten: 0,
        };
        for replica in &mut self.replicas {
            // Group incoming records by target partition.
            let mut by_partition: std::collections::HashMap<usize, RecordBatch> =
                std::collections::HashMap::new();
            for i in 0..batch.len() {
                let p = batch.point(i);
                let pid = replica.scheme.assign_point(p.x, p.y, p.t);
                by_partition.entry(pid).or_default().push(batch.get(i));
            }
            let mut touched: Vec<(usize, RecordBatch)> = by_partition.into_iter().collect();
            touched.sort_unstable_by_key(|&(pid, _)| pid);
            // Decode → extend → re-encode of each touched unit runs on
            // the pool; metadata updates and the ordered puts stay here.
            let encoding = replica.config.encoding;
            let rid = replica.id;
            let mut meta = Vec::with_capacity(touched.len());
            let mut rewrites = Vec::with_capacity(touched.len());
            for (pid, additions) in touched {
                let key = UnitKey {
                    replica: rid,
                    partition: partition_id(pid)?,
                };
                meta.push((pid, additions.len()));
                let backend: Arc<dyn Backend> = self.backend.clone();
                let decodes = self.metrics.decode_counter(encoding);
                let records_decoded = self.metrics.records_decoded.clone();
                let bytes_read = self.metrics.bytes_read.clone();
                rewrites.push(move || {
                    let bytes = backend.get(key)?;
                    let mut records = encoding
                        .decode(&bytes)
                        .map_err(|source| StorageError::Corrupt { key, source })?;
                    decodes.inc();
                    records_decoded.add(records.len() as u64);
                    bytes_read.add(bytes.len() as u64);
                    records.extend_from(&additions);
                    let unit = encoding.encode(&records);
                    Ok((key, bytes.len(), unit))
                });
            }
            let rewritten = self.pool.execute_all(rewrites)?;
            for ((pid, added), (key, old_len, unit)) in meta.into_iter().zip(rewritten) {
                replica.bytes = replica.bytes - old_len as u64 + unit.len() as u64;
                self.backend.put(key, unit)?;
                replica.scheme.note_insertions(pid, added)?;
                self.metrics.ingest_units_rewritten.inc();
                report.units_rewritten += 1;
            }
            replica.records += batch.len() as u64;
        }
        Ok(report)
    }

    /// Ranks built replicas by estimated cost for `range`, cheapest
    /// first — the query-routing decision of §II-E ("query cost
    /// estimation helps the system to determine which one of the
    /// existing replicas is supposed to have the least processing
    /// time").
    #[must_use]
    pub fn route(&self, range: &Cuboid) -> Vec<u32> {
        let mut ranked: Vec<(u32, f64)> = self
            .replicas
            .iter()
            .map(|r| {
                #[allow(clippy::cast_precision_loss)]
                let cost = self.model.concrete_query_cost(
                    range,
                    &r.scheme,
                    r.config.encoding,
                    r.records as f64,
                );
                (r.id, cost.get())
            })
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        if let Some(winner) = ranked
            .first()
            .and_then(|&(id, _)| self.replicas.get(id as usize))
        {
            winner.obs.routed_first.inc();
        }
        ranked.into_iter().map(|(id, _)| id).collect()
    }

    /// Executes a range query on the estimated-cheapest replica, failing
    /// over to the next-cheapest when storage units are missing or
    /// corrupt.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoReplicas`] — nothing built yet;
    /// * [`CoreError::Storage`] — every replica failed.
    pub fn query(&self, range: &Cuboid) -> Result<QueryResult, CoreError> {
        if let Some(log) = &self.log {
            log.lock().observe(range);
        }
        self.metrics.queries.inc();
        let _span = Span::start(&self.metrics.query_wall_ms);
        let order = self.route(range);
        self.query_failover(range, &order, Vec::new(), None)
    }

    /// [`query`](Self::query) under a trace: opens a root span in the
    /// store's flight recorder (joining `ctx` when supplied, otherwise
    /// starting a fresh trace) with child spans per stage — route,
    /// per-unit scan (prune + decode, parented across the pool), merge.
    ///
    /// # Errors
    ///
    /// Same contract as [`query`](Self::query).
    pub fn query_traced(
        &self,
        range: &Cuboid,
        ctx: Option<SpanContext>,
    ) -> Result<QueryResult, CoreError> {
        if let Some(log) = &self.log {
            log.lock().observe(range);
        }
        self.metrics.queries.inc();
        let _span = Span::start(&self.metrics.query_wall_ms);
        let mut root = match ctx {
            Some(ctx) => self.recorder.span_under(ctx, names::QUERY),
            None => self.recorder.span(names::QUERY),
        };
        let handle = root.handle();
        let route_span = root.child(names::ROUTE);
        let order = self.route(range);
        route_span.finish();
        let result = self.query_failover_traced(range, &order, Vec::new(), None, &handle);
        if let Ok(r) = &result {
            root.note(names::REPLICA, u64::from(r.replica));
            root.note(names::UNITS, r.partitions_scanned as u64);
            root.note(names::UNITS_SKIPPED, r.units_skipped as u64);
            root.note(names::FAILED_OVER, r.failed_over.len() as u64);
            root.set_sim_ms(r.sim_ms);
        }
        root.finish();
        result
    }

    /// Runs `query_on` down a ranked replica list, recording failovers,
    /// until one replica answers. `failed_over` and `last_err` seed the
    /// state for callers (the batch path) that already burned the
    /// cheapest replica.
    fn query_failover(
        &self,
        range: &Cuboid,
        order: &[u32],
        failed_over: Vec<u32>,
        last_err: Option<StorageError>,
    ) -> Result<QueryResult, CoreError> {
        self.query_failover_traced(range, order, failed_over, last_err, &SpanHandle::detached())
    }

    /// [`query_failover`](Self::query_failover) with span recording:
    /// each attempt's scan round is traced under `trace` (a detached
    /// handle records nothing).
    fn query_failover_traced(
        &self,
        range: &Cuboid,
        order: &[u32],
        mut failed_over: Vec<u32>,
        mut last_err: Option<StorageError>,
        trace: &SpanHandle,
    ) -> Result<QueryResult, CoreError> {
        for &id in order {
            match self.query_on_traced(id, range, trace) {
                Ok(mut result) => {
                    self.metrics
                        .records_returned
                        .add(result.records.len() as u64);
                    self.metrics.query_failovers.add(failed_over.len() as u64);
                    result.failed_over = failed_over;
                    return Ok(result);
                }
                Err(CoreError::Storage(e)) => {
                    failed_over.push(id);
                    last_err = Some(e);
                }
                Err(other) => return Err(other),
            }
        }
        // Every candidate either returned early or recorded a storage
        // error; an empty `last_err` can only mean no replica ran.
        match last_err {
            Some(e) => Err(CoreError::Storage(e)),
            None => Err(CoreError::NoReplicas),
        }
    }

    /// Plans a query on one replica: predicted `Cost(q, r)` (Eq. 6/7,
    /// captured before execution so the drift histogram compares the
    /// same quantity routing used) plus one scan task per involved
    /// partition.
    fn plan_on(
        &self,
        id: u32,
        range: &Cuboid,
    ) -> Result<(&BuiltReplica, f64, Vec<ScanTask>), CoreError> {
        let replica = self
            .replicas
            .get(id as usize)
            .ok_or(CoreError::NoSuchReplica { id })?;
        #[allow(clippy::cast_precision_loss)]
        let predicted = self.model.concrete_query_cost(
            range,
            &replica.scheme,
            replica.config.encoding,
            replica.records as f64,
        );
        let tasks: Vec<ScanTask> = replica
            .scheme
            .involved(range)
            .iter()
            .map(|&pid| {
                Ok(ScanTask {
                    key: UnitKey {
                        replica: id,
                        partition: partition_id(pid)?,
                    },
                    scheme: replica.config.encoding,
                    range: Some(*range),
                })
            })
            .collect::<Result<_, CoreError>>()?;
        Ok((replica, predicted.get(), tasks))
    }

    /// Turns the per-partition scan reports of one planned query into a
    /// [`QueryResult`], recording the store and replica instruments
    /// exactly as a standalone `query_on` would. With one mapper slot
    /// per task (the paper's fully-parallel configuration) the
    /// simulated makespan is the longest single task.
    fn assemble(
        &self,
        replica: &BuiltReplica,
        predicted: f64,
        reports: &[ScanReport],
        trace: TraceId,
    ) -> QueryResult {
        let mut records = RecordBatch::new();
        for r in reports {
            records.extend_from(&r.output);
        }
        let total_ms: f64 = reports.iter().map(|r| r.sim_ms).sum();
        let makespan_ms = reports.iter().map(|r| r.sim_ms).fold(0.0, f64::max);
        let units_skipped = reports.iter().filter(|r| r.pruned).count();
        let bytes_skipped: u64 = reports.iter().map(|r| r.bytes_skipped).sum();
        self.metrics.units_scanned.add(reports.len() as u64);
        self.metrics.units_skipped.add(units_skipped as u64);
        self.metrics.bytes_skipped.add(bytes_skipped);
        self.metrics
            .decode_counter(replica.config.encoding)
            .add(reports.len().saturating_sub(units_skipped) as u64);
        self.metrics
            .records_decoded
            .add(reports.iter().map(|r| r.records_scanned as u64).sum());
        self.metrics
            .bytes_read
            .add(reports.iter().map(|r| r.bytes).sum());
        self.metrics.query_sim_ms.record(total_ms);
        replica.obs.queries.inc();
        replica.obs.sim_ms.record(total_ms);
        if total_ms > 0.0 {
            replica.obs.drift.record(predicted / total_ms);
        }
        if let Some(threshold) = self.slow_query_ms() {
            if total_ms > threshold {
                let mut log = self.slow_log.lock();
                if log.len() >= SLOW_LOG_CAPACITY {
                    log.pop_front();
                }
                log.push_back(SlowQueryEntry {
                    trace,
                    replica: replica.id,
                    scheme: replica.config.encoding,
                    units_scanned: reports.len(),
                    units_skipped,
                    predicted_ms: predicted,
                    measured_ms: total_ms,
                    threshold_ms: threshold,
                });
            }
        }
        QueryResult {
            records,
            replica: replica.id,
            sim_ms: total_ms,
            makespan_ms,
            partitions_scanned: reports.len(),
            units_skipped,
            bytes_skipped,
            failed_over: Vec::new(),
        }
    }

    /// Executes a range query on a specific replica (§II-D: find the
    /// involved partitions, scan each in a map-only job, filter).
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoSuchReplica`] — unknown id;
    /// * [`CoreError::Storage`] — a unit could not be read or decoded.
    pub fn query_on(&self, id: u32, range: &Cuboid) -> Result<QueryResult, CoreError> {
        self.query_on_traced(id, range, &SpanHandle::detached())
    }

    /// [`query_on`](Self::query_on) with span recording under `trace`:
    /// a `scan` child span covers the pooled round, each unit's task
    /// opens a `scan.unit` span (with `unit.prune` / `unit.decode`
    /// children recorded from the worker thread), and a `merge` span
    /// covers result assembly. A detached handle records nothing and
    /// takes the exact untraced path.
    fn query_on_traced(
        &self,
        id: u32,
        range: &Cuboid,
        trace: &SpanHandle,
    ) -> Result<QueryResult, CoreError> {
        let (replica, predicted, tasks) = self.plan_on(id, range)?;
        let env = self.env;
        let backend = self.backend_dyn();
        let traced = trace.context().is_some();
        let scan_span = traced.then(|| trace.child(names::SCAN));
        let scan_handle = scan_span
            .as_ref()
            .map(TraceSpan::handle)
            .unwrap_or_default();
        let closures: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let backend = Arc::clone(&backend);
                let scan_handle = scan_handle.clone();
                move || scan_one_unit(backend.as_ref(), &env, &task, &scan_handle)
            })
            .collect();
        let reports = self.pool.execute_all_traced(closures, &scan_handle)?;
        if let Some(mut span) = scan_span {
            span.note(names::UNITS, reports.len() as u64);
            span.finish();
        }
        let trace_id = trace.context().map_or(TraceId(0), |c| c.trace);
        let merge_span = traced.then(|| trace.child(names::MERGE));
        let result = self.assemble(replica, predicted, &reports, trace_id);
        drop(merge_span);
        Ok(result)
    }

    /// Executes a micro-batch of range queries in **one** pooled
    /// `execute_all` round: every query is routed to its cheapest
    /// replica, the scan tasks of all queries are flattened into a
    /// single batch (so a burst of small queries pays the pool's
    /// submission overhead once), and per-query results are sliced back
    /// out in order. A query whose cheapest replica fails falls over to
    /// the remaining replicas serially, exactly like [`query`]; one
    /// query's failure never aborts its neighbours.
    ///
    /// The returned vector holds one entry per input range, in input
    /// order.
    ///
    /// # Errors
    ///
    /// The call itself is infallible; each element is `Err` under the
    /// same conditions as [`query`](Self::query)
    /// ([`CoreError::NoReplicas`], [`CoreError::Storage`], …).
    pub fn query_batch(&self, ranges: &[Cuboid]) -> Vec<Result<QueryResult, CoreError>> {
        let queries: Vec<TracedQuery> = ranges.iter().copied().map(TracedQuery::new).collect();
        self.query_batch_inner(&queries, false)
    }

    /// [`query_batch`](Self::query_batch) with span recording: each
    /// query opens its own root span (joining its [`TracedQuery::ctx`]
    /// when supplied, starting a fresh trace otherwise), and every
    /// flattened scan task carries *its* query's span handle into the
    /// pool — interleaved queries never cross-contaminate parents.
    ///
    /// # Errors
    ///
    /// The call itself is infallible; each element is `Err` under the
    /// same conditions as [`query`](Self::query).
    pub fn query_batch_traced(
        &self,
        queries: &[TracedQuery],
    ) -> Vec<Result<QueryResult, CoreError>> {
        self.query_batch_inner(queries, true)
    }

    fn query_batch_inner(
        &self,
        queries: &[TracedQuery],
        traced: bool,
    ) -> Vec<Result<QueryResult, CoreError>> {
        struct Pending<'a> {
            index: usize,
            range: Cuboid,
            first: u32,
            rest: Vec<u32>,
            replica: &'a BuiltReplica,
            predicted: f64,
            n_tasks: usize,
            span: Option<TraceSpan>,
        }
        type ScanClosure = Box<
            dyn FnOnce() -> Result<Result<ScanReport, StorageError>, StorageError> + Send + 'static,
        >;
        let mut results: Vec<Option<Result<QueryResult, CoreError>>> =
            queries.iter().map(|_| None).collect();
        let mut pending: Vec<Pending<'_>> = Vec::new();
        let mut closures: Vec<ScanClosure> = Vec::new();
        let env = self.env;
        let shared_backend = self.backend_dyn();
        for (index, query) in queries.iter().enumerate() {
            let range = &query.range;
            if let Some(log) = &self.log {
                log.lock().observe(range);
            }
            self.metrics.queries.inc();
            let root = traced.then(|| match query.ctx {
                Some(ctx) => self.recorder.span_under(ctx, names::QUERY),
                None => self.recorder.span(names::QUERY),
            });
            let route_span = root.as_ref().map(|r| r.child(names::ROUTE));
            let mut order = self.route(range);
            if let Some(span) = route_span {
                span.finish();
            }
            let planned = match order.first().copied() {
                None => Some(Err(CoreError::NoReplicas)),
                Some(first) => match self.plan_on(first, range) {
                    // Scan failures stay *inside* the closure result so
                    // one damaged replica aborts only its own query,
                    // not the whole batch.
                    Ok((replica, predicted, tasks)) => {
                        let n_tasks = tasks.len();
                        let root_handle = root.as_ref().map(TraceSpan::handle).unwrap_or_default();
                        for task in tasks {
                            let backend = Arc::clone(&shared_backend);
                            let scan_handle = root_handle.clone();
                            closures.push(Box::new(move || {
                                Ok(scan_one_unit(backend.as_ref(), &env, &task, &scan_handle))
                            }));
                        }
                        order.remove(0);
                        pending.push(Pending {
                            index,
                            range: *range,
                            first,
                            rest: order,
                            replica,
                            predicted,
                            n_tasks,
                            span: root,
                        });
                        None
                    }
                    Err(e) => Some(Err(e)),
                },
            };
            if let (Some(r), Some(slot)) = (planned, results.get_mut(index)) {
                *slot = Some(r);
            }
        }
        match self.pool.execute_all(closures) {
            Ok(outcomes) => {
                let mut cursor = outcomes.into_iter();
                for p in pending {
                    let mut reports = Vec::with_capacity(p.n_tasks);
                    let mut scan_err: Option<StorageError> = None;
                    for _ in 0..p.n_tasks {
                        match cursor.next() {
                            Some(Ok(report)) => reports.push(report),
                            Some(Err(e)) => scan_err = Some(e),
                            None => scan_err = Some(StorageError::WorkerPanicked),
                        }
                    }
                    let trace_id = p
                        .span
                        .as_ref()
                        .and_then(|s| s.context())
                        .map_or(TraceId(0), |c| c.trace);
                    let handle = p.span.as_ref().map(TraceSpan::handle).unwrap_or_default();
                    let result = match scan_err {
                        None => {
                            let merge_span = p.span.as_ref().map(|s| s.child(names::MERGE));
                            let r = self.assemble(p.replica, p.predicted, &reports, trace_id);
                            drop(merge_span);
                            self.metrics.records_returned.add(r.records.len() as u64);
                            Ok(r)
                        }
                        // The cheapest replica failed mid-scan: fail
                        // over down the rest of the ranking, seeded so
                        // a store with no surviving replica reports the
                        // storage error, not `NoReplicas`.
                        Some(e) => self.query_failover_traced(
                            &p.range,
                            &p.rest,
                            vec![p.first],
                            Some(e),
                            &handle,
                        ),
                    };
                    if let Some(mut span) = p.span {
                        if let Ok(r) = &result {
                            span.note(names::REPLICA, u64::from(r.replica));
                            span.note(names::UNITS, r.partitions_scanned as u64);
                            span.note(names::UNITS_SKIPPED, r.units_skipped as u64);
                            span.note(names::FAILED_OVER, r.failed_over.len() as u64);
                            span.set_sim_ms(r.sim_ms);
                        }
                        span.finish();
                    }
                    if let Some(slot) = results.get_mut(p.index) {
                        *slot = Some(result);
                    }
                }
            }
            // The pooled round itself died (a task panicked hard
            // enough to abort the batch): re-run each planned query
            // through the serial failover path.
            Err(_) => {
                for p in pending {
                    let mut order = Vec::with_capacity(p.rest.len() + 1);
                    order.push(p.first);
                    order.extend_from_slice(&p.rest);
                    let handle = p.span.as_ref().map(TraceSpan::handle).unwrap_or_default();
                    let result =
                        self.query_failover_traced(&p.range, &order, Vec::new(), None, &handle);
                    if let Some(slot) = results.get_mut(p.index) {
                        *slot = Some(result);
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or(Err(CoreError::NoReplicas)))
            .collect()
    }

    /// Reads every storage unit of every replica (verification scans
    /// run in parallel on the pool) and reports the keys that are
    /// missing or no longer decode, in unit order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IdOverflow`] if a replica somehow holds
    /// more than `u32::MAX` partitions; damaged units are *data*, not
    /// errors.
    pub fn scrub(&self) -> Result<Vec<UnitKey>, CoreError> {
        let env = self.env;
        let _span = Span::start(&self.metrics.scrub_wall_ms);
        let mut verifies = Vec::new();
        for replica in &self.replicas {
            for pid in 0..replica.scheme.len() {
                let key = UnitKey {
                    replica: replica.id,
                    partition: partition_id(pid)?,
                };
                let scheme = replica.config.encoding;
                let backend: Arc<dyn Backend> = self.backend.clone();
                let scanned = self.metrics.scrub_units_scanned.clone();
                let verified = self.metrics.scrub_units_verified.clone();
                let damaged = self.metrics.scrub_units_damaged.clone();
                let mismatches = self.metrics.scrub_footer_mismatches.clone();
                let decodes = self.metrics.decode_counter(scheme);
                let records_decoded = self.metrics.records_decoded.clone();
                let bytes_read = self.metrics.bytes_read.clone();
                verifies.push(move || {
                    scanned.inc();
                    match run_scan(
                        backend.as_ref(),
                        &env,
                        &ScanTask {
                            key,
                            scheme,
                            range: None,
                        },
                    ) {
                        Ok(report) => {
                            decodes.inc();
                            records_decoded.add(report.records_scanned as u64);
                            bytes_read.add(report.bytes);
                            // A footer that disagrees with its payload
                            // (or is missing) is damage: repair rewrites
                            // the unit, which refreshes the footer.
                            if report.footer_mismatch {
                                mismatches.inc();
                                damaged.inc();
                                Ok(Some(key))
                            } else {
                                verified.inc();
                                Ok(None)
                            }
                        }
                        Err(_) => {
                            damaged.inc();
                            Ok(Some(key))
                        }
                    }
                });
            }
        }
        let damaged = self.pool.execute_all(verifies)?;
        Ok(damaged.into_iter().flatten().collect())
    }

    /// Rebuilds one damaged unit from the other replicas.
    ///
    /// First tries a clean single-source repair: extract the partition's
    /// records from one fully-readable replica (re-assigning boundary
    /// records with the owner's partitioner so the rebuilt unit holds
    /// exactly the original record set).
    ///
    /// When every source replica is itself partially damaged over the
    /// range, falls back to *multi-source* repair: the readable units of
    /// each source contribute a partial view, the views are merged (per
    /// source a record appears at most once per copy it had, so the
    /// merged multiplicity of each record is the maximum over sources),
    /// and the merge is accepted only if it reaches the unit's known
    /// record count — diverse replicas recovering each other even when
    /// no single replica survived intact.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoSuchReplica`] — unknown id;
    /// * [`CoreError::Unrecoverable`] — the surviving units do not cover
    ///   every record of the partition (both copies of some region are
    ///   gone).
    pub fn repair_unit(&self, key: UnitKey) -> Result<(), CoreError> {
        let _span = Span::start(&self.metrics.repair_wall_ms);
        match self.repair_unit_inner(key) {
            Ok(()) => {
                self.metrics.repair_units_repaired.inc();
                Ok(())
            }
            Err(e) => {
                if matches!(e, CoreError::Unrecoverable { .. }) {
                    self.metrics.repair_units_failed.inc();
                }
                Err(e)
            }
        }
    }

    fn repair_unit_inner(&self, key: UnitKey) -> Result<(), CoreError> {
        let owner = self
            .replicas
            .get(key.replica as usize)
            .ok_or(CoreError::NoSuchReplica { id: key.replica })?;
        let partition = owner
            .scheme
            .partitions()
            .get(key.partition as usize)
            .ok_or(CoreError::NoSuchReplica { id: key.replica })?;
        let is_member = |records: &RecordBatch, i: usize| {
            let p = records.point(i);
            owner.scheme.assign_point(p.x, p.y, p.t) == key.partition as usize
        };

        // Fast path: one fully-readable source.
        for source in &self.replicas {
            if source.id == key.replica {
                continue;
            }
            let Ok(result) = self.query_on(source.id, &partition.range) else {
                continue; // this source is damaged too — try the next
            };
            // The closed-range query may pull boundary records owned by
            // neighbouring partitions; keep only true members.
            let mut members = RecordBatch::new();
            for i in 0..result.records.len() {
                if is_member(&result.records, i) {
                    members.push(result.records.get(i));
                }
            }
            let unit = owner.config.encoding.encode(&members);
            self.backend.put(key, unit)?;
            return Ok(());
        }

        // Fallback: merge partial views. A record's multiplicity in the
        // truth equals its multiplicity in any complete source view, so
        // the max multiplicity over partial views is a lower bound that
        // becomes exact once the views jointly cover the partition.
        type RecordKey = (u32, i64, u64, u64, u32, u32, bool, u8);
        let key_of = |b: &RecordBatch, i: usize| -> RecordKey {
            let r = b.get(i);
            (
                r.oid,
                r.time,
                r.x.to_bits(),
                r.y.to_bits(),
                r.speed.to_bits(),
                r.heading.to_bits(),
                r.occupied,
                r.passengers,
            )
        };
        let mut merged: std::collections::HashMap<RecordKey, (blot_model::Record, usize)> =
            std::collections::HashMap::new();
        for source in &self.replicas {
            if source.id == key.replica {
                continue;
            }
            let mut counts: std::collections::HashMap<RecordKey, (blot_model::Record, usize)> =
                std::collections::HashMap::new();
            // Extraction scans over this source's involved units run on
            // the pool; an unreadable unit contributes nothing (another
            // source may cover it) rather than failing the batch.
            let mut scans = Vec::new();
            for pid in source.scheme.involved(&partition.range) {
                let task = ScanTask {
                    key: UnitKey {
                        replica: source.id,
                        partition: partition_id(pid)?,
                    },
                    scheme: source.config.encoding,
                    range: Some(partition.range),
                };
                let backend: Arc<dyn Backend> = self.backend.clone();
                let env = self.env;
                scans.push(move || Ok(run_scan(backend.as_ref(), &env, &task).ok()));
            }
            for report in self.pool.execute_all(scans)?.into_iter().flatten() {
                for i in 0..report.output.len() {
                    if is_member(&report.output, i) {
                        let k = key_of(&report.output, i);
                        counts.entry(k).or_insert((report.output.get(i), 0)).1 += 1;
                    }
                }
            }
            for (k, (r, c)) in counts {
                let e = merged.entry(k).or_insert((r, 0));
                e.1 = e.1.max(c);
            }
        }
        let total: usize = merged.values().map(|&(_, c)| c).sum();
        if total != partition.count {
            return Err(CoreError::Unrecoverable {
                replica: key.replica,
                partition: key.partition,
            });
        }
        let mut members = RecordBatch::with_capacity(total);
        for (r, c) in merged.into_values() {
            for _ in 0..c {
                members.push(r);
            }
        }
        let unit = owner.config.encoding.encode(&members);
        self.backend.put(key, unit)?;
        Ok(())
    }

    /// Scrubs the store and repairs everything repairable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Storage`] only on write failures; units with
    /// no surviving source are reported, not errored.
    pub fn repair_all(&self) -> Result<RepairReport, CoreError> {
        let scanned_before = self.metrics.scrub_units_scanned.value();
        let verified_before = self.metrics.scrub_units_verified.value();
        let mismatch_before = self.metrics.scrub_footer_mismatches.value();
        let mut report = RepairReport::default();
        for key in self.scrub()? {
            match self.repair_unit(key) {
                Ok(()) => report.repaired.push(key),
                Err(CoreError::Unrecoverable { .. }) => report.unrecoverable.push(key),
                Err(e) => return Err(e),
            }
        }
        report.units_scanned = self
            .metrics
            .scrub_units_scanned
            .value()
            .saturating_sub(scanned_before);
        report.units_verified = self
            .metrics
            .scrub_units_verified
            .value()
            .saturating_sub(verified_before);
        report.units_repaired = report.repaired.len() as u64;
        report.units_failed = report.unrecoverable.len() as u64;
        report.units_footer_mismatch = self
            .metrics
            .scrub_footer_mismatches
            .value()
            .saturating_sub(mismatch_before);
        Ok(report)
    }
}

/// A shared, thread-safe handle to a store, for subsystems (the server,
/// background scrubbers) that answer queries from many threads at once.
pub type SharedStore<B> = Arc<BlotStore<B>>;

/// The query-side surface a serving layer needs, object-safe and
/// backend-agnostic: answer range queries (singly or micro-batched),
/// expose the metrics registry and drift report, and share the scan
/// executor so a server can drain it on shutdown.
pub trait QueryService: Send + Sync {
    /// Routes and executes one range query with failover.
    ///
    /// # Errors
    ///
    /// Same contract as [`BlotStore::query`]: [`CoreError::NoReplicas`]
    /// when the store is empty, [`CoreError::Storage`] when every
    /// candidate replica failed.
    fn query(&self, range: &Cuboid) -> Result<QueryResult, CoreError>;

    /// Executes a micro-batch of queries in one pooled round; one entry
    /// per input range, in order. See [`BlotStore::query_batch`].
    fn query_batch(&self, ranges: &[Cuboid]) -> Vec<Result<QueryResult, CoreError>>;

    /// Executes a traced micro-batch, recording per-query span trees
    /// into the service's flight recorder. The default implementation
    /// ignores trace contexts and delegates to
    /// [`query_batch`](Self::query_batch).
    fn query_batch_traced(&self, queries: &[TracedQuery]) -> Vec<Result<QueryResult, CoreError>> {
        let ranges: Vec<Cuboid> = queries.iter().map(|q| q.range).collect();
        self.query_batch(&ranges)
    }

    /// The service's flight recorder, for serving-layer spans and trace
    /// export. Disabled (records nothing) by default.
    fn recorder(&self) -> FlightRecorder {
        FlightRecorder::disabled()
    }

    /// Sets the slow-query threshold in simulated ms (`<= 0` disables).
    /// No-op by default.
    fn set_slow_query_ms(&self, ms: f64) {
        let _ = ms;
    }

    /// Drains structured slow-query entries captured since the last
    /// drain. Empty by default.
    fn drain_slow_queries(&self) -> Vec<SlowQueryEntry> {
        Vec::new()
    }

    /// A handle to the registry all of this service's instruments live
    /// in, so a server can register its own alongside them.
    fn metrics_registry(&self) -> MetricsRegistry;

    /// Cost-model drift, per encoding scheme.
    fn drift_report(&self, band: DriftBand) -> DriftReport;

    /// A full pre-rendered `Stats` JSON document, when the service
    /// replaces the serving layer's default payload (a coordinator
    /// aggregates per-shard documents into one view). `None` — the
    /// default — means "render the standard single-store payload".
    fn stats_json(&self, band: Option<DriftBand>) -> Option<String> {
        let _ = band;
        None
    }

    /// The data universe (used to validate / clamp remote queries).
    fn universe(&self) -> Cuboid;

    /// The scan executor the service runs on, so graceful shutdown can
    /// drain it after the last request completes.
    fn executor(&self) -> Arc<ScanExecutor>;
}

impl<B: Backend + 'static> QueryService for BlotStore<B> {
    fn query(&self, range: &Cuboid) -> Result<QueryResult, CoreError> {
        BlotStore::query(self, range)
    }

    fn query_batch(&self, ranges: &[Cuboid]) -> Vec<Result<QueryResult, CoreError>> {
        BlotStore::query_batch(self, ranges)
    }

    fn query_batch_traced(&self, queries: &[TracedQuery]) -> Vec<Result<QueryResult, CoreError>> {
        BlotStore::query_batch_traced(self, queries)
    }

    fn recorder(&self) -> FlightRecorder {
        self.recorder.clone()
    }

    fn set_slow_query_ms(&self, ms: f64) {
        BlotStore::set_slow_query_ms(self, ms);
    }

    fn drain_slow_queries(&self) -> Vec<SlowQueryEntry> {
        BlotStore::drain_slow_queries(self)
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.metrics.registry().clone()
    }

    fn drift_report(&self, band: DriftBand) -> DriftReport {
        BlotStore::drift_report(self, band)
    }

    fn universe(&self) -> Cuboid {
        BlotStore::universe(self)
    }

    fn executor(&self) -> Arc<ScanExecutor> {
        Arc::clone(&self.pool)
    }
}

// The server hands one store to many connection threads; losing either
// auto-trait would surface as a distant, confusing bound failure there.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<BlotStore<blot_storage::MemBackend>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use blot_storage::{FailingBackend, FailureMode, MemBackend};
    use blot_tracegen::FleetConfig;

    fn small_store() -> (BlotStore<FailingBackend<MemBackend>>, RecordBatch) {
        let mut config = FleetConfig::small();
        config.num_taxis = 50;
        config.records_per_taxi = 120;
        let data = config.generate();
        let universe = config.universe();
        let env = EnvProfile::local_cluster();
        let model = CostModel::calibrate(&env, &data, 11);
        let mut store =
            BlotStore::new(FailingBackend::new(MemBackend::new()), env, universe, model);
        store
            .build_replica(
                &data,
                ReplicaConfig::new(
                    SchemeSpec::new(16, 4),
                    EncodingScheme::new(Layout::Row, Compression::Lzf),
                ),
            )
            .unwrap();
        store
            .build_replica(
                &data,
                ReplicaConfig::new(
                    SchemeSpec::new(4, 2),
                    EncodingScheme::new(Layout::Column, Compression::Deflate),
                ),
            )
            .unwrap();
        (store, data)
    }

    fn test_query(store: &BlotStore<FailingBackend<MemBackend>>) -> Cuboid {
        let u = store.universe();
        Cuboid::from_centroid(
            u.centroid(),
            QuerySize::new(u.extent(0) / 3.0, u.extent(1) / 3.0, u.extent(2) / 3.0),
        )
    }

    #[test]
    fn query_matches_oracle_on_every_replica() {
        let (store, data) = small_store();
        let q = test_query(&store);
        let expected = data.count_in_range(&q);
        assert!(expected > 0, "test query must match something");
        for id in 0..2 {
            let result = store.query_on(id, &q).unwrap();
            assert_eq!(result.records.len(), expected, "replica {id}");
            assert!(result.records.iter().all(|r| r.in_range(&q)));
            assert!(result.partitions_scanned > 0);
            assert!(result.sim_ms > 0.0);
        }
    }

    #[test]
    fn routing_follows_the_cost_model() {
        // A synthetic model with scan-dominated costs makes routing
        // deterministic: tiny queries go to the fine replica (it prunes
        // more records), universe-sized queries to the coarse one (it
        // pays fewer per-partition extra costs).
        let mut config = FleetConfig::small();
        config.num_taxis = 50;
        config.records_per_taxi = 120;
        let data = config.generate();
        let universe = config.universe();
        let params = blot_codec::SchemeTable::build(|_| crate::cost::CostParams {
            ms_per_record: crate::units::Millis::new(1.0),
            extra_ms: crate::units::Millis::new(50.0),
        });
        let bpr = blot_codec::SchemeTable::build(|_| 38.0);
        let model = CostModel::from_params("synthetic", params, bpr);
        let mut store = BlotStore::new(
            FailingBackend::new(MemBackend::new()),
            EnvProfile::local_cluster(),
            universe,
            model,
        );
        let enc = EncodingScheme::new(Layout::Row, Compression::Plain);
        let fine = store
            .build_replica(&data, ReplicaConfig::new(SchemeSpec::new(64, 8), enc))
            .unwrap();
        let coarse = store
            .build_replica(&data, ReplicaConfig::new(SchemeSpec::new(4, 2), enc))
            .unwrap();

        let tiny = Cuboid::from_centroid(
            universe.centroid(),
            QuerySize::new(0.01, 0.01, universe.extent(2) / 100.0),
        );
        assert_eq!(
            store.route(&tiny)[0],
            fine,
            "tiny query must go to the fine replica"
        );
        assert_eq!(
            store.route(&universe)[0],
            coarse,
            "whole-universe query must go to the coarse replica"
        );
        let result = store.query(&tiny).unwrap();
        assert_eq!(result.replica, fine);
        assert_eq!(result.records.len(), data.count_in_range(&tiny));
    }

    #[test]
    fn failover_serves_query_from_surviving_replica() {
        let (store, data) = small_store();
        let q = test_query(&store);
        // Drop every unit of replica 0.
        for pid in 0..store.replicas()[0].scheme.len() {
            store.backend().inject(
                UnitKey {
                    replica: 0,
                    partition: u32::try_from(pid).unwrap_or(u32::MAX),
                },
                FailureMode::Drop,
            );
        }
        let result = store.query(&q).unwrap();
        assert_eq!(result.records.len(), data.count_in_range(&q));
        assert_eq!(result.replica, 1);
    }

    #[test]
    fn scrub_finds_injected_damage_and_repair_heals_it() {
        let (store, data) = small_store();
        let k1 = UnitKey {
            replica: 0,
            partition: 3,
        };
        let k2 = UnitKey {
            replica: 1,
            partition: 0,
        };
        store.backend().inject(k1, FailureMode::Drop);
        store.backend().inject(k2, FailureMode::Corrupt);
        let damaged = store.scrub().unwrap();
        assert!(
            damaged.contains(&k1) && damaged.contains(&k2),
            "{damaged:?}"
        );

        let report = store.repair_all().unwrap();
        assert!(report.unrecoverable.is_empty());
        assert!(report.repaired.contains(&k1) && report.repaired.contains(&k2));
        assert!(
            store.scrub().unwrap().is_empty(),
            "store must be clean after repair"
        );

        // Full-universe query returns every record again, on both replicas.
        let u = store.universe();
        for id in 0..2 {
            assert_eq!(store.query_on(id, &u).unwrap().records.len(), data.len());
        }
    }

    #[test]
    fn repaired_unit_is_byte_identical() {
        let (store, _) = small_store();
        let key = UnitKey {
            replica: 0,
            partition: 5,
        };
        let original = store.backend().get(key).unwrap();
        store.backend().inject(key, FailureMode::Drop);
        store.repair_unit(key).unwrap();
        let repaired = store.backend().get(key).unwrap();
        // Row layout preserves order only per encoding; compare decoded
        // record sets via the canonical column sort.
        let scheme = store.replicas()[0].config.encoding;
        let mut a = scheme.decode(&original).unwrap();
        let mut b = scheme.decode(&repaired).unwrap();
        a.sort_by_oid_time();
        b.sort_by_oid_time();
        assert_eq!(a, b);
    }

    #[test]
    fn damage_on_all_replicas_is_unrecoverable() {
        let (store, _) = small_store();
        // Kill everything everywhere: nothing survives to recover from.
        for replica in store.replicas() {
            for pid in 0..replica.scheme.len() {
                store.backend().inject(
                    UnitKey {
                        replica: replica.id,
                        partition: u32::try_from(pid).unwrap_or(u32::MAX),
                    },
                    FailureMode::Drop,
                );
            }
        }
        let report = store.repair_all().unwrap();
        assert!(report.repaired.is_empty());
        let total: usize = store.replicas().iter().map(|r| r.scheme.len()).sum();
        assert_eq!(report.unrecoverable.len(), total);
    }

    #[test]
    fn partial_cross_damage_recovers_what_it_can() {
        let (store, data) = small_store();
        // One partition of replica 0 and all of replica 1 are lost:
        // replica 1 partitions disjoint from the lost unit's range come
        // back from replica 0; the lost r0 unit itself cannot (its only
        // source is down at scrub time).
        let lost = UnitKey {
            replica: 0,
            partition: 1,
        };
        store.backend().inject(lost, FailureMode::Drop);
        for pid in 0..store.replicas()[1].scheme.len() {
            store.backend().inject(
                UnitKey {
                    replica: 1,
                    partition: u32::try_from(pid).unwrap_or(u32::MAX),
                },
                FailureMode::Drop,
            );
        }
        let _ = data;
        let report = store.repair_all().unwrap();
        assert!(report.unrecoverable.contains(&lost));
        assert!(
            !report.repaired.is_empty(),
            "disjoint r1 units must come back"
        );
        // The lost r0 unit and the r1 unit whose range overlaps it
        // depend on each other: both copies of the overlap region are
        // gone, so with two replicas that data is genuinely lost — a
        // second pass must keep reporting exactly those units.
        let second = store.repair_all().unwrap();
        assert!(second.repaired.is_empty());
        assert_eq!(second.unrecoverable.len(), report.unrecoverable.len());
        for key in &second.unrecoverable {
            let owner = &store.replicas()[key.replica as usize];
            let range = owner.scheme.partitions()[key.partition as usize].range;
            assert!(
                second
                    .unrecoverable
                    .iter()
                    .filter(|k| k.replica != key.replica)
                    .any(|k| {
                        let other = &store.replicas()[k.replica as usize];
                        other.scheme.partitions()[k.partition as usize]
                            .range
                            .intersects(&range)
                    }),
                "every unrecoverable unit must be blocked by an overlapping lost unit"
            );
        }
    }

    #[test]
    fn unknown_replica_errors() {
        let (store, _) = small_store();
        let u = store.universe();
        assert!(matches!(
            store.query_on(9, &u),
            Err(CoreError::NoSuchReplica { id: 9 })
        ));
    }

    #[test]
    fn query_batch_matches_serial_query() {
        let (store, data) = small_store();
        let u = store.universe();
        let mut ranges = vec![test_query(&store), u];
        for k in 1..5_u32 {
            let f = f64::from(k) / 6.0;
            ranges.push(Cuboid::from_centroid(
                u.centroid(),
                QuerySize::new(u.extent(0) * f, u.extent(1) * f, u.extent(2) * f),
            ));
        }
        let batch = store.query_batch(&ranges);
        assert_eq!(batch.len(), ranges.len());
        for (q, result) in ranges.iter().zip(batch) {
            let got = result.unwrap();
            let serial = store.query(q).unwrap();
            assert_eq!(got.records, serial.records, "records must be bit-identical");
            assert_eq!(got.replica, serial.replica);
            assert_eq!(got.partitions_scanned, serial.partitions_scanned);
            assert_eq!(got.records.len(), data.count_in_range(q));
            assert!(got.failed_over.is_empty());
        }
    }

    #[test]
    fn query_batch_fails_over_per_query() {
        let (store, data) = small_store();
        let q = test_query(&store);
        let first = store.route(&q)[0];
        // Kill the cheapest replica for this query: the batch path must
        // fail over to the survivor without disturbing its neighbours.
        for pid in 0..store.replicas()[first as usize].scheme.len() {
            store.backend().inject(
                UnitKey {
                    replica: first,
                    partition: u32::try_from(pid).unwrap_or(u32::MAX),
                },
                FailureMode::Drop,
            );
        }
        let batch = store.query_batch(&[q, q]);
        for result in batch {
            let got = result.unwrap();
            assert_ne!(got.replica, first);
            assert_eq!(got.failed_over, vec![first]);
            assert_eq!(got.records.len(), data.count_in_range(&q));
        }
    }

    #[test]
    fn traced_query_records_a_parented_span_tree() {
        let (store, data) = small_store();
        let q = test_query(&store);
        let ctx = blot_obs::SpanContext::fresh();
        let result = store.query_traced(&q, Some(ctx)).unwrap();
        assert_eq!(result.records.len(), data.count_in_range(&q));
        if !blot_obs::enabled() {
            return;
        }
        use blot_obs::names;
        let records = store.recorder().snapshot();
        let in_trace: Vec<_> = records.iter().filter(|r| r.trace == ctx.trace).collect();
        let root = in_trace
            .iter()
            .find(|r| r.name == names::QUERY)
            .expect("root query span must be recorded");
        assert_eq!(root.parent, Some(ctx.span), "root adopts the caller's span");
        for stage in [
            names::ROUTE,
            names::SCAN,
            names::MERGE,
            names::SCAN_UNIT,
            names::UNIT_PRUNE,
            names::UNIT_DECODE,
        ] {
            assert!(
                in_trace.iter().any(|r| r.name == stage),
                "stage span {stage} missing from trace"
            );
        }
        // Every span parents inside the trace (or on the adopted ctx).
        let ids: std::collections::HashSet<_> = in_trace.iter().map(|r| r.span).collect();
        for r in &in_trace {
            let parent = r.parent.expect("no orphan spans inside a traced query");
            assert!(
                ids.contains(&parent) || parent == ctx.span,
                "span {} has a parent outside its trace",
                r.name
            );
        }
        assert_eq!(
            root.note_value(names::UNITS),
            Some(result.partitions_scanned as u64)
        );
    }

    #[test]
    fn batch_traced_queries_never_cross_contaminate() {
        let (store, _) = small_store();
        let q = test_query(&store);
        let contexts: Vec<_> = (0..4).map(|_| blot_obs::SpanContext::fresh()).collect();
        let queries: Vec<TracedQuery> = contexts
            .iter()
            .map(|&ctx| TracedQuery {
                range: q,
                ctx: Some(ctx),
            })
            .collect();
        for result in store.query_batch_traced(&queries) {
            result.unwrap();
        }
        if !blot_obs::enabled() {
            return;
        }
        let records = store.recorder().snapshot();
        for ctx in &contexts {
            let in_trace: Vec<_> = records.iter().filter(|r| r.trace == ctx.trace).collect();
            assert!(
                in_trace
                    .iter()
                    .any(|r| r.name == blot_obs::names::SCAN_UNIT),
                "each interleaved query must record its own unit spans"
            );
            let ids: std::collections::HashSet<_> = in_trace.iter().map(|r| r.span).collect();
            for r in &in_trace {
                let parent = r.parent.expect("batch spans must stay parented");
                assert!(
                    ids.contains(&parent) || parent == ctx.span,
                    "span parented across trace boundaries"
                );
            }
        }
    }

    #[test]
    fn slow_query_log_captures_offenders_and_drains() {
        let (store, _) = small_store();
        assert!(store.slow_query_ms().is_none());
        store.set_slow_query_ms(1e-9);
        let q = test_query(&store);
        store.query(&q).unwrap();
        let entries = store.drain_slow_queries();
        assert!(
            !entries.is_empty(),
            "threshold of ~0 must capture the query"
        );
        let line = entries[0].to_line();
        assert!(line.starts_with("slow-query trace="), "{line}");
        assert!(line.contains("ratio="), "{line}");
        assert!(entries[0].ratio() > 0.0);
        assert!(
            store.drain_slow_queries().is_empty(),
            "drain must consume the log"
        );
        store.set_slow_query_ms(0.0);
        store.query(&q).unwrap();
        assert!(
            store.drain_slow_queries().is_empty(),
            "disabled log must capture nothing"
        );
    }

    #[test]
    fn query_batch_on_empty_input_and_empty_store() {
        let (store, _) = small_store();
        assert!(store.query_batch(&[]).is_empty());
        let empty: BlotStore<MemBackend> = BlotStore::new(
            MemBackend::new(),
            EnvProfile::local_cluster(),
            store.universe(),
            store.model().clone(),
        );
        let batch = empty.query_batch(&[store.universe()]);
        assert!(matches!(batch.as_slice(), [Err(CoreError::NoReplicas)]));
    }
}
