//! Dimension-tagged quantities for the cost model.
//!
//! The paper's cost model freely mixes physical dimensions — seconds
//! (`ScanRate`, `ExtraTime`, Eq. 6–7), bytes (`Storage(R)`, the budget
//! `b`), and partition counts (Eq. 11). A unit-confusion bug silently
//! corrupts every figure the repro emits, so the quantities that cross
//! module boundaries are newtypes: [`Millis`] / [`Seconds`] for
//! simulated time, [`Bytes`] for storage, [`PartitionCount`] for
//! (possibly fractional, Eq. 11) involved-partition counts.
//!
//! Arithmetic is dimensional: same-unit addition/subtraction, scalar
//! scaling, and same-unit division yielding a dimensionless ratio.
//! Cross-unit `+`/`-` simply does not compile — and the workspace audit
//! (`cargo xtask lint`, rule `unit-flow`) additionally infers a unit
//! family for raw `f64` locals, parameters and returns — seeded by
//! these newtypes and suffix conventions, propagated workspace-wide
//! through bindings, `.get()`/`.0` escapes and call summaries — so
//! untyped locals cannot smuggle a seconds value into a bytes slot
//! even across crate boundaries. `blot-geo` and `blot-mip` sit *below*
//! this crate in the dependency order, so they cannot import these
//! newtypes; the lint's inference is what covers them.
//!
//! Convention at the boundary: a raw `f64` extracted with `.get()` is
//! only ever passed straight into a sink that documents its unit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw magnitude.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The raw magnitude (unit documented by the type).
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Larger of the two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Smaller of the two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Whether the magnitude is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        /// Scalar scaling preserves the unit.
        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        /// Scalar scaling preserves the unit (commuted form).
        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        /// Scalar division preserves the unit.
        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Same-unit division yields a dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)?;
                f.write_str($suffix)
            }
        }
    };
}

unit_newtype!(
    /// Simulated milliseconds — the native unit of [`crate::cost`]
    /// (`1/ScanRate` slopes, `ExtraTime` intercepts, query costs).
    Millis,
    "ms"
);

unit_newtype!(
    /// Seconds, for presentation and for workload parameters expressed
    /// in the paper's own unit (e.g. grouped-query durations).
    Seconds,
    "s"
);

unit_newtype!(
    /// Bytes of replica storage (`Storage(R)`, Definition 5, and the
    /// budget `b` of Eq. 1).
    Bytes,
    "B"
);

unit_newtype!(
    /// A count of involved partitions. Fractional values are meaningful:
    /// Eq. 11 computes the *expected* number of involved partitions of a
    /// grouped query as a sum of probabilities.
    PartitionCount,
    " partitions"
);

impl From<Seconds> for Millis {
    fn from(s: Seconds) -> Self {
        Self::new(s.get() * 1e3)
    }
}

impl From<Millis> for Seconds {
    fn from(ms: Millis) -> Self {
        Self::new(ms.get() * 1e-3)
    }
}

impl PartitionCount {
    /// An exact count from a partitioning-index lookup.
    #[must_use]
    pub fn of(n: usize) -> Self {
        // Partition counts are far below 2^53; the conversion is exact.
        #[allow(clippy::cast_precision_loss)]
        Self::new(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_unit_arithmetic() {
        let a = Millis::new(2.0);
        let b = Millis::new(3.0);
        assert_eq!((a + b).get(), 5.0);
        assert_eq!((b - a).get(), 1.0);
        assert_eq!((a * 4.0).get(), 8.0);
        assert_eq!((4.0 * a).get(), 8.0);
        assert_eq!((b / 2.0).get(), 1.5);
        assert!((b / a - 1.5).abs() < 1e-12);
        assert!(b > a);
        let mut acc = Millis::ZERO;
        acc += b;
        assert_eq!(acc, b);
        let total: Millis = [a, b].into_iter().sum();
        assert_eq!(total.get(), 5.0);
    }

    #[test]
    fn seconds_millis_conversions_roundtrip() {
        let s = Seconds::new(1.5);
        let ms: Millis = s.into();
        assert_eq!(ms.get(), 1500.0);
        let back: Seconds = ms.into();
        assert_eq!(back.get(), 1.5);
    }

    #[test]
    fn partition_count_of_is_exact() {
        assert_eq!(PartitionCount::of(17).get(), 17.0);
        assert_eq!(PartitionCount::of(0), PartitionCount::ZERO);
    }

    #[test]
    fn min_max_and_display() {
        let a = Bytes::new(10.0);
        let b = Bytes::new(20.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(a.is_finite());
        assert_eq!(format!("{}", Bytes::new(3.0)), "3B");
        assert_eq!(format!("{}", Millis::new(2.5)), "2.5ms");
    }
}
