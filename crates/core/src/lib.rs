//! The BLOT diverse-replica store — the paper's primary contribution.
//!
//! This crate assembles the substrates (`blot-geo`, `blot-model`,
//! `blot-codec`, `blot-index`, `blot-storage`, `blot-mip`) into the
//! system of *Exploring the Use of Diverse Replicas for Big Location
//! Tracking Data* (Ding et al., ICDCS 2014):
//!
//! * [`query`] — grouped queries `⟨W, H, T⟩`, weighted workloads, and
//!   the paper's synthetic evaluation workload;
//! * [`replica`] — replica configurations (partitioning spec × encoding
//!   scheme) and the candidate grid `R_C` (`m = m_P · m_E`);
//! * [`cost`] — the query cost model of §IV: per-partition cost
//!   `|D(p)|/ScanRate + ExtraTime` (Eq. 6), replica-level cost (Eq. 7),
//!   the geometric expected-involvement count for grouped queries
//!   (Eq. 11–12), and the calibration procedure of §V-B that measures
//!   `ScanRate`/`ExtraTime` by linear regression over scan timings;
//! * [`select`] — the replica selection problem of §III: exact 0-1 MIP
//!   (Eq. 1–5), the greedy Algorithm 1, dominance pruning, and k-means
//!   workload grouping;
//! * [`store`] — an executable BLOT store: builds physical replicas,
//!   routes each query to the estimated-cheapest replica, runs map-only
//!   scan jobs, and repairs damaged units from *any* other replica
//!   (diverse replicas "can recover each other … because they share the
//!   same logical view", §II-E);
//! * [`obs`] — store metrics and cost-model drift accounting: every
//!   query records predicted vs. measured cost, and [`obs::DriftReport`]
//!   flags encoding schemes whose calibration no longer holds.
//!
//! # Quick start
//!
//! ```
//! use blot_core::prelude::*;
//! use blot_storage::MemBackend;
//! use blot_tracegen::FleetConfig;
//!
//! // 1. Data + universe.
//! let config = FleetConfig::small();
//! let (data, universe) = (config.generate(), config.universe());
//!
//! // 2. Candidate replicas: partitioning specs × encoding schemes.
//! let candidates = ReplicaConfig::grid(
//!     &SchemeSpec::small_grid(),
//!     &EncodingScheme::all(),
//! );
//!
//! // 3. Calibrate the cost model in the simulated local cluster.
//! let env = EnvProfile::local_cluster();
//! let model = CostModel::calibrate(&env, &data, 0xC0FFEE);
//!
//! // 4. Estimate the workload × candidate cost matrix and pick replicas.
//! let workload = Workload::paper_synthetic(&universe);
//! let matrix = CostMatrix::estimate(&model, &workload, &candidates, &data, universe);
//! let budget = 3.0 * matrix.cheapest_storage();
//! let selection = select_greedy(&matrix, budget);
//!
//! // 5. Build the selected replicas and serve a query.
//! let mut store = BlotStore::new(MemBackend::new(), env, universe, model);
//! for &idx in &selection.chosen {
//!     store.build_replica(&data, candidates[idx]).unwrap();
//! }
//! let q = Cuboid::from_centroid(universe.centroid(), QuerySize::new(0.4, 0.4, 1800.0));
//! let result = store.query(&q).unwrap();
//! assert_eq!(result.records.len(), data.count_in_range(&q));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod cost;
mod error;
pub mod obs;
pub mod partial;
pub mod query;
pub mod replica;
pub mod select;
pub mod store;
pub mod units;

pub use error::CoreError;

/// Convenient re-exports of the types most applications need.
pub mod prelude {
    pub use crate::cost::{CostModel, CostParams};
    pub use crate::obs::{DriftBand, DriftReport, StoreMetrics};
    pub use crate::query::{GroupedQuery, Workload};
    pub use crate::replica::ReplicaConfig;
    pub use crate::select::{
        ideal_cost, prune_dominated, select_greedy, select_mip, select_single, CostMatrix,
        Selection,
    };
    pub use crate::store::{
        BlotStore, QueryResult, QueryService, SharedStore, SlowQueryEntry, TracedQuery,
    };
    pub use crate::units::{Bytes, Millis, PartitionCount, Seconds};
    pub use crate::CoreError;
    pub use blot_codec::{Compression, EncodingScheme, Layout};
    pub use blot_geo::{Cuboid, Point, QuerySize};
    pub use blot_index::{PartitioningScheme, SchemeSpec};
    pub use blot_model::{Record, RecordBatch};
    pub use blot_storage::EnvProfile;
}
