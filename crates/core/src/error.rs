use std::fmt;

use blot_index::UnknownPartition;
use blot_mip::MipError;
use blot_storage::StorageError;

/// Error from the BLOT store or the selection pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// A storage unit could not be read or written.
    Storage(StorageError),
    /// The MIP solver failed (infeasible instance or budget exhausted).
    Mip(MipError),
    /// A query referenced a replica id that was never built.
    NoSuchReplica {
        /// The offending id.
        id: u32,
    },
    /// The store holds no replicas yet.
    NoReplicas,
    /// A damaged unit could not be repaired from any other replica.
    Unrecoverable {
        /// Replica owning the damaged unit.
        replica: u32,
        /// Partition id of the damaged unit.
        partition: u32,
    },
    /// Ingested records fell outside the store's universe.
    OutOfUniverse {
        /// How many of the offered records were rejected.
        rejected: usize,
    },
    /// A replica or partition id exceeded the `u32` key space.
    IdOverflow {
        /// What overflowed (`"replica"` or `"partition"`).
        what: &'static str,
    },
    /// A partition id fell outside its scheme's range during ingest
    /// bookkeeping.
    UnknownPartition(UnknownPartition),
    /// A distributed query could not reach (or was shed by) one of the
    /// shards behind a coordinator. Carries the shard's retry hint so
    /// the serving layer can forward it on the wire instead of making
    /// the client guess.
    ShardUnavailable {
        /// The shard that failed.
        shard: u32,
        /// How long the caller should wait before retrying, in
        /// milliseconds. Zero means "no hint".
        retry_after_ms: u32,
        /// Human-readable detail about the underlying failure.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage failure: {e}"),
            Self::Mip(e) => write!(f, "replica selection failed: {e}"),
            Self::NoSuchReplica { id } => write!(f, "no replica with id {id}"),
            Self::NoReplicas => write!(f, "store has no replicas"),
            Self::Unrecoverable { replica, partition } => {
                write!(
                    f,
                    "unit r{replica}/p{partition} unrecoverable from surviving replicas"
                )
            }
            Self::OutOfUniverse { rejected } => {
                write!(f, "{rejected} record(s) fall outside the store universe")
            }
            Self::IdOverflow { what } => {
                write!(f, "{what} id exceeds the u32 key space")
            }
            Self::UnknownPartition(e) => write!(f, "ingest bookkeeping failed: {e}"),
            Self::ShardUnavailable {
                shard,
                retry_after_ms,
                detail,
            } => {
                write!(f, "shard {shard} unavailable: {detail}")?;
                if *retry_after_ms > 0 {
                    write!(f, " (retry after {retry_after_ms} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            Self::Mip(e) => Some(e),
            Self::UnknownPartition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

impl From<MipError> for CoreError {
    fn from(e: MipError) -> Self {
        Self::Mip(e)
    }
}

impl From<UnknownPartition> for CoreError {
    fn from(e: UnknownPartition) -> Self {
        Self::UnknownPartition(e)
    }
}

// Compile-time guarantee that the error type is usable across threads
// and in `Box<dyn Error>` chains; `cargo xtask lint` (rule
// `error-traits`) checks that this assertion exists.
const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<CoreError>()
};
