//! The query cost model of §IV and its calibration (§V-B).
//!
//! Per-partition cost (Equation 6):
//!
//! ```text
//! Cost(q, p) = |D(p)| / ScanRate + ExtraTime
//! ```
//!
//! With non-skewed partitioning (|D(pᵢ)| ≈ |D|/|P|, §IV-A) the cost of a
//! query on a replica is Equation 7:
//!
//! ```text
//! Cost(q, r) = Np(q, r)/|P(r)| · |D|/ScanRate + Np(q, r) · ExtraTime
//! ```
//!
//! For a *grouped* query only the extent is known, so `Np` is the
//! expected number of involved partitions over a uniformly random
//! centroid — Equation 11, `Σ_p P{I(p, q) = 1}`, with each probability
//! given by the centroid-range volume ratio of Equation 12
//! ([`blot_geo::intersection_probability`]).
//!
//! `ScanRate` and `ExtraTime` are *measured*, not assumed: following
//! §V-B, the calibration runs map-only scan jobs over partition sets of
//! increasing size in the simulated environment, averages each set, and
//! fits a straight line by least squares. The fit quality (Figure 5) is
//! how the paper argues the model is usable; [`CostModel::calibrate_with`]
//! exposes the measured points so the benchmark harness can reproduce
//! that figure.

use blot_codec::{EncodingScheme, Layout, SchemeTable};
use blot_geo::{intersection_probability, Cuboid, QuerySize};
use blot_index::PartitioningScheme;
use blot_model::RecordBatch;
use blot_storage::scan::{run_scan, ScanTask};
use blot_storage::{Backend, EnvProfile, MemBackend, UnitKey};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::units::{Bytes, Millis, PartitionCount};

/// Fitted parameters of one encoding scheme in one environment: the
/// `1/ScanRate` slope (ms per record) and `ExtraTime` intercept (ms) of
/// Equation 6.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostParams {
    /// Simulated milliseconds to scan one record (`1/ScanRate`).
    pub ms_per_record: Millis,
    /// Fixed per-partition simulated milliseconds (`ExtraTime`).
    pub extra_ms: Millis,
}

/// One calibration measurement: the average simulated cost of scanning
/// partitions holding `records` records each (a point in Figure 5).
#[derive(Debug, Clone, Copy)]
pub struct MeasurePoint {
    /// Encoding scheme measured.
    pub scheme: EncodingScheme,
    /// Records per partition in this partition set.
    pub records: usize,
    /// Average simulated milliseconds per partition scan.
    pub avg_ms: f64,
}

/// Shape of a calibration run.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Partition sizes (records per partition), one partition set each.
    pub sizes: Vec<usize>,
    /// Partitions per set ("5 sets of partitions with each set
    /// containing 20 partitions", §V-B).
    pub partitions_per_set: usize,
}

impl CalibrationConfig {
    /// The paper's §V-B shape: 5 partition sets × 20 partitions.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            sizes: vec![2_000, 4_000, 8_000, 16_000, 32_000],
            partitions_per_set: 20,
        }
    }

    /// A fast shape for tests and doctests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            sizes: vec![400, 800, 1_600],
            partitions_per_set: 3,
        }
    }
}

/// Per-scheme calibration outcome: fitted cost parameters plus the
/// measured encoded bytes per record (drives `Storage(r)` estimates;
/// the ratio to `ROW-PLAIN` is Table I).
#[derive(Debug, Clone, Copy, Default)]
struct Calibration {
    params: CostParams,
    bytes_per_record: f64,
}

/// A calibrated cost model for one execution environment.
///
/// Calibration covers the full [`EncodingScheme::grid`] (every scheme a
/// storage-unit tag can decode to), so per-scheme lookups are total —
/// there is no "scheme not calibrated" panic path.
#[derive(Debug, Clone)]
pub struct CostModel {
    env_name: String,
    cal: SchemeTable<Calibration>,
}

/// One calibration probe: store an encoded partition, scan it, then
/// free it. The delete runs even when the scan fails so a bad probe
/// cannot leak its unit into later probes' memory footprint.
fn probe_scan(
    backend: &MemBackend,
    env: &EnvProfile,
    key: UnitKey,
    scheme: EncodingScheme,
    bytes: Vec<u8>,
) -> Result<blot_storage::scan::ScanReport, blot_storage::StorageError> {
    backend.put(key, bytes)?;
    let scan = run_scan(
        backend,
        env,
        &ScanTask {
            key,
            scheme,
            range: None,
        },
    );
    backend.delete(key)?;
    scan
}

/// Ordinary least squares for `y = slope·x + intercept`.
fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return (0.0, sy / n);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

impl CostModel {
    /// Calibrates every encoding scheme in `env` with the quick
    /// configuration. `seed` controls which sample slices become the
    /// measured partitions.
    ///
    /// Calibration stays deliberately serial even though the rest of
    /// the scan paths run on the shared [`ScanExecutor`] pool:
    /// calibration *times* encode/decode work, and running the timed
    /// probes concurrently would contend for cores and inflate the
    /// measured per-record latencies the whole cost model is fitted to.
    ///
    /// [`ScanExecutor`]: blot_storage::ScanExecutor
    #[must_use]
    pub fn calibrate(env: &EnvProfile, sample: &RecordBatch, seed: u64) -> Self {
        Self::calibrate_with(env, sample, &CalibrationConfig::quick(), seed).0
    }

    /// Full calibration: measures every scheme of the full grid over
    /// the given partition sets (§V-B) and returns both the fitted
    /// model and the raw measurement points (Figure 5).
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty or the configuration has fewer than
    /// two partition sizes.
    #[must_use]
    pub fn calibrate_with(
        env: &EnvProfile,
        sample: &RecordBatch,
        config: &CalibrationConfig,
        seed: u64,
    ) -> (Self, Vec<MeasurePoint>) {
        assert!(!sample.is_empty(), "cannot calibrate on an empty sample");
        assert!(config.sizes.len() >= 2, "need at least two partition sizes");
        let mut rng = SmallRng::seed_from_u64(seed);
        let backend = MemBackend::new();
        let mut points = Vec::new();

        let mut si = 0u32;
        let cal = SchemeTable::build(|scheme| {
            si += 1;
            let mut fit_points = Vec::with_capacity(config.sizes.len());
            let mut total_bytes = 0u64;
            let mut total_records = 0u64;
            // Warm-up scan: the first decode of a process pays for page
            // faults and allocator growth that a long-running cluster
            // never sees; keep it out of the measurements.
            {
                let len = config.sizes.first().copied().unwrap_or(0).min(sample.len());
                let mut part = RecordBatch::with_capacity(len);
                for i in 0..len {
                    part.push(sample.get(i));
                }
                let key = UnitKey {
                    // One replica id per scheme; `si` is a tiny counter.
                    replica: si,
                    partition: u32::MAX,
                };
                // audit: allow(result-discipline, warm-up probe — a failure only readmits the first-touch noise the probe exists to shed)
                let _ = probe_scan(&backend, env, key, scheme, scheme.encode(&part));
            }
            for (zi, &size) in config.sizes.iter().enumerate() {
                let mut set_samples = Vec::with_capacity(config.partitions_per_set);
                for pi in 0..config.partitions_per_set {
                    // A contiguous random slice keeps trajectory locality,
                    // like a real space-time partition.
                    let len = size.min(sample.len());
                    let start = rng.gen_range(0..=sample.len() - len);
                    let mut part = RecordBatch::with_capacity(len);
                    for i in start..start + len {
                        part.push(sample.get(i));
                    }
                    let key = UnitKey {
                        // Calibration sets are small; both ids fit u32.
                        replica: si,
                        partition: u32::try_from(zi * config.partitions_per_set + pi)
                            .unwrap_or(u32::MAX),
                    };
                    let bytes = scheme.encode(&part);
                    total_bytes += bytes.len() as u64;
                    total_records += len as u64;
                    // MemBackend cannot fail; should a probe ever error,
                    // drop the sample point instead of aborting — the
                    // median over the remaining points still fits.
                    match probe_scan(&backend, env, key, scheme, bytes) {
                        Ok(report) => set_samples.push(report.sim_ms),
                        Err(_) => continue,
                    }
                }
                // Median, not mean: a host CPU spike during one scan must
                // not drag the whole partition set's estimate (the
                // simulated cluster is assumed dedicated, the host is not).
                set_samples.sort_by(f64::total_cmp);
                let Some(&avg) = set_samples.get(set_samples.len() / 2) else {
                    continue;
                };
                #[allow(clippy::cast_precision_loss)]
                fit_points.push((size.min(sample.len()) as f64, avg));
                points.push(MeasurePoint {
                    scheme,
                    records: size.min(sample.len()),
                    avg_ms: avg,
                });
            }
            let (slope, intercept) = linear_fit(&fit_points);
            #[allow(clippy::cast_precision_loss)]
            Calibration {
                params: CostParams {
                    ms_per_record: Millis::new(slope.max(0.0)),
                    extra_ms: Millis::new(intercept.max(0.0)),
                },
                bytes_per_record: total_bytes as f64 / total_records as f64,
            }
        });
        (
            Self {
                env_name: env.name.to_owned(),
                cal,
            },
            points,
        )
    }

    /// Builds a model from explicit parameters instead of measurement —
    /// e.g. to plug in the paper's own Table II numbers, or fully
    /// deterministic values in tests. The tables are total over the
    /// scheme grid by construction.
    #[must_use]
    pub fn from_params(
        env_name: impl Into<String>,
        params: SchemeTable<CostParams>,
        bytes_per_record: SchemeTable<f64>,
    ) -> Self {
        Self {
            env_name: env_name.into(),
            cal: SchemeTable::build(|s| Calibration {
                params: *params.get(s),
                bytes_per_record: *bytes_per_record.get(s),
            }),
        }
    }

    /// Name of the environment this model was calibrated in.
    #[must_use]
    pub fn env_name(&self) -> &str {
        &self.env_name
    }

    /// Fitted parameters for `scheme`. Total: calibration covers the
    /// full scheme grid.
    #[must_use]
    pub fn params(&self, scheme: EncodingScheme) -> CostParams {
        self.cal.get(scheme).params
    }

    /// Measured encoded bytes per record for `scheme`. Total: calibration
    /// covers the full scheme grid.
    #[must_use]
    pub fn bytes_per_record(&self, scheme: EncodingScheme) -> f64 {
        self.cal.get(scheme).bytes_per_record
    }

    /// Compression ratio relative to the uncompressed row layout — the
    /// quantity Table I reports.
    #[must_use]
    pub fn compression_ratio(&self, scheme: EncodingScheme) -> f64 {
        let base = self.bytes_per_record(EncodingScheme::new(
            Layout::Row,
            blot_codec::Compression::Plain,
        ));
        self.bytes_per_record(scheme) / base
    }

    /// Estimated storage size of a replica over a dataset of
    /// `dataset_records` records (`Storage(r)`, Definition 5).
    #[must_use]
    pub fn replica_storage_bytes(&self, encoding: EncodingScheme, dataset_records: f64) -> Bytes {
        Bytes::new(self.bytes_per_record(encoding) * dataset_records)
    }

    /// Expected number of involved partitions for a grouped query
    /// (Equation 11): `Σ_p P{I(p, q) = 1}`.
    #[must_use]
    pub fn expected_involved(scheme: &PartitioningScheme, size: QuerySize) -> PartitionCount {
        let u = scheme.universe();
        PartitionCount::new(
            scheme
                .partitions()
                .iter()
                .map(|p| intersection_probability(&u, size, &p.range))
                .sum(),
        )
    }

    /// Equation 7 with a known involved-partition count.
    #[must_use]
    pub fn cost_with_np(
        &self,
        np: PartitionCount,
        total_partitions: usize,
        encoding: EncodingScheme,
        dataset_records: f64,
    ) -> Millis {
        let p = self.params(encoding);
        #[allow(clippy::cast_precision_loss)]
        let per_partition_records = dataset_records / total_partitions as f64;
        np.get() * (p.ms_per_record * per_partition_records + p.extra_ms)
    }

    /// Estimated cost of a *grouped* query on a replica (Equations 7 and
    /// 11 combined), for a dataset of `dataset_records` records.
    #[must_use]
    pub fn grouped_query_cost(
        &self,
        size: QuerySize,
        scheme: &PartitioningScheme,
        encoding: EncodingScheme,
        dataset_records: f64,
    ) -> Millis {
        let np = Self::expected_involved(scheme, size);
        self.cost_with_np(np, scheme.len(), encoding, dataset_records)
    }

    /// Estimated cost of a *concrete* query: `Np` is exact (partitioning
    /// index lookup), the rest is Equation 7.
    #[must_use]
    pub fn concrete_query_cost(
        &self,
        range: &Cuboid,
        scheme: &PartitioningScheme,
        encoding: EncodingScheme,
        dataset_records: f64,
    ) -> Millis {
        let np = PartitionCount::of(scheme.involved(range).len());
        self.cost_with_np(np, scheme.len(), encoding, dataset_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blot_codec::Compression;
    use blot_index::SchemeSpec;
    use blot_tracegen::FleetConfig;

    fn sample() -> RecordBatch {
        let mut c = FleetConfig::small();
        c.num_taxis = 60;
        c.records_per_taxi = 200;
        c.generate()
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=5)
            .map(|i| (f64::from(i), 3.0 * f64::from(i) + 7.0))
            .collect();
        let (slope, intercept) = linear_fit(&pts);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_orderings_match_table_two() {
        let s = sample();
        let env = EnvProfile::local_cluster();
        let model = CostModel::calibrate(&env, &s, 1);
        let row = |c| model.params(EncodingScheme::new(Layout::Row, c));
        // Heavier compression ⇒ slower scan (Table II's 1/ScanRate grows
        // from PLAIN to LZMA within the row family).
        assert!(
            row(Compression::Lzr).ms_per_record > row(Compression::Plain).ms_per_record,
            "LZMA-class decode must cost more per record than plain"
        );
        // Compression ratios: PLAIN(1) > LZF > DEFLATE > LZR (Table I).
        let r = |c| model.compression_ratio(EncodingScheme::new(Layout::Row, c));
        assert!((r(Compression::Plain) - 1.0).abs() < 1e-9);
        assert!(r(Compression::Lzf) < 1.0);
        assert!(r(Compression::Deflate) < r(Compression::Lzf));
        assert!(r(Compression::Lzr) <= r(Compression::Deflate) * 1.1);
        // Column layouts beat rows under every codec.
        for c in [Compression::Lzf, Compression::Deflate, Compression::Lzr] {
            assert!(
                model.compression_ratio(EncodingScheme::new(Layout::Column, c))
                    < model.compression_ratio(EncodingScheme::new(Layout::Row, c))
            );
        }
    }

    #[test]
    fn cloud_extra_time_exceeds_local() {
        let s = sample();
        let local = CostModel::calibrate(&EnvProfile::local_cluster(), &s, 2);
        let cloud = CostModel::calibrate(&EnvProfile::cloud_object_store(), &s, 2);
        let scheme = EncodingScheme::new(Layout::Row, Compression::Plain);
        assert!(cloud.params(scheme).extra_ms > 3.0 * local.params(scheme).extra_ms);
    }

    #[test]
    fn expected_involved_matches_exact_counting_on_average() {
        let s = sample();
        let config = FleetConfig::small();
        let universe = config.universe();
        let scheme = PartitioningScheme::build(&s, universe, SchemeSpec::new(16, 4));
        let size = QuerySize::new(0.4, 0.4, universe.extent(2) / 8.0);
        let analytic = CostModel::expected_involved(&scheme, size).get();
        // Monte-Carlo over a grid of centroid positions.
        let q = crate::query::GroupedQuery::new(size);
        let mut total = 0usize;
        let n = 9 * 9 * 9;
        for ix in 0..9 {
            for iy in 0..9 {
                for it in 0..9 {
                    let range = q.at(
                        &universe,
                        f64::from(ix) / 8.0,
                        f64::from(iy) / 8.0,
                        f64::from(it) / 8.0,
                    );
                    total += scheme.involved(&range).len();
                }
            }
        }
        let empirical = total as f64 / f64::from(n);
        let rel = (analytic - empirical).abs() / empirical;
        assert!(
            rel < 0.15,
            "Eq. 11 estimate {analytic:.2} vs empirical {empirical:.2}"
        );
    }

    #[test]
    fn grouped_cost_scales_linearly_with_dataset_size() {
        let s = sample();
        let universe = FleetConfig::small().universe();
        let scheme = PartitioningScheme::build(&s, universe, SchemeSpec::new(16, 4));
        let model = CostModel::calibrate(&EnvProfile::local_cluster(), &s, 3);
        let enc = EncodingScheme::new(Layout::Row, Compression::Lzf);
        let size = QuerySize::new(0.5, 0.5, 2000.0);
        let c1 = model.grouped_query_cost(size, &scheme, enc, 1e6);
        let c10 = model.grouped_query_cost(size, &scheme, enc, 1e7);
        // Scan share grows 10×, extra share constant: c10 < 10·c1 but
        // c10 > c1.
        assert!(c10 > c1);
        assert!(c10 < 10.0 * c1);
    }

    #[test]
    fn finer_partitioning_helps_small_queries_hurts_large() {
        // The trade-off motivating diverse replicas (Figure 2).
        let s = sample();
        let universe = FleetConfig::small().universe();
        let coarse = PartitioningScheme::build(&s, universe, SchemeSpec::new(4, 2));
        let fine = PartitioningScheme::build(&s, universe, SchemeSpec::new(64, 16));
        // Synthetic parameters keep the test deterministic under host
        // load; the trade-off is a property of the Equation 7 arithmetic,
        // not of measurement.
        let params = SchemeTable::build(|_| CostParams {
            ms_per_record: Millis::new(6e-3),
            extra_ms: Millis::new(5200.0),
        });
        let bpr = SchemeTable::build(|_| 38.0);
        let model = CostModel::from_params("synthetic-local", params, bpr);
        let enc = EncodingScheme::new(Layout::Row, Compression::Plain);
        let records = 6.5e7;
        let tiny = QuerySize::new(0.02, 0.02, 500.0);
        let huge = QuerySize::new(
            universe.extent(0) * 0.9,
            universe.extent(1) * 0.9,
            universe.extent(2) * 0.9,
        );
        assert!(
            model.grouped_query_cost(tiny, &fine, enc, records)
                < model.grouped_query_cost(tiny, &coarse, enc, records),
            "fine partitioning must win on tiny queries"
        );
        assert!(
            model.grouped_query_cost(huge, &coarse, enc, records)
                < model.grouped_query_cost(huge, &fine, enc, records),
            "coarse partitioning must win on huge queries"
        );
    }

    #[test]
    fn concrete_cost_uses_exact_involvement() {
        let s = sample();
        let universe = FleetConfig::small().universe();
        let scheme = PartitioningScheme::build(&s, universe, SchemeSpec::new(16, 4));
        let model = CostModel::calibrate(&EnvProfile::local_cluster(), &s, 5);
        let enc = EncodingScheme::new(Layout::Row, Compression::Plain);
        let whole = model.concrete_query_cost(&universe, &scheme, enc, 1e6);
        let np_all = PartitionCount::of(scheme.len());
        let expect = model.cost_with_np(np_all, scheme.len(), enc, 1e6);
        assert!((whole.get() - expect.get()).abs() < 1e-9);
    }
}
