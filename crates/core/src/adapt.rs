//! Adaptive reconfiguration from historical queries.
//!
//! §II-E of the paper: "Most existing BLOT systems can adaptively
//! optimize the configuration of the physical storage organization …
//! based on analyzing the historical queries", and §III-C1 derives the
//! input workload from the query log ("if we directly use all
//! historical queries recorded in the query log…"). This module closes
//! that loop for the diverse-replica store:
//!
//! 1. [`QueryLog`] records the range of every executed query (a bounded
//!    ring, so a long-running store does not grow without bound);
//! 2. [`QueryLog::derive_workload`] compresses the log into grouped
//!    queries via k-means over range sizes (§III-C1);
//! 3. [`recommend`] estimates the cost matrix over a candidate grid,
//!    runs greedy or exact selection under the budget, and diffs the
//!    result against the currently-built replicas into a migration
//!    plan (which replicas to build, which to drop).

use blot_geo::{Cuboid, QuerySize};
use blot_mip::MipSolver;
use blot_model::RecordBatch;
use std::collections::VecDeque;

use crate::cost::CostModel;
use crate::query::Workload;
use crate::replica::ReplicaConfig;
use crate::select::{kmeans_group, select_greedy, select_mip, CostMatrix, Selection};
use crate::units::Bytes;
use crate::CoreError;

/// A bounded log of executed query ranges.
#[derive(Debug, Clone)]
pub struct QueryLog {
    sizes: VecDeque<QuerySize>,
    capacity: usize,
}

impl QueryLog {
    /// Creates a log keeping the most recent `capacity` queries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be positive");
        Self {
            sizes: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records one executed query's range.
    pub fn observe(&mut self, range: &Cuboid) {
        if self.sizes.len() == self.capacity {
            self.sizes.pop_front();
        }
        self.sizes.push_back(range.size());
    }

    /// Number of logged queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Compresses the log into at most `k` grouped queries weighted by
    /// frequency (§III-C1's k-means reduction).
    #[must_use]
    pub fn derive_workload(&self, k: usize, seed: u64) -> Workload {
        let sizes: Vec<QuerySize> = self.sizes.iter().copied().collect();
        kmeans_group(&sizes, k, seed)
    }
}

/// Which selection algorithm the advisor runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Algorithm 1 — fast, near-optimal at generous budgets.
    Greedy,
    /// Exact 0-1 MIP (warm-started by greedy).
    Exact,
}

/// The advisor's output: the chosen set and the migration diff against
/// what is currently built.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The chosen candidate configurations.
    pub configs: Vec<ReplicaConfig>,
    /// Chosen but not currently built — build these.
    pub to_build: Vec<ReplicaConfig>,
    /// Built but not chosen — drop these to free budget.
    pub to_drop: Vec<ReplicaConfig>,
    /// Estimated workload cost of the recommended set.
    pub recommended_cost: f64,
    /// Estimated workload cost of the current set (∞ if nothing built
    /// or the current set cannot answer the workload).
    pub current_cost: f64,
    /// The raw selection (storage use, solver stats).
    pub selection: Selection,
}

impl Recommendation {
    /// Relative improvement of the recommendation over the current set
    /// (0 when the current set is already optimal; 1 means "infinitely
    /// better", i.e. nothing was built).
    #[must_use]
    pub fn improvement(&self) -> f64 {
        if !self.current_cost.is_finite() {
            return 1.0;
        }
        if self.current_cost <= 0.0 {
            return 0.0;
        }
        (1.0 - self.recommended_cost / self.current_cost).max(0.0)
    }
}

/// Runs the §III pipeline over a derived workload and diffs against the
/// current replica set.
///
/// `current` lists the configurations of the replicas that exist today;
/// they are automatically included as candidates so "keep what we have"
/// is always expressible.
///
/// # Errors
///
/// Propagates [`CoreError::Mip`] from the exact strategy.
#[allow(clippy::too_many_arguments)]
pub fn recommend(
    model: &CostModel,
    workload: &Workload,
    candidates: &[ReplicaConfig],
    current: &[ReplicaConfig],
    sample: &RecordBatch,
    universe: Cuboid,
    dataset_records: f64,
    budget: Bytes,
    strategy: Strategy,
) -> Result<Recommendation, CoreError> {
    let mut all: Vec<ReplicaConfig> = candidates.to_vec();
    for c in current {
        if !all.contains(c) {
            all.push(*c);
        }
    }
    let matrix =
        CostMatrix::estimate_scaled(model, workload, &all, sample, universe, dataset_records);
    let selection = match strategy {
        Strategy::Greedy => select_greedy(&matrix, budget),
        Strategy::Exact => select_mip(&matrix, budget, &MipSolver::default())?,
    };
    let configs: Vec<ReplicaConfig> = selection
        .chosen
        .iter()
        .filter_map(|&j| all.get(j).copied())
        .collect();
    let to_build: Vec<ReplicaConfig> = configs
        .iter()
        .copied()
        .filter(|c| !current.contains(c))
        .collect();
    let to_drop: Vec<ReplicaConfig> = current
        .iter()
        .copied()
        .filter(|c| !configs.contains(c))
        .collect();
    let current_idx: Vec<usize> = all
        .iter()
        .enumerate()
        .filter(|(_, c)| current.contains(c))
        .map(|(j, _)| j)
        .collect();
    let current_cost = matrix.workload_cost(&current_idx);
    Ok(Recommendation {
        recommended_cost: selection.workload_cost,
        current_cost,
        configs,
        to_build,
        to_drop,
        selection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blot_codec::SchemeTable;
    use blot_codec::{Compression, EncodingScheme, Layout};
    use blot_geo::Point;
    use blot_index::SchemeSpec;
    use blot_tracegen::FleetConfig;

    use crate::units::Millis;

    fn synthetic_model() -> CostModel {
        let params = SchemeTable::build(|_| crate::cost::CostParams {
            ms_per_record: Millis::new(1e-3),
            extra_ms: Millis::new(100.0),
        });
        let bpr = SchemeTable::build(|_| 38.0);
        CostModel::from_params("synthetic", params, bpr)
    }

    #[test]
    fn log_is_bounded_and_derives_grouped_workload() {
        let mut log = QueryLog::new(100);
        let u = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 10.0, 10.0));
        for i in 0..250 {
            let size = if i % 5 == 0 {
                QuerySize::new(4.0, 4.0, 4.0)
            } else {
                QuerySize::new(0.5, 0.5, 0.5)
            };
            log.observe(&Cuboid::from_centroid(u.centroid(), size));
        }
        assert_eq!(log.len(), 100);
        let w = log.derive_workload(2, 7);
        assert_eq!(w.len(), 2);
        let total: f64 = w.entries().iter().map(|&(_, wt)| wt).sum();
        assert!((total - 100.0).abs() < 1e-9);
        // The frequent small shape carries ~4/5 of the weight.
        let small = w
            .entries()
            .iter()
            .find(|(q, _)| q.size.w < 1.0)
            .expect("small cluster");
        assert!(small.1 >= 75.0);
    }

    #[test]
    fn recommendation_diffs_against_current_set() {
        let mut fleet = FleetConfig::small();
        fleet.num_taxis = 60;
        fleet.records_per_taxi = 120;
        let sample = fleet.generate();
        let universe = fleet.universe();
        let model = synthetic_model();

        // A log dominated by tiny queries.
        let mut log = QueryLog::new(500);
        for i in 0..200 {
            let f = 0.02 + 0.001 * f64::from(i % 7);
            log.observe(&Cuboid::from_centroid(
                universe.centroid(),
                QuerySize::new(f, f, universe.extent(2) / 64.0),
            ));
        }
        let workload = log.derive_workload(3, 1);

        let candidates = ReplicaConfig::grid(
            &[SchemeSpec::new(4, 2), SchemeSpec::new(64, 16)],
            &[
                EncodingScheme::new(Layout::Row, Compression::Plain),
                EncodingScheme::new(Layout::Row, Compression::Lzf),
            ],
        );
        // Currently built: one coarse replica — wrong for tiny queries.
        let current = vec![ReplicaConfig::new(
            SchemeSpec::new(4, 2),
            EncodingScheme::new(Layout::Row, Compression::Plain),
        )];
        let budget = Bytes::new(38.0 * 65e6 * 2.5); // room for ~2.5 plain replicas
        let rec = recommend(
            &model,
            &workload,
            &candidates,
            &current,
            &sample,
            universe,
            65e6,
            budget,
            Strategy::Exact,
        )
        .expect("recommend");
        // The advisor must want a fine replica for the tiny-query log.
        assert!(
            rec.configs
                .iter()
                .any(|c| c.spec == SchemeSpec::new(64, 16)),
            "expected a fine-grained replica in {:?}",
            rec.configs
        );
        assert!(rec.recommended_cost <= rec.current_cost);
        assert!(
            rec.improvement() > 0.0,
            "coarse-only current set must be improvable"
        );
        // Diff consistency: configs = (current − to_drop) ∪ to_build.
        for c in &rec.to_build {
            assert!(rec.configs.contains(c) && !current.contains(c));
        }
        for c in &rec.to_drop {
            assert!(!rec.configs.contains(c) && current.contains(c));
        }
    }

    #[test]
    fn empty_current_set_is_infinitely_improvable() {
        let mut fleet = FleetConfig::small();
        fleet.num_taxis = 40;
        fleet.records_per_taxi = 80;
        let sample = fleet.generate();
        let universe = fleet.universe();
        let model = synthetic_model();
        let mut log = QueryLog::new(10);
        log.observe(&universe);
        let workload = log.derive_workload(1, 1);
        let candidates = vec![ReplicaConfig::new(
            SchemeSpec::new(4, 2),
            EncodingScheme::new(Layout::Row, Compression::Plain),
        )];
        let rec = recommend(
            &model,
            &workload,
            &candidates,
            &[],
            &sample,
            universe,
            1e6,
            Bytes::new(1e12),
            Strategy::Greedy,
        )
        .expect("recommend");
        assert_eq!(rec.improvement(), 1.0);
        assert_eq!(rec.to_build.len(), 1);
        assert!(rec.to_drop.is_empty());
    }
}
