//! The replica selection problem (§III): exact MIP, greedy, and
//! input-size reduction.
//!
//! Given the estimated cost of every workload query on every candidate
//! replica and each candidate's storage size, find `R* ⊆ R_C` with
//! `Storage(R*) ≤ b` minimising
//! `Cost(W, R) = Σᵢ wᵢ · min_{r ∈ R} Cost(qᵢ, r)` — proven at least
//! NP-complete by reduction from set covering (Theorem 1).

// audit: allow-file(indexing, dense cost-matrix/clustering loops index within dimensions fixed at construction)
#![allow(clippy::indexing_slicing)]

use blot_geo::QuerySize;
use blot_index::PartitioningScheme;
use blot_mip::{MipSolver, Problem, Relation, SolveStats};
use blot_model::RecordBatch;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::cost::CostModel;
use crate::query::Workload;
use crate::replica::ReplicaConfig;
use crate::units::{Bytes, PartitionCount};
use crate::CoreError;

/// The input of the selection problem: `Cost(qᵢ, rⱼ)` for every workload
/// query and candidate replica, plus per-candidate storage sizes.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    /// `costs[i][j]` — estimated cost (simulated ms) of query `i` on
    /// candidate `j`.
    pub costs: Vec<Vec<f64>>,
    /// Query weights `wᵢ`.
    pub weights: Vec<f64>,
    /// `Storage(rⱼ)`.
    pub storage: Vec<Bytes>,
}

impl CostMatrix {
    /// Builds the matrix from a calibrated cost model, with the dataset
    /// size taken from the sample itself.
    #[must_use]
    pub fn estimate(
        model: &CostModel,
        workload: &Workload,
        candidates: &[ReplicaConfig],
        sample: &RecordBatch,
        universe: blot_geo::Cuboid,
    ) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let records = sample.len() as f64;
        Self::estimate_scaled(model, workload, candidates, sample, universe, records)
    }

    /// Builds the matrix for a dataset of `dataset_records` records
    /// whose distribution matches `sample` — the analytic scaling the
    /// paper uses for the Figure 6 data-size sweep ("we only need a
    /// small portion of the data to build the cost model and select
    /// diverse replicas for the whole dataset").
    #[must_use]
    pub fn estimate_scaled(
        model: &CostModel,
        workload: &Workload,
        candidates: &[ReplicaConfig],
        sample: &RecordBatch,
        universe: blot_geo::Cuboid,
        dataset_records: f64,
    ) -> Self {
        // Partitioning schemes and expected involvement depend only on
        // the spec, not the encoding: build and evaluate each spec once.
        let mut schemes: HashMap<blot_index::SchemeSpec, PartitioningScheme> = HashMap::new();
        for c in candidates {
            schemes
                .entry(c.spec)
                .or_insert_with(|| PartitioningScheme::build(sample, universe, c.spec));
        }
        let mut np: HashMap<(usize, blot_index::SchemeSpec), PartitionCount> = HashMap::new();
        for (i, (q, _)) in workload.entries().iter().enumerate() {
            for (&spec, scheme) in &schemes {
                np.insert((i, spec), CostModel::expected_involved(scheme, q.size));
            }
        }
        let costs = workload
            .entries()
            .iter()
            .enumerate()
            .map(|(i, _)| {
                candidates
                    .iter()
                    .map(|c| {
                        model
                            .cost_with_np(
                                np[&(i, c.spec)],
                                schemes[&c.spec].len(),
                                c.encoding,
                                dataset_records,
                            )
                            .get()
                    })
                    .collect()
            })
            .collect();
        let storage = candidates
            .iter()
            .map(|c| model.replica_storage_bytes(c.encoding, dataset_records))
            .collect();
        let weights = workload.entries().iter().map(|&(_, w)| w).collect();
        Self {
            costs,
            weights,
            storage,
        }
    }

    /// [`estimate_scaled`](Self::estimate_scaled), with the per-query
    /// work — expected partition involvement and the cost row over all
    /// candidates — fanned out over a shared [`ScanExecutor`] pool. The
    /// resulting matrix is bit-for-bit identical to the serial path
    /// (each query's row is computed by the same code on one worker and
    /// rows are reassembled in query order).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Storage`] only if a pool worker panics.
    pub fn estimate_scaled_on(
        pool: &blot_storage::ScanExecutor,
        model: &CostModel,
        workload: &Workload,
        candidates: &[ReplicaConfig],
        sample: &RecordBatch,
        universe: blot_geo::Cuboid,
        dataset_records: f64,
    ) -> Result<Self, CoreError> {
        use std::sync::Arc;
        let mut schemes: HashMap<blot_index::SchemeSpec, PartitioningScheme> = HashMap::new();
        for c in candidates {
            schemes
                .entry(c.spec)
                .or_insert_with(|| PartitioningScheme::build(sample, universe, c.spec));
        }
        let schemes = Arc::new(schemes);
        let model = Arc::new(model.clone());
        let candidates_arc: Arc<Vec<ReplicaConfig>> = Arc::new(candidates.to_vec());
        let rows: Vec<_> = workload
            .entries()
            .iter()
            .map(|&(q, _)| {
                let schemes = Arc::clone(&schemes);
                let model = Arc::clone(&model);
                let cands = Arc::clone(&candidates_arc);
                move || {
                    let np: HashMap<blot_index::SchemeSpec, PartitionCount> = schemes
                        .iter()
                        .map(|(&spec, scheme)| (spec, CostModel::expected_involved(scheme, q.size)))
                        .collect();
                    Ok(cands
                        .iter()
                        .map(|c| {
                            model
                                .cost_with_np(
                                    np[&c.spec],
                                    schemes[&c.spec].len(),
                                    c.encoding,
                                    dataset_records,
                                )
                                .get()
                        })
                        .collect::<Vec<f64>>())
                }
            })
            .collect();
        let costs = pool.execute_all(rows)?;
        let storage = candidates
            .iter()
            .map(|c| model.replica_storage_bytes(c.encoding, dataset_records))
            .collect();
        let weights = workload.entries().iter().map(|&(_, w)| w).collect();
        Ok(Self {
            costs,
            weights,
            storage,
        })
    }

    /// Number of workload queries `n`.
    #[must_use]
    pub fn n_queries(&self) -> usize {
        self.costs.len()
    }

    /// Number of candidate replicas `m`.
    #[must_use]
    pub fn n_candidates(&self) -> usize {
        self.storage.len()
    }

    /// `Cost(W, R)` for a chosen index set (Definition 7). The empty set
    /// costs `+∞`.
    #[must_use]
    pub fn workload_cost(&self, chosen: &[usize]) -> f64 {
        if chosen.is_empty() {
            return f64::INFINITY;
        }
        self.costs
            .iter()
            .zip(&self.weights)
            .map(|(row, w)| w * chosen.iter().map(|&j| row[j]).fold(f64::INFINITY, f64::min))
            .sum()
    }

    /// Total storage of a chosen index set.
    #[must_use]
    pub fn storage_of(&self, chosen: &[usize]) -> Bytes {
        chosen.iter().map(|&j| self.storage[j]).sum()
    }

    /// The single replica with the lowest workload cost, ignoring any
    /// budget — the paper's "Single" baseline configuration.
    ///
    /// An empty matrix yields `(0, f64::INFINITY)`.
    #[must_use]
    pub fn optimal_single(&self) -> (usize, f64) {
        (0..self.n_candidates())
            .map(|j| (j, self.workload_cost(&[j])))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, f64::INFINITY))
    }

    /// Smallest single-candidate storage (useful for sizing budgets in
    /// examples). An empty matrix yields `+∞` bytes.
    #[must_use]
    pub fn cheapest_storage(&self) -> Bytes {
        self.storage
            .iter()
            .copied()
            .fold(Bytes::new(f64::INFINITY), Bytes::min)
    }
}

/// A selection outcome.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Indices of chosen candidates.
    pub chosen: Vec<usize>,
    /// `Cost(W, R)` of the chosen set.
    pub workload_cost: f64,
    /// `Storage(R)` of the chosen set.
    pub storage: Bytes,
    /// Whether this set is provably optimal for its matrix and budget
    /// (`true` only on the exact path with a closed search tree).
    pub proven_optimal: bool,
    /// Solver statistics when the MIP path produced this selection.
    pub stats: Option<SolveStats>,
}

/// `Cost(W, R_C)` with every candidate available — the unbeatable
/// "Ideal" line of Figures 4 and 6 (equivalent to an unlimited budget).
#[must_use]
pub fn ideal_cost(matrix: &CostMatrix) -> f64 {
    let all: Vec<usize> = (0..matrix.n_candidates()).collect();
    matrix.workload_cost(&all)
}

/// The paper's "Single" baseline: the best single replica that fits the
/// budget (the remaining budget is assumed to be spent on exact copies
/// for fault tolerance, which do not change query cost).
#[must_use]
pub fn select_single(matrix: &CostMatrix, budget: Bytes) -> Selection {
    let best = (0..matrix.n_candidates())
        .filter(|&j| matrix.storage[j] <= budget)
        .map(|j| (j, matrix.workload_cost(&[j])))
        .min_by(|a, b| a.1.total_cmp(&b.1));
    match best {
        Some((j, cost)) => Selection {
            chosen: vec![j],
            workload_cost: cost,
            storage: matrix.storage[j],
            proven_optimal: false,
            stats: None,
        },
        None => Selection {
            chosen: Vec::new(),
            workload_cost: f64::INFINITY,
            storage: Bytes::ZERO,
            proven_optimal: false,
            stats: None,
        },
    }
}

/// Work counters for a greedy run, used to demonstrate (and test) the
/// lazy evaluation's advantage over the naive loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyStats {
    /// Times the full `Σᵢ wᵢ·(best − cost)⁺` marginal gain was computed
    /// for some candidate.
    pub gain_evaluations: usize,
}

/// The marginal gain of adding candidate `j` given the per-query best
/// costs so far. Shared by the lazy and reference greedy so both
/// evaluate bit-for-bit identical floats.
fn gain_of(matrix: &CostMatrix, best_cost: &[f64], j: usize) -> f64 {
    best_cost
        .iter()
        .enumerate()
        .map(|(i, &bc)| matrix.weights[i] * (bc - matrix.costs[i][j]).max(0.0))
        .sum()
}

/// The finite empty-set convention: `best_cost[i]` seeded with the worst
/// candidate per query, so the first pick maximises improvement per byte
/// exactly like later picks (the paper leaves `Cost(W, ∅)` implicit).
fn seed_best_cost(matrix: &CostMatrix) -> Vec<f64> {
    (0..matrix.n_queries())
        .map(|i| {
            matrix.costs[i]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect()
}

/// Wraps up a finished greedy run (either implementation).
fn finish_greedy(matrix: &CostMatrix, budget: Bytes, chosen: Vec<usize>, used: Bytes) -> Selection {
    if chosen.is_empty() {
        // The finite empty-set convention yields zero gain when every
        // candidate is equally good (e.g. a single candidate): fall back
        // to the best affordable single replica, which is what Algorithm
        // 1 with Cost(W, ∅) = +∞ would have picked first.
        return select_single(matrix, budget);
    }
    let workload_cost = matrix.workload_cost(&chosen);
    Selection {
        chosen,
        workload_cost,
        storage: used,
        proven_optimal: false,
        stats: None,
    }
}

/// A lazy-greedy heap entry: a candidate with the score it had when it
/// was last evaluated (`round` identifies that evaluation). Ordered so
/// the max-heap pops the highest score first and, among equal scores,
/// the lowest candidate index — matching the naive loop's first-maximum
/// tie-break.
#[derive(Debug)]
struct CelfEntry {
    score: f64,
    round: usize,
    j: usize,
}

impl PartialEq for CelfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for CelfEntry {}
impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.j.cmp(&self.j))
    }
}

/// Algorithm 1: greedily add the replica maximising
/// `(Cost(W, R) − Cost(W, R ∪ {r})) / Storage(r)` until the budget is
/// exhausted or no candidate improves the cost.
///
/// Implemented as **lazy greedy** (CELF — Leskovec et al., KDD 2007):
/// the workload-cost improvement is monotone non-increasing in the
/// chosen set (adding replicas only lowers `best_cost`), so a
/// candidate's score from an earlier round is a valid *upper bound* on
/// its current score. Candidates sit in a max-heap keyed by these stale
/// bounds; a popped entry is re-evaluated only if stale, and a stale
/// entry that still tops the heap after re-evaluation is the true
/// argmax. Selections are bit-for-bit identical to the naive
/// full-rescan loop (see [`select_greedy_reference`], property-tested),
/// with far fewer gain evaluations.
#[must_use]
pub fn select_greedy(matrix: &CostMatrix, budget: Bytes) -> Selection {
    select_greedy_with_stats(matrix, budget).0
}

/// [`select_greedy`] with its work counters.
#[must_use]
pub fn select_greedy_with_stats(matrix: &CostMatrix, budget: Bytes) -> (Selection, GreedyStats) {
    let mut stats = GreedyStats::default();
    let mut best_cost = seed_best_cost(matrix);
    let mut chosen: Vec<usize> = Vec::new();
    let mut used = Bytes::ZERO;
    let mut heap: std::collections::BinaryHeap<CelfEntry> = std::collections::BinaryHeap::new();

    if used < budget {
        for j in 0..matrix.n_candidates() {
            if used + matrix.storage[j] > budget {
                continue; // the budget only shrinks: never affordable
            }
            stats.gain_evaluations += 1;
            let gain = gain_of(matrix, &best_cost, j);
            if gain <= 0.0 {
                continue; // gains only shrink: never selectable
            }
            heap.push(CelfEntry {
                score: gain / matrix.storage[j].get(),
                round: 0,
                j,
            });
        }
    }

    let mut round = 0usize;
    while used < budget {
        let Some(entry) = heap.pop() else {
            break;
        };
        if used + matrix.storage[entry.j] > budget {
            continue; // permanently discard: `used` never decreases
        }
        if entry.round != round {
            // Stale upper bound: refresh and re-insert. If it still
            // surfaces first, it is the true maximum.
            stats.gain_evaluations += 1;
            let gain = gain_of(matrix, &best_cost, entry.j);
            if gain <= 0.0 {
                continue; // monotone: this candidate is dead for good
            }
            heap.push(CelfEntry {
                score: gain / matrix.storage[entry.j].get(),
                round,
                j: entry.j,
            });
            continue;
        }
        // Fresh entry on top: every other candidate's true score is
        // bounded by its (stale or fresh) key ≤ this score — select it.
        for (i, bc) in best_cost.iter_mut().enumerate() {
            *bc = bc.min(matrix.costs[i][entry.j]);
        }
        used += matrix.storage[entry.j];
        chosen.push(entry.j);
        round += 1;
    }
    (finish_greedy(matrix, budget, chosen, used), stats)
}

/// The naive full-rescan implementation of Algorithm 1: every round
/// re-evaluates the gain of every remaining affordable candidate.
/// Retained as the oracle the lazy implementation is property-tested
/// against; prefer [`select_greedy`].
#[must_use]
pub fn select_greedy_reference(matrix: &CostMatrix, budget: Bytes) -> Selection {
    select_greedy_reference_with_stats(matrix, budget).0
}

/// [`select_greedy_reference`] with its work counters.
#[must_use]
pub fn select_greedy_reference_with_stats(
    matrix: &CostMatrix,
    budget: Bytes,
) -> (Selection, GreedyStats) {
    let mut stats = GreedyStats::default();
    let mut best_cost = seed_best_cost(matrix);
    let mut chosen: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = (0..matrix.n_candidates()).collect();
    let mut used = Bytes::ZERO;

    while used < budget {
        let mut best: Option<(usize, f64)> = None; // (candidate, score)
        for &j in &remaining {
            if used + matrix.storage[j] > budget {
                continue;
            }
            stats.gain_evaluations += 1;
            let gain = gain_of(matrix, &best_cost, j);
            if gain <= 0.0 {
                continue;
            }
            let score = gain / matrix.storage[j].get();
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((j, score));
            }
        }
        let Some((j, _)) = best else {
            break;
        };
        for (i, bc) in best_cost.iter_mut().enumerate() {
            *bc = bc.min(matrix.costs[i][j]);
        }
        used += matrix.storage[j];
        chosen.push(j);
        remaining.retain(|&r| r != j);
    }
    (finish_greedy(matrix, budget, chosen, used), stats)
}

/// Builds the 0-1 MIP of Equations 1–5 for a selection instance.
///
/// Variable layout: `x_j = j` for `j < m`, then `y_ij = m + i·m + j`.
/// Costs are normalised by their maximum and storage by the budget for
/// simplex conditioning; the optimal *set* is unaffected.
#[must_use]
pub fn build_selection_problem(matrix: &CostMatrix, budget: Bytes) -> Problem {
    let n = matrix.n_queries();
    let m = matrix.n_candidates();
    let num_vars = m + n * m;
    let mut p = Problem::new(num_vars);

    let max_cost = matrix
        .costs
        .iter()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut objective = vec![0.0; num_vars];
    for i in 0..n {
        for j in 0..m {
            objective[m + i * m + j] = matrix.weights[i] * matrix.costs[i][j] / max_cost;
        }
    }
    p.set_objective(&objective);

    // Eq. 1: storage budget (normalised to dimensionless ratios).
    let budget_scale = if budget > Bytes::ZERO {
        budget
    } else {
        Bytes::new(1.0)
    };
    let storage_row: Vec<(usize, f64)> = (0..m)
        .map(|j| (j, matrix.storage[j] / budget_scale))
        .collect();
    p.add_constraint(&storage_row, Relation::Le, budget / budget_scale);

    // Eq. 2: each query processed on exactly one replica.
    for i in 0..n {
        let row: Vec<(usize, f64)> = (0..m).map(|j| (m + i * m + j, 1.0)).collect();
        p.add_constraint(&row, Relation::Eq, 1.0);
    }

    // Eq. 4: Σ_i y_ij ≤ n · x_j (the paper's m-row relaxation of Eq. 3).
    #[allow(clippy::cast_precision_loss)]
    for j in 0..m {
        let mut row: Vec<(usize, f64)> = (0..n).map(|i| (m + i * m + j, 1.0)).collect();
        row.push((j, -(n as f64)));
        p.add_constraint(&row, Relation::Le, 0.0);
    }

    for j in 0..m {
        p.mark_binary(j);
    }
    p
}

/// The exact solution (§III-B): the 0-1 MIP of Equations 1–5 solved by
/// branch & bound.
///
/// Variables: `x_j` (replica chosen, binary) and `y_ij` (query `i`
/// answered on replica `j`, continuous — integral at any optimum).
/// Constraints: `Σ storage_j x_j ≤ b` (Eq. 1), `Σ_j y_ij = 1` (Eq. 2),
/// and the aggregated linking rows `Σ_i y_ij ≤ n·x_j` (Eq. 4, the
/// paper's m-row relaxation of the n×m rows of Eq. 3).
///
/// # Errors
///
/// [`CoreError::Mip`] when no candidate subset fits the budget or the
/// node budget of `solver` is exhausted.
pub fn select_mip(
    matrix: &CostMatrix,
    budget: Bytes,
    solver: &MipSolver,
) -> Result<Selection, CoreError> {
    let n = matrix.n_queries();
    let m = matrix.n_candidates();
    let p = build_selection_problem(matrix, budget);
    let num_vars = p.num_vars();

    // Warm-start from the greedy solution: a feasible incumbent lets
    // branch & bound prune aggressively from the first node.
    let greedy = select_greedy(matrix, budget);
    let seed = if greedy.chosen.is_empty() {
        None
    } else {
        let mut values = vec![0.0; num_vars];
        for &j in &greedy.chosen {
            values[j] = 1.0;
        }
        for i in 0..n {
            // `chosen` is non-empty on this branch, so the minimum
            // exists; a missing entry would only weaken the warm start.
            let Some(best) = greedy
                .chosen
                .iter()
                .copied()
                .min_by(|&a, &b| matrix.costs[i][a].total_cmp(&matrix.costs[i][b]))
            else {
                continue;
            };
            values[m + i * m + best] = 1.0;
        }
        Some(values)
    };

    let sol = solver.solve_seeded(&p, seed.as_deref())?;
    let chosen: Vec<usize> = (0..m).filter(|&j| sol.values[j] > 0.5).collect();
    // Report the true (unnormalised) workload cost of the chosen set.
    let workload_cost = matrix.workload_cost(&chosen);
    Ok(Selection {
        storage: matrix.storage_of(&chosen),
        chosen,
        workload_cost,
        proven_optimal: sol.proven_optimal,
        stats: Some(sol.stats),
    })
}

/// Dominance pruning (§III-C2): returns the indices that survive.
///
/// A candidate is pruned when a single cheaper-or-equal candidate is at
/// least as good on every query (single dominance), or when a *pair* of
/// candidates with combined storage within `storage(r)` beats it
/// everywhere (the paper's replica-set dominance, applied to sets of
/// size ≤ 2 — finding a minimum dominant set is itself NP-complete, so
/// this is the "rough yet effective heuristic").
#[must_use]
pub fn prune_dominated(matrix: &CostMatrix) -> Vec<usize> {
    let m = matrix.n_candidates();
    let n = matrix.n_queries();
    let dominates_single = |a: usize, b: usize| {
        matrix.storage[a] <= matrix.storage[b]
            && (0..n).all(|i| matrix.costs[i][a] <= matrix.costs[i][b])
            && (matrix.storage[a] < matrix.storage[b]
                || (0..n).any(|i| matrix.costs[i][a] < matrix.costs[i][b]))
    };
    let mut alive: Vec<bool> = vec![true; m];
    // Single dominance.
    for b in 0..m {
        for a in 0..m {
            if a != b && alive[a] && dominates_single(a, b) {
                alive[b] = false;
                break;
            }
        }
    }
    // Pair dominance among survivors.
    let survivors: Vec<usize> = (0..m).filter(|&j| alive[j]).collect();
    for &b in &survivors {
        'outer: for (ai, &a1) in survivors.iter().enumerate() {
            if a1 == b || !alive[a1] || !alive[b] {
                continue;
            }
            for &a2 in survivors.iter().skip(ai + 1) {
                if a2 == b || !alive[a2] {
                    continue;
                }
                if matrix.storage[a1] + matrix.storage[a2] <= matrix.storage[b]
                    && (0..n)
                        .all(|i| matrix.costs[i][a1].min(matrix.costs[i][a2]) <= matrix.costs[i][b])
                {
                    alive[b] = false;
                    break 'outer;
                }
            }
        }
    }
    (0..m).filter(|&j| alive[j]).collect()
}

/// Workload-size reduction by k-means over range sizes (§III-C1): "if
/// the number of different range sizes is still large, we can use
/// clustering algorithms such as K-means to cluster the range sizes and
/// only use the cluster centers".
///
/// Axes are rescaled by their spread so heterogeneous units (degrees vs
/// seconds) contribute comparably. Returns `k` grouped queries weighted
/// by their member counts (fewer if there are fewer distinct sizes).
#[must_use]
pub fn kmeans_group(sizes: &[QuerySize], k: usize, seed: u64) -> Workload {
    use crate::query::GroupedQuery;
    if sizes.is_empty() || k == 0 {
        return Workload::new(Vec::new());
    }
    let k = k.min(sizes.len());
    // Axis scales: inverse of spread (fall back to 1 for constant axes).
    let mut scale = [1.0f64; 3];
    for (axis, sc) in scale.iter_mut().enumerate() {
        let lo = sizes
            .iter()
            .map(|s| s.axis(axis))
            .fold(f64::INFINITY, f64::min);
        let hi = sizes
            .iter()
            .map(|s| s.axis(axis))
            .fold(f64::NEG_INFINITY, f64::max);
        if hi > lo {
            *sc = 1.0 / (hi - lo);
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // k-means++-light seeding: first centre random, then farthest-point.
    let mut centres: Vec<QuerySize> = vec![sizes[rng.gen_range(0..sizes.len())]];
    while centres.len() < k {
        // `sizes` is non-empty (guarded above), so a farthest point
        // always exists.
        let Some(far) = sizes.iter().max_by(|a, b| {
            let da = centres
                .iter()
                .map(|c| a.distance(c, scale))
                .fold(f64::INFINITY, f64::min);
            let db = centres
                .iter()
                .map(|c| b.distance(c, scale))
                .fold(f64::INFINITY, f64::min);
            da.total_cmp(&db)
        }) else {
            break;
        };
        centres.push(*far);
    }
    let mut assignment = vec![0usize; sizes.len()];
    for _ in 0..32 {
        let mut changed = false;
        for (i, s) in sizes.iter().enumerate() {
            let Some(best) = (0..centres.len()).min_by(|&a, &b| {
                s.distance(&centres[a], scale)
                    .total_cmp(&s.distance(&centres[b], scale))
            }) else {
                continue;
            };
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centres as member means.
        for (c, centre) in centres.iter_mut().enumerate() {
            let members: Vec<&QuerySize> = sizes
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == c)
                .map(|(s, _)| s)
                .collect();
            if members.is_empty() {
                continue;
            }
            let nf = members.len() as f64;
            *centre = QuerySize::new(
                members.iter().map(|s| s.w).sum::<f64>() / nf,
                members.iter().map(|s| s.h).sum::<f64>() / nf,
                members.iter().map(|s| s.t).sum::<f64>() / nf,
            );
        }
        if !changed {
            break;
        }
    }
    let entries = centres
        .into_iter()
        .enumerate()
        .filter_map(|(c, centre)| {
            let count = assignment.iter().filter(|&&a| a == c).count();
            (count > 0).then_some((GroupedQuery::new(centre), count as f64))
        })
        .collect();
    Workload::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built matrix where the right answers are obvious:
    /// candidate 0 is great for query 0, candidate 1 for query 1,
    /// candidate 2 mediocre at both but cheap, candidate 3 dominated.
    fn toy_matrix() -> CostMatrix {
        CostMatrix {
            costs: vec![vec![1.0, 100.0, 30.0, 40.0], vec![100.0, 1.0, 30.0, 40.0]],
            weights: vec![1.0, 1.0],
            storage: vec![Bytes::new(10.0); 4],
        }
    }

    #[test]
    fn workload_cost_takes_min_per_query() {
        let m = toy_matrix();
        assert_eq!(m.workload_cost(&[0]), 101.0);
        assert_eq!(m.workload_cost(&[0, 1]), 2.0);
        assert_eq!(m.workload_cost(&[2]), 60.0);
        assert_eq!(m.workload_cost(&[]), f64::INFINITY);
    }

    #[test]
    fn single_picks_the_best_affordable() {
        let m = toy_matrix();
        let s = select_single(&m, Bytes::new(10.0));
        assert_eq!(s.chosen, vec![2]);
        assert_eq!(s.workload_cost, 60.0);
        let none = select_single(&m, Bytes::new(5.0));
        assert!(none.chosen.is_empty());
        assert!(none.workload_cost.is_infinite());
    }

    #[test]
    fn greedy_is_greedy_and_mip_beats_it_on_the_toy() {
        // Classic greedy trap: the balanced candidate 2 has the largest
        // first-step gain (140 vs 99), so greedy spends half the budget
        // on it and ends at {2, 0} with cost 31 — while the exact
        // optimum is the complementary pair {0, 1} with cost 2. This is
        // exactly the approximation gap Figures 4/6 measure.
        let m = toy_matrix();
        let greedy = select_greedy(&m, Bytes::new(20.0));
        let mut chosen = greedy.chosen.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 2]);
        assert_eq!(greedy.workload_cost, 31.0);
        assert_eq!(greedy.storage, Bytes::new(20.0));
        let mip = select_mip(&m, Bytes::new(20.0), &MipSolver::default()).unwrap();
        assert!(mip.workload_cost < greedy.workload_cost);
    }

    #[test]
    fn greedy_finds_the_pair_given_room() {
        // With budget for three replicas greedy recovers: after the
        // generalist it still adds both specialists.
        let m = toy_matrix();
        let s = select_greedy(&m, Bytes::new(30.0));
        assert_eq!(s.workload_cost, 2.0);
        assert!(s.chosen.contains(&0) && s.chosen.contains(&1));
    }

    #[test]
    fn greedy_respects_budget() {
        let m = toy_matrix();
        let s = select_greedy(&m, Bytes::new(10.0));
        assert_eq!(s.chosen.len(), 1);
        assert!(s.storage <= Bytes::new(10.0));
        // With one slot, the balanced candidate wins.
        assert_eq!(s.chosen, vec![2]);
    }

    #[test]
    fn mip_matches_brute_force_on_toy() {
        let m = toy_matrix();
        let sel = select_mip(&m, Bytes::new(20.0), &MipSolver::default()).unwrap();
        assert_eq!(sel.workload_cost, 2.0);
        let mut chosen = sel.chosen.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 1]);
        assert!(sel.stats.is_some());
    }

    #[test]
    fn mip_is_never_worse_than_greedy() {
        // Random matrices: exactness means mip ≤ greedy everywhere.
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = rng.gen_range(2..5);
            let m = rng.gen_range(2..7);
            let matrix = CostMatrix {
                costs: (0..n)
                    .map(|_| (0..m).map(|_| rng.gen_range(1.0..100.0)).collect())
                    .collect(),
                weights: (0..n).map(|_| rng.gen_range(0.5..2.0)).collect(),
                storage: (0..m)
                    .map(|_| Bytes::new(rng.gen_range(1.0..20.0)))
                    .collect(),
            };
            let budget = matrix.storage.iter().copied().sum::<Bytes>() * 0.5;
            let greedy = select_greedy(&matrix, budget);
            let mip = select_mip(&matrix, budget, &MipSolver::default()).unwrap();
            assert!(
                mip.workload_cost <= greedy.workload_cost + 1e-6,
                "mip {} > greedy {}",
                mip.workload_cost,
                greedy.workload_cost
            );
            assert!(mip.storage <= budget + Bytes::new(1e-6));
        }
    }

    #[test]
    fn ideal_is_a_lower_bound() {
        let m = toy_matrix();
        let ideal = ideal_cost(&m);
        assert_eq!(ideal, 2.0);
        for budget in [10.0, 20.0, 40.0] {
            assert!(select_greedy(&m, Bytes::new(budget)).workload_cost >= ideal - 1e-12);
        }
    }

    #[test]
    fn pruning_drops_dominated_candidates_only() {
        let m = toy_matrix();
        let kept = prune_dominated(&m);
        // Candidate 3 is singly dominated by candidate 2.
        assert!(!kept.contains(&3));
        assert!(kept.contains(&0) && kept.contains(&1));
        // Pruning never changes the optimum.
        let budget = Bytes::new(20.0);
        let full = select_mip(&m, budget, &MipSolver::default()).unwrap();
        let sub = CostMatrix {
            costs: m
                .costs
                .iter()
                .map(|row| kept.iter().map(|&j| row[j]).collect())
                .collect(),
            weights: m.weights.clone(),
            storage: kept.iter().map(|&j| m.storage[j]).collect(),
        };
        let pruned = select_mip(&sub, budget, &MipSolver::default()).unwrap();
        assert!((full.workload_cost - pruned.workload_cost).abs() < 1e-9);
    }

    #[test]
    fn pair_dominance_prunes_expensive_generalists() {
        // Candidate 2 is strictly worse than {0, 1} and costs as much.
        let m = CostMatrix {
            costs: vec![vec![1.0, 50.0, 5.0], vec![50.0, 1.0, 5.0]],
            weights: vec![1.0, 1.0],
            storage: vec![Bytes::new(5.0), Bytes::new(5.0), Bytes::new(10.0)],
        };
        let kept = prune_dominated(&m);
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn kmeans_groups_repeated_sizes() {
        let mut sizes = Vec::new();
        for _ in 0..30 {
            sizes.push(QuerySize::new(0.1, 0.1, 100.0));
        }
        for _ in 0..10 {
            sizes.push(QuerySize::new(1.5, 1.5, 5_000.0));
        }
        let w = kmeans_group(&sizes, 2, 42);
        assert_eq!(w.len(), 2);
        let mut weights: Vec<f64> = w.entries().iter().map(|&(_, wt)| wt).collect();
        weights.sort_by(f64::total_cmp);
        assert_eq!(weights, vec![10.0, 30.0]);
        // Centres sit on the two original sizes.
        let mut ws: Vec<f64> = w.entries().iter().map(|(q, _)| q.size.w).collect();
        ws.sort_by(f64::total_cmp);
        assert!((ws[0] - 0.1).abs() < 1e-9 && (ws[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn kmeans_handles_degenerate_inputs() {
        assert!(kmeans_group(&[], 3, 1).is_empty());
        let one = vec![QuerySize::new(1.0, 1.0, 1.0)];
        let w = kmeans_group(&one, 5, 1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.entries()[0].1, 1.0);
    }
}
