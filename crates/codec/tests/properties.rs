//! Property-based tests: every codec and layout must round-trip arbitrary
//! inputs, and compressed streams must decode to exactly the original.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_codec::{
    deflate_compress, deflate_decompress, lzf_compress, lzf_decompress, lzr_compress,
    lzr_decompress, EncodingScheme, Layout,
};
use blot_model::{Record, RecordBatch};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (
        0u32..10_000,
        -1_000_000i64..100_000_000,
        120.0f64..122.0,
        30.0f64..32.0,
        0.0f32..140.0,
        0.0f32..360.0,
        any::<bool>(),
        0u8..=4,
    )
        .prop_map(
            |(oid, time, x, y, speed, heading, occupied, passengers)| Record {
                oid,
                time,
                x,
                y,
                speed,
                heading,
                occupied,
                passengers,
            },
        )
}

fn arb_batch(max: usize) -> impl Strategy<Value = RecordBatch> {
    prop::collection::vec(arb_record(), 0..max).prop_map(|rs| RecordBatch::from_records(&rs))
}

/// Byte strings with enough repetition to exercise match emission, plus
/// raw random tails.
fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..2000),
        (prop::collection::vec(any::<u8>(), 1..60), 1usize..80).prop_map(|(unit, reps)| {
            unit.iter()
                .copied()
                .cycle()
                .take(unit.len() * reps)
                .collect()
        }),
        (
            prop::collection::vec(any::<u8>(), 0..400),
            prop::collection::vec(any::<u8>(), 1..40)
        )
            .prop_map(|(mut a, b)| {
                a.extend_from_slice(&b);
                a.extend_from_slice(&b);
                a.extend_from_slice(&b);
                a
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lzf_roundtrips(data in arb_bytes()) {
        prop_assert_eq!(lzf_decompress(&lzf_compress(&data)).unwrap(), data);
    }

    #[test]
    fn deflate_roundtrips(data in arb_bytes()) {
        prop_assert_eq!(deflate_decompress(&deflate_compress(&data)).unwrap(), data);
    }

    #[test]
    fn lzr_roundtrips(data in arb_bytes()) {
        prop_assert_eq!(lzr_decompress(&lzr_compress(&data)).unwrap(), data);
    }

    #[test]
    fn schemes_roundtrip_batches(batch in arb_batch(120)) {
        let mut sorted = batch.clone();
        sorted.sort_by_oid_time();
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&batch);
            let dec = scheme.decode(&bytes).unwrap();
            match scheme.layout {
                Layout::Row => prop_assert_eq!(&dec, &batch),
                Layout::Column => prop_assert_eq!(&dec, &sorted),
            }
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage(mut data in prop::collection::vec(any::<u8>(), 0..600)) {
        // Whatever the bytes, decoding must return (Ok or Err), not panic.
        let _ = lzf_decompress(&data);
        let _ = deflate_decompress(&data);
        let _ = lzr_decompress(&data);
        let _ = EncodingScheme::decode_auto(&data);
        // Also flip bits in a valid stream.
        let valid = deflate_compress(b"some valid input some valid input");
        if !data.is_empty() && !valid.is_empty() {
            let mut mutated = valid;
            let idx = data[0] as usize % mutated.len();
            mutated[idx] ^= data.pop().unwrap_or(1) | 1;
            let _ = deflate_decompress(&mutated);
        }
    }

    #[test]
    fn compressed_is_never_catastrophically_larger(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        let bound = data.len() + data.len() / 8 + 64;
        prop_assert!(lzf_compress(&data).len() <= bound);
        prop_assert!(deflate_compress(&data).len() <= bound + 400); // header tables
        prop_assert!(lzr_compress(&data).len() <= bound);
    }
}
