//! Property-based tests: every codec and layout must round-trip arbitrary
//! inputs, and compressed streams must decode to exactly the original.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use blot_codec::{
    deflate_compress, deflate_decompress, lzf_compress, lzf_decompress, lzr_compress,
    lzr_decompress, read_varint_i64, read_varint_u64, rle_decode, rle_encode, write_varint_i64,
    write_varint_u64, zigzag_decode, zigzag_encode, BitReader, BitWriter, Compression,
    DecodeScratch, EncodingScheme, Layout, ZoneMap, ZONE_MAP_FOOTER_LEN,
};
use blot_geo::{Cuboid, Point};
use blot_model::{Record, RecordBatch};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (
        0u32..10_000,
        -1_000_000i64..100_000_000,
        120.0f64..122.0,
        30.0f64..32.0,
        0.0f32..140.0,
        0.0f32..360.0,
        any::<bool>(),
        0u8..=4,
    )
        .prop_map(
            |(oid, time, x, y, speed, heading, occupied, passengers)| Record {
                oid,
                time,
                x,
                y,
                speed,
                heading,
                occupied,
                passengers,
            },
        )
}

fn arb_batch(max: usize) -> impl Strategy<Value = RecordBatch> {
    prop::collection::vec(arb_record(), 0..max).prop_map(|rs| RecordBatch::from_records(&rs))
}

/// Byte strings with enough repetition to exercise match emission, plus
/// raw random tails.
fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..2000),
        (prop::collection::vec(any::<u8>(), 1..60), 1usize..80).prop_map(|(unit, reps)| {
            unit.iter()
                .copied()
                .cycle()
                .take(unit.len() * reps)
                .collect()
        }),
        (
            prop::collection::vec(any::<u8>(), 0..400),
            prop::collection::vec(any::<u8>(), 1..40)
        )
            .prop_map(|(mut a, b)| {
                a.extend_from_slice(&b);
                a.extend_from_slice(&b);
                a.extend_from_slice(&b);
                a
            }),
    ]
}

/// Query cuboids that straddle the `arb_record` value ranges, from
/// match-nothing slivers to cover-everything boxes.
fn arb_range() -> impl Strategy<Value = Cuboid> {
    (
        119.0f64..123.0,
        0.0f64..2.5,
        29.0f64..33.0,
        0.0f64..2.5,
        -2_000_000f64..110_000_000.0,
        0.0f64..50_000_000.0,
    )
        .prop_map(|(x0, dx, y0, dy, t0, dt)| {
            Cuboid::new(
                Point::new(x0, y0, t0),
                Point::new(x0 + dx, y0 + dy, t0 + dt),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lzf_roundtrips(data in arb_bytes()) {
        prop_assert_eq!(lzf_decompress(&lzf_compress(&data)).unwrap(), data);
    }

    #[test]
    fn deflate_roundtrips(data in arb_bytes()) {
        prop_assert_eq!(deflate_decompress(&deflate_compress(&data)).unwrap(), data);
    }

    #[test]
    fn lzr_roundtrips(data in arb_bytes()) {
        prop_assert_eq!(lzr_decompress(&lzr_compress(&data)).unwrap(), data);
    }

    #[test]
    fn schemes_roundtrip_batches(batch in arb_batch(120)) {
        let mut sorted = batch.clone();
        sorted.sort_by_oid_time();
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&batch);
            let dec = scheme.decode(&bytes).unwrap();
            match scheme.layout {
                Layout::Row => prop_assert_eq!(&dec, &batch),
                Layout::Column => prop_assert_eq!(&dec, &sorted),
            }
        }
    }

    #[test]
    fn batched_filter_is_bit_identical_to_record_at_a_time(
        batch in arb_batch(200),
        range in arb_range(),
    ) {
        let mut scratch = DecodeScratch::new();
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&batch);
            let reference = scheme.decode_filter(&bytes, &range).unwrap();
            let batched = scheme.decode_filter_batched(&bytes, &range, &mut scratch).unwrap();
            prop_assert_eq!(&batched.matched, &reference.matched, "{}", scheme);
            prop_assert_eq!(batched.scanned, reference.scanned, "{}", scheme);
            // And both agree with decode-everything-then-filter.
            let full = scheme.decode(&bytes).unwrap().filter_range(&range);
            prop_assert_eq!(&batched.matched, &full, "{}", scheme);
        }
    }

    #[test]
    fn zone_map_footer_roundtrips_and_never_misprunes(
        batch in arb_batch(150),
        range in arb_range(),
    ) {
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&batch);
            let (payload, zm) = ZoneMap::split_footer(bytes.get(1..).unwrap()).unwrap();
            let zm = zm.expect("encode always writes a footer");
            prop_assert_eq!(payload.len() + 1 + ZONE_MAP_FOOTER_LEN, bytes.len());
            prop_assert!(zm.same_bits(&ZoneMap::from_batch(&batch)));
            // The prune decision is exact: a non-overlapping verdict
            // implies the filter finds nothing.
            if !zm.overlaps(&range) {
                let f = scheme.decode_filter(&bytes, &range).unwrap();
                prop_assert!(f.matched.is_empty(), "{} mispruned", scheme);
            }
        }
    }

    #[test]
    fn corrupt_footers_error_never_panic(
        batch in arb_batch(60),
        idx in 0usize..ZONE_MAP_FOOTER_LEN,
        flip in 1u8..=255,
    ) {
        let scheme = EncodingScheme::new(Layout::Row, Compression::Plain);
        let mut bytes = scheme.encode(&batch);
        let n = bytes.len();
        // Damage one footer byte; decode must surface an error (bad
        // checksum / lost magic) or — only if the flip forged another
        // valid footer boundary — still a structured Ok, never a panic.
        let at = n - ZONE_MAP_FOOTER_LEN + idx;
        bytes[at] ^= flip;
        let _ = ZoneMap::split_footer(&bytes[1..]);
        let _ = scheme.decode(&bytes);
        let _ = EncodingScheme::decode_auto(&bytes);
        // Truncations anywhere in the footer region are always errors.
        for cut in (n - ZONE_MAP_FOOTER_LEN)..n {
            let _ = EncodingScheme::decode_auto(&bytes[..cut]);
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage(mut data in prop::collection::vec(any::<u8>(), 0..600)) {
        // Whatever the bytes, decoding must return (Ok or Err), not panic.
        let _ = lzf_decompress(&data);
        let _ = deflate_decompress(&data);
        let _ = lzr_decompress(&data);
        let _ = EncodingScheme::decode_auto(&data);
        // Also flip bits in a valid stream.
        let valid = deflate_compress(b"some valid input some valid input");
        if !data.is_empty() && !valid.is_empty() {
            let mut mutated = valid;
            let idx = data[0] as usize % mutated.len();
            mutated[idx] ^= data.pop().unwrap_or(1) | 1;
            let _ = deflate_decompress(&mutated);
        }
    }

    #[test]
    fn compressed_is_never_catastrophically_larger(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        let bound = data.len() + data.len() / 8 + 64;
        prop_assert!(lzf_compress(&data).len() <= bound);
        prop_assert!(deflate_compress(&data).len() <= bound + 400); // header tables
        prop_assert!(lzr_compress(&data).len() <= bound);
    }

    #[test]
    fn varint_u64_roundtrips(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_varint_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_varint_u64(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_i64_roundtrips(values in prop::collection::vec(any::<i64>(), 0..200)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_varint_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_varint_i64(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_u64_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..40)) {
        let mut pos = 0;
        while pos < data.len() {
            let before = pos;
            if read_varint_u64(&data, &mut pos).is_err() || pos == before {
                break;
            }
        }
    }

    #[test]
    fn zigzag_roundtrips(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        // Small magnitudes must map to small codes: that is the whole
        // point of the transform ahead of the varint stage.
        if v > -(1 << 20) && v < (1 << 20) {
            prop_assert!(zigzag_encode(v) < (1 << 21));
        }
    }

    #[test]
    fn rle_roundtrips(data in arb_bytes()) {
        prop_assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = rle_decode(&data);
    }

    #[test]
    fn bitio_roundtrips(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 0..120)) {
        let mut w = BitWriter::new();
        for &(raw, width) in &fields {
            let masked = if width == 64 { raw } else { raw & ((1u64 << width) - 1) };
            w.write_bits(masked, width);
        }
        let expected_bits = w.bit_len();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(raw, width) in &fields {
            let masked = if width == 64 { raw } else { raw & ((1u64 << width) - 1) };
            prop_assert_eq!(r.read_bits(width).unwrap(), masked);
        }
        prop_assert_eq!(r.bits_read(), expected_bits);
    }

    #[test]
    fn bitio_single_bits_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bit(b);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(r.read_bit().unwrap(), b);
        }
    }
}
