//! `Lzr` — the LZMA-class compressor: LZ with an adaptive binary range
//! coder.
//!
//! Stands in for LZMA2 in the paper's encoding-scheme lineup: the highest
//! compression ratio and the slowest decode of the three general-purpose
//! codecs. The model is a simplified LZMA:
//!
//! * per-packet `is_match` flag (adaptive, conditioned on the previous
//!   packet type);
//! * literals coded through an order-1 context (previous byte) of 8-bit
//!   bit-trees;
//! * match lengths through an 8-bit bit-tree (`len - 3`);
//! * a `is_rep` flag reusing the last distance (trajectory columns have
//!   strongly periodic strides);
//! * otherwise a 6-bit distance-slot bit-tree plus direct extra bits.
//!
//! The match finder reuses the hash-chain searcher with a 1 MiB window
//! and a deep chain, which is where the extra encode time goes.

use crate::lz77::MatchFinder;
use crate::range::{BitModel, BitTree, RangeDecoder, RangeEncoder};
use crate::varint::{read_varint_u64, write_varint_u64};
use crate::CodecError;

const WINDOW: usize = 1 << 20;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 255;
const MAX_CHAIN: usize = 128;
const DIST_SLOTS: u32 = 6; // 2^6 = 64 slots cover 32-bit distances
const MAX_DECODED: u64 = 1 << 30;

/// Distance → (slot, extra_bits, payload). Slot s ≥ 2 covers
/// `[2^(s/2+?)…]` in the LZMA fashion: slot = 2*msb + next bit.
fn dist_slot(dist: u32) -> (u32, u32, u32) {
    debug_assert!(dist >= 1);
    let d = dist - 1;
    if d < 4 {
        return (d, 0, 0);
    }
    let msb = 31 - d.leading_zeros();
    let slot = (msb << 1) | ((d >> (msb - 1)) & 1);
    let extra = msb - 1;
    let payload = d & ((1 << extra) - 1);
    (slot, extra, payload)
}

fn slot_base(slot: u32) -> (u32, u32) {
    if slot < 4 {
        return (slot, 0);
    }
    let extra = (slot >> 1) - 1;
    let base = (2 | (slot & 1)) << extra;
    (base, extra)
}

struct Models {
    is_match: [BitModel; 2],
    is_rep: BitModel,
    literal: Vec<BitTree>,
    len_tree: BitTree,
    rep_len_tree: BitTree,
    dist_slot_tree: BitTree,
}

impl Models {
    fn new() -> Self {
        Self {
            is_match: [BitModel::new(); 2],
            is_rep: BitModel::new(),
            literal: (0..256).map(|_| BitTree::new(8)).collect(),
            len_tree: BitTree::new(8),
            rep_len_tree: BitTree::new(8),
            dist_slot_tree: BitTree::new(DIST_SLOTS),
        }
    }

    /// The `is_match` model conditioned on the previous packet type.
    fn is_match_model(&mut self, prev_was_match: bool) -> &mut BitModel {
        let [lit, mat] = &mut self.is_match;
        if prev_was_match {
            mat
        } else {
            lit
        }
    }

    /// The order-1 literal tree for context byte `ctx`.
    #[allow(clippy::indexing_slicing)]
    fn literal_model(&mut self, ctx: u8) -> &mut BitTree {
        // audit: allow(indexing, a u8 context always lands in the 256-entry table)
        &mut self.literal[usize::from(ctx)]
    }
}

/// Compresses `data`.
#[must_use]
pub fn lzr_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 3 + 16);
    write_varint_u64(&mut out, data.len() as u64);
    let mut enc = RangeEncoder::new();
    let mut models = Models::new();
    let mut mf = MatchFinder::new(data.len(), WINDOW, MIN_MATCH, MAX_MATCH, MAX_CHAIN);
    let mut pos = 0usize;
    let mut prev_was_match = false;
    let mut last_dist = 0u32;
    while pos < data.len() {
        let m = mf.find(data, pos);
        match m {
            Some(m) => {
                enc.encode_bit(models.is_match_model(prev_was_match), true);
                // The window is 1 MiB and lengths are capped at
                // MIN_MATCH + 255, so both conversions always fit.
                let dist = u32::try_from(m.dist).unwrap_or(u32::MAX);
                let len_payload = u32::try_from(m.len.saturating_sub(MIN_MATCH)).unwrap_or(255);
                if dist == last_dist && last_dist != 0 {
                    enc.encode_bit(&mut models.is_rep, true);
                    models.rep_len_tree.encode(&mut enc, len_payload);
                } else {
                    enc.encode_bit(&mut models.is_rep, false);
                    models.len_tree.encode(&mut enc, len_payload);
                    let (slot, extra, payload) = dist_slot(dist);
                    models.dist_slot_tree.encode(&mut enc, slot);
                    if extra > 0 {
                        enc.encode_direct(payload, extra);
                    }
                    last_dist = dist;
                }
                for p in pos..pos + m.len {
                    mf.insert(data, p);
                }
                pos += m.len;
                prev_was_match = true;
            }
            None => {
                let Some(&cur) = data.get(pos) else { break };
                enc.encode_bit(models.is_match_model(prev_was_match), false);
                let ctx = pos
                    .checked_sub(1)
                    .and_then(|p| data.get(p))
                    .copied()
                    .unwrap_or(0);
                models.literal_model(ctx).encode(&mut enc, u32::from(cur));
                mf.insert(data, pos);
                pos += 1;
                prev_was_match = false;
            }
        }
    }
    out.extend_from_slice(&enc.finish());
    out
}

/// Decompresses a stream produced by [`lzr_compress`].
///
/// # Errors
///
/// Returns a [`CodecError`] on truncation or corrupt packet structure.
pub fn lzr_decompress(buf: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut hdr = 0usize;
    let declared = read_varint_u64(buf, &mut hdr)?;
    if declared > MAX_DECODED {
        return Err(CodecError::TooLarge { declared });
    }
    let declared = usize::try_from(declared).map_err(|_| CodecError::TooLarge { declared })?;
    let mut out = Vec::with_capacity(declared);
    if declared == 0 {
        return Ok(out);
    }
    let mut dec = RangeDecoder::new(buf.get(hdr..).unwrap_or_default())?;
    let mut models = Models::new();
    let mut prev_was_match = false;
    let mut last_dist = 0u32;
    while out.len() < declared {
        if dec.decode_bit(models.is_match_model(prev_was_match)) {
            let (len_payload, dist) = if dec.decode_bit(&mut models.is_rep) {
                if last_dist == 0 {
                    return Err(CodecError::Corrupt {
                        context: "rep-match before any match",
                    });
                }
                (models.rep_len_tree.decode(&mut dec), last_dist)
            } else {
                let len_payload = models.len_tree.decode(&mut dec);
                let slot = models.dist_slot_tree.decode(&mut dec);
                let (base, extra) = slot_base(slot);
                let payload = if extra > 0 {
                    dec.decode_direct(extra)
                } else {
                    0
                };
                last_dist = base + payload + 1;
                (len_payload, last_dist)
            };
            let len = len_payload as usize + MIN_MATCH;
            let dist = dist as usize;
            if dist > out.len() {
                return Err(CodecError::BadReference {
                    offset: dist,
                    decoded_len: out.len(),
                });
            }
            if out.len() + len > declared {
                return Err(CodecError::Corrupt {
                    context: "lzr output overruns declared size",
                });
            }
            let start = out.len() - dist;
            for i in 0..len {
                let b = out
                    .get(start + i)
                    .copied()
                    .ok_or(CodecError::BadReference {
                        offset: dist,
                        decoded_len: out.len(),
                    })?;
                out.push(b);
            }
            prev_was_match = true;
        } else {
            let ctx = out.last().copied().unwrap_or(0);
            let byte = u8::try_from(models.literal_model(ctx).decode(&mut dec)).map_err(|_| {
                CodecError::Corrupt {
                    context: "literal out of byte range",
                }
            })?;
            out.push(byte);
            prev_was_match = false;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let enc = lzr_compress(data);
        let dec = lzr_decompress(&enc).unwrap();
        assert_eq!(dec, data);
        enc.len()
    }

    #[test]
    fn dist_slot_roundtrips() {
        for dist in (1u32..5000).chain([65_535, 1 << 20]) {
            let (slot, extra, payload) = dist_slot(dist);
            let (base, extra2) = slot_base(slot);
            assert_eq!(extra, extra2, "dist {dist}");
            assert_eq!(base + payload + 1, dist, "dist {dist}");
        }
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(b"");
        roundtrip(b"z");
        roundtrip(b"abcabcabcabcabcabc");
        roundtrip(&vec![0u8; 10_000]);
        roundtrip(&(0..=255u8).collect::<Vec<_>>());
    }

    #[test]
    fn beats_deflate_on_structured_data() {
        // Periodic binary rows — the workload this codec exists for.
        let mut data = Vec::new();
        for i in 0u32..3_000 {
            data.extend_from_slice(&(i / 7).to_le_bytes());
            data.extend_from_slice(&(1_200_000u32 + i * 3).to_le_bytes());
            data.extend_from_slice(&f32::to_le_bytes(31.2 + (i as f32) * 1e-4));
        }
        let z = roundtrip(&data);
        let d = crate::deflate::deflate_compress(&data).len();
        assert!(z < d, "lzr {z} should beat deflate {d}");
    }

    #[test]
    fn random_data_roundtrips_without_blowup() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let data: Vec<u8> = (0..20_000).map(|_| rng.gen()).collect();
        let n = roundtrip(&data);
        assert!(n < data.len() + data.len() / 8 + 64);
    }

    #[test]
    fn corrupt_input_is_rejected_or_detected() {
        let enc = lzr_compress(b"the rain in spain stays mainly in the plain");
        // Truncating the range-coded body must not panic; it either errors
        // or the declared-length check catches it.
        if let Ok(out) = lzr_decompress(&enc[..6]) {
            assert_ne!(out, b"the rain in spain stays mainly in the plain")
        }
        let mut huge = Vec::new();
        write_varint_u64(&mut huge, u64::MAX / 3);
        assert!(matches!(
            lzr_decompress(&huge),
            Err(CodecError::TooLarge { .. })
        ));
    }
}
