//! Gorilla-style XOR compression for floating-point columns.
//!
//! Consecutive GPS fixes of the same vehicle are close in space, so the
//! IEEE-754 bit patterns of consecutive coordinates share their sign,
//! exponent and high mantissa bits. Following the scheme popularised by
//! Facebook's Gorilla TSDB, each value is XORed with its predecessor and
//! the significant window of the XOR is stored:
//!
//! * `0`                          — identical to the previous value;
//! * `10` + meaningful bits       — XOR fits the previous window;
//! * `11` + 6-bit leading-zero count + 6-bit width + bits — new window.
//!
//! The encoding is lossless for arbitrary `f64`/`f32` data, including
//! NaNs (bit patterns are preserved exactly).

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Encodes a sequence of `f64` bit patterns into `w`.
pub fn encode_f64_bits(w: &mut BitWriter, values: impl Iterator<Item = u64>) {
    let mut prev = 0u64;
    let mut prev_leading = u32::MAX; // force a window refresh on first XOR
    let mut prev_width = 0u32;
    let mut first = true;
    for v in values {
        if first {
            w.write_bits(v, 64);
            prev = v;
            first = false;
            continue;
        }
        let xor = v ^ prev;
        prev = v;
        if xor == 0 {
            w.write_bit(false);
            continue;
        }
        w.write_bit(true);
        let leading = xor.leading_zeros().min(63);
        let trailing = xor.trailing_zeros();
        let width = 64 - leading - trailing;
        let fits_prev = prev_leading != u32::MAX
            && leading >= prev_leading
            && 64 - prev_leading - prev_width <= trailing;
        if fits_prev {
            w.write_bit(false);
            let shift = 64 - prev_leading - prev_width;
            w.write_bits(xor >> shift, prev_width);
        } else {
            w.write_bit(true);
            w.write_bits(u64::from(leading), 6);
            // width is in 1..=64; store width-1 in 6 bits.
            w.write_bits(u64::from(width - 1), 6);
            w.write_bits(xor >> trailing, width);
            prev_leading = leading;
            prev_width = width;
        }
    }
}

/// Decodes `count` `f64` bit patterns written by [`encode_f64_bits`].
///
/// # Errors
///
/// Returns a [`CodecError`] if the bit stream is truncated.
pub fn decode_f64_bits(r: &mut BitReader<'_>, count: usize) -> Result<Vec<u64>, CodecError> {
    let mut out = Vec::new();
    decode_f64_bits_into(r, count, &mut out)?;
    Ok(out)
}

/// [`decode_f64_bits`] into a caller-owned buffer (cleared first), so
/// batch scan loops reuse one allocation across columns and units.
///
/// # Errors
///
/// Returns a [`CodecError`] if the bit stream is truncated.
pub fn decode_f64_bits_into(
    r: &mut BitReader<'_>,
    count: usize,
    out: &mut Vec<u64>,
) -> Result<(), CodecError> {
    out.clear();
    out.reserve(count);
    if count == 0 {
        return Ok(());
    }
    let mut prev = r.read_bits(64)?;
    out.push(prev);
    let mut leading = 0u32;
    let mut width = 0u32;
    for _ in 1..count {
        if !r.read_bit()? {
            out.push(prev);
            continue;
        }
        if r.read_bit()? {
            // A 6-bit read is at most 63, so the conversions always fit.
            leading = u32::try_from(r.read_bits(6)?).unwrap_or(63);
            width = u32::try_from(r.read_bits(6)?).unwrap_or(63) + 1;
            if leading + width > 64 {
                return Err(CodecError::Corrupt {
                    context: "gorilla window exceeds 64 bits",
                });
            }
        } else if width == 0 {
            return Err(CodecError::Corrupt {
                context: "gorilla reuse marker before any window was set",
            });
        }
        let shift = 64 - leading - width;
        let xor = r.read_bits(width)? << shift;
        prev ^= xor;
        out.push(prev);
    }
    Ok(())
}

/// Decodes `count` `f64` bit patterns from a byte slice into a
/// caller-owned buffer.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is truncated or corrupt.
pub fn decode_f64_bits_slice_into(
    buf: &[u8],
    count: usize,
    out: &mut Vec<u64>,
) -> Result<(), CodecError> {
    let mut r = BitReader::new(buf);
    decode_f64_bits_into(&mut r, count, out)
}

/// Decodes an `f32` column of `count` values into `out`, using `bits`
/// as bit-pattern scratch. Both buffers are cleared first.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is truncated or corrupt, or
/// carries bit patterns no widened `f32` could produce.
pub fn decode_f32_column_into(
    buf: &[u8],
    count: usize,
    bits: &mut Vec<u64>,
    out: &mut Vec<f32>,
) -> Result<(), CodecError> {
    decode_f64_bits_slice_into(buf, count, bits)?;
    out.clear();
    out.reserve(count);
    for &b in bits.iter() {
        if b & 0xFFFF_FFFF != 0 {
            return Err(CodecError::Corrupt {
                context: "f32 column has f64-only bits",
            });
        }
        out.push(f32::from_bits(u32::try_from(b >> 32).unwrap_or(0)));
    }
    Ok(())
}

/// Encodes an `f64` column: bit-length-prefixed Gorilla stream.
#[must_use]
pub fn encode_f64_column(values: &[f64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    encode_f64_bits(&mut w, values.iter().map(|v| v.to_bits()));
    w.finish()
}

/// Decodes an `f64` column of `count` values.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is truncated or corrupt.
pub fn decode_f64_column(buf: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
    let mut r = BitReader::new(buf);
    Ok(decode_f64_bits(&mut r, count)?
        .into_iter()
        .map(f64::from_bits)
        .collect())
}

/// Encodes an `f32` column by widening bit patterns into the `f64` path
/// (the window logic adapts to the 32 noisy low bits being zero).
#[must_use]
pub fn encode_f32_column(values: &[f32]) -> Vec<u8> {
    let mut w = BitWriter::new();
    encode_f64_bits(&mut w, values.iter().map(|v| u64::from(v.to_bits()) << 32));
    w.finish()
}

/// Decodes an `f32` column of `count` values.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is truncated or corrupt.
pub fn decode_f32_column(buf: &[u8], count: usize) -> Result<Vec<f32>, CodecError> {
    let mut r = BitReader::new(buf);
    decode_f64_bits(&mut r, count)?
        .into_iter()
        .map(|bits| {
            if bits & 0xFFFF_FFFF != 0 {
                return Err(CodecError::Corrupt {
                    context: "f32 column has f64-only bits",
                });
            }
            Ok(f32::from_bits(u32::try_from(bits >> 32).unwrap_or(0)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[f64]) {
        let enc = encode_f64_column(values);
        let dec = decode_f64_column(&enc, values.len()).unwrap();
        assert_eq!(dec.len(), values.len());
        for (a, b) in values.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrip_various() {
        roundtrip(&[]);
        roundtrip(&[1.0]);
        roundtrip(&[0.0, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        roundtrip(&[121.47, 121.4701, 121.4702, 121.4702, 121.4800]);
        roundtrip(
            &(0..1000)
                .map(|i| 31.2 + f64::from(i) * 1e-5)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn trajectory_like_data_compresses() {
        let values: Vec<f64> = (0..10_000).map(|i| 121.4 + f64::from(i) * 1e-5).collect();
        let enc = encode_f64_column(&values);
        // The XOR of consecutive ramp values keeps ~45 noisy mantissa bits,
        // so the honest expectation is ~25-30% below raw, not miracles.
        assert!(
            enc.len() * 4 < values.len() * 8 * 3,
            "expected < 6 bytes/value, got {} bytes for {} raw",
            enc.len(),
            values.len() * 8
        );
    }

    #[test]
    fn f32_roundtrip() {
        let values: Vec<f32> = vec![0.0, 42.5, 42.5, 43.0, -1.25, f32::NAN];
        let enc = encode_f32_column(&values);
        let dec = decode_f32_column(&enc, values.len()).unwrap();
        for (a, b) in values.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let enc = encode_f64_column(&[1.0, 2.0, 3.0]);
        assert!(decode_f64_column(&enc[..4], 3).is_err());
    }

    #[test]
    fn corrupt_window_descriptor_is_rejected() {
        // Craft a stream whose window says leading=63, width=64: the
        // decoder must error, not overflow the shift.
        use crate::bitio::BitWriter;
        let mut w = BitWriter::new();
        w.write_bits(0, 64); // first value
        w.write_bit(true); // non-zero xor
        w.write_bit(true); // fresh window
        w.write_bits(63, 6); // leading
        w.write_bits(63, 6); // width - 1 = 63 → width 64
        w.write_bits(u64::MAX, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            decode_f64_bits(&mut r, 2),
            Err(CodecError::Corrupt { .. })
        ));
    }
}
