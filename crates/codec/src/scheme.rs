//! Encoding schemes: the layout × compression grid of Table I.

use blot_model::RecordBatch;
use std::fmt;

use crate::layout;
use crate::CodecError;

/// Physical record layout inside a storage unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Fixed-width binary rows.
    Row,
    /// Column-major with per-column encodings (delta varints, Gorilla
    /// floats, run-length flags).
    Column,
}

/// General-purpose compression applied to the laid-out bytes.
///
/// The three compressors span the speed/ratio spectrum of the paper's
/// Snappy / Gzip / LZMA2 lineup (see the crate docs for the mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compression {
    /// No compression.
    Plain,
    /// Byte-aligned greedy LZ — Snappy-class (fast, modest ratio).
    Lzf,
    /// LZSS + Huffman — Gzip-class (balanced).
    Deflate,
    /// LZ + adaptive range coder — LZMA2-class (slow, high ratio).
    Lzr,
}

impl Compression {
    /// The paper's name for the codec this one stands in for.
    #[must_use]
    pub const fn paper_name(self) -> &'static str {
        match self {
            Self::Plain => "PLAIN",
            Self::Lzf => "SNAPPY",
            Self::Deflate => "GZIP",
            Self::Lzr => "LZMA",
        }
    }
}

/// A complete encoding scheme `E` (Definition 3): layout plus compression.
///
/// [`EncodingScheme::all`] enumerates the seven candidates of the paper's
/// evaluation — `{row, column} × {plain, Lzf, Deflate, Lzr}` minus the
/// uncompressed column store, which is dominated on both size and scan
/// speed ("poor performance in terms of both compression ratio and scan
/// speed", §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodingScheme {
    /// Record layout.
    pub layout: Layout,
    /// Whole-partition compression.
    pub compression: Compression,
}

impl EncodingScheme {
    /// Creates a scheme from its parts.
    #[must_use]
    pub const fn new(layout: Layout, compression: Compression) -> Self {
        Self {
            layout,
            compression,
        }
    }

    /// The seven candidate schemes of the paper's evaluation, in Table I
    /// column order (row-major across the table).
    #[must_use]
    pub fn all() -> Vec<Self> {
        let mut v = Vec::with_capacity(7);
        for compression in [
            Compression::Plain,
            Compression::Lzf,
            Compression::Deflate,
            Compression::Lzr,
        ] {
            for layout in [Layout::Row, Layout::Column] {
                if layout == Layout::Column && compression == Compression::Plain {
                    continue;
                }
                v.push(Self::new(layout, compression));
            }
        }
        v
    }

    /// Every constructible scheme — the full `{row, column} ×
    /// {plain, lzf, deflate, lzr}` grid *including* the dominated
    /// uncompressed column store, in [`SchemeTable`] slot order.
    ///
    /// Use [`all`](Self::all) for the paper's seven evaluation
    /// candidates; use this when a structure must be total over every
    /// scheme a tag can decode to (e.g. calibration tables).
    #[must_use]
    pub const fn grid() -> [Self; 8] {
        [
            Self::new(Layout::Row, Compression::Plain),
            Self::new(Layout::Row, Compression::Lzf),
            Self::new(Layout::Column, Compression::Lzf),
            Self::new(Layout::Row, Compression::Deflate),
            Self::new(Layout::Column, Compression::Deflate),
            Self::new(Layout::Row, Compression::Lzr),
            Self::new(Layout::Column, Compression::Lzr),
            Self::new(Layout::Column, Compression::Plain),
        ]
    }

    /// Stable lowercase label for metric names and machine-readable
    /// output (`"row-lzf"`, `"col-deflate"`, …). Unlike [`Display`]
    /// (paper-style `ROW-LZF`), this never changes shape: it is safe to
    /// embed in dotted metric keys.
    ///
    /// [`Display`]: fmt::Display
    #[must_use]
    pub const fn metric_label(self) -> &'static str {
        match (self.layout, self.compression) {
            (Layout::Row, Compression::Plain) => "row-plain",
            (Layout::Row, Compression::Lzf) => "row-lzf",
            (Layout::Row, Compression::Deflate) => "row-deflate",
            (Layout::Row, Compression::Lzr) => "row-lzr",
            (Layout::Column, Compression::Plain) => "col-plain",
            (Layout::Column, Compression::Lzf) => "col-lzf",
            (Layout::Column, Compression::Deflate) => "col-deflate",
            (Layout::Column, Compression::Lzr) => "col-lzr",
        }
    }

    /// Stable single-byte tag identifying the scheme on the wire.
    #[must_use]
    pub fn tag(self) -> u8 {
        let l = match self.layout {
            Layout::Row => 0u8,
            Layout::Column => 1u8,
        };
        let c = match self.compression {
            Compression::Plain => 0u8,
            Compression::Lzf => 1,
            Compression::Deflate => 2,
            Compression::Lzr => 3,
        };
        (l << 4) | c
    }

    /// Inverse of [`tag`](Self::tag).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] for an unknown tag.
    pub fn from_tag(tag: u8) -> Result<Self, CodecError> {
        let layout = match tag >> 4 {
            0 => Layout::Row,
            1 => Layout::Column,
            _ => {
                return Err(CodecError::Corrupt {
                    context: "unknown layout tag",
                })
            }
        };
        let compression = match tag & 0x0F {
            0 => Compression::Plain,
            1 => Compression::Lzf,
            2 => Compression::Deflate,
            3 => Compression::Lzr,
            _ => {
                return Err(CodecError::Corrupt {
                    context: "unknown compression tag",
                })
            }
        };
        Ok(Self::new(layout, compression))
    }

    /// Encodes a batch into a self-describing storage unit
    /// (`[tag][compressed payload][zone-map footer]`).
    ///
    /// The footer carries the batch's min/max statistics
    /// ([`crate::ZoneMap`]) so scans can skip wholly-out-of-range units
    /// without touching the payload.
    #[must_use]
    pub fn encode(self, batch: &RecordBatch) -> Vec<u8> {
        let laid_out = match self.layout {
            Layout::Row => layout::encode_rows(batch),
            Layout::Column => layout::encode_columns(batch),
        };
        let payload = match self.compression {
            Compression::Plain => laid_out,
            Compression::Lzf => crate::lzf::lzf_compress(&laid_out),
            Compression::Deflate => crate::deflate::deflate_compress(&laid_out),
            Compression::Lzr => crate::lzr::lzr_compress(&laid_out),
        };
        let mut out = Vec::with_capacity(payload.len() + 1 + crate::ZONE_MAP_FOOTER_LEN);
        out.push(self.tag());
        out.extend_from_slice(&payload);
        crate::ZoneMap::from_batch(batch).append_to(&mut out);
        out
    }

    /// Decodes a storage unit produced by [`encode`](Self::encode),
    /// verifying the scheme tag.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::SchemeMismatch`] if the unit was written by a
    /// different scheme, or any decoding error from the layers below.
    pub fn decode(self, bytes: &[u8]) -> Result<RecordBatch, CodecError> {
        let (&tag, payload) = bytes.split_first().ok_or(CodecError::UnexpectedEof {
            context: "scheme tag",
        })?;
        if tag != self.tag() {
            return Err(CodecError::SchemeMismatch {
                found: tag,
                expected: self.tag(),
            });
        }
        // Strip (and validate) the zone-map footer: the decompressors
        // reject trailing bytes, and a damaged footer means a damaged
        // unit even when the payload survives.
        let (payload, _zone_map) = crate::ZoneMap::split_footer(payload)?;
        let laid_out = match self.compression {
            Compression::Plain => payload.to_vec(),
            Compression::Lzf => crate::lzf::lzf_decompress(payload)?,
            Compression::Deflate => crate::deflate::deflate_decompress(payload)?,
            Compression::Lzr => crate::lzr::lzr_decompress(payload)?,
        };
        match self.layout {
            Layout::Row => layout::decode_rows(&laid_out),
            Layout::Column => layout::decode_columns(&laid_out),
        }
    }

    /// Decodes a storage unit whose scheme is read from its own tag.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for unknown tags or payload corruption.
    pub fn decode_auto(bytes: &[u8]) -> Result<(Self, RecordBatch), CodecError> {
        let &tag = bytes.first().ok_or(CodecError::UnexpectedEof {
            context: "scheme tag",
        })?;
        let scheme = Self::from_tag(tag)?;
        Ok((scheme, scheme.decode(bytes)?))
    }
}

/// A dense, total map from **every** constructible [`EncodingScheme`]
/// to a `T` — the enum-indexed replacement for `HashMap<EncodingScheme,
/// T>` lookups whose "key always present" contract used to be a
/// documented panic.
///
/// Because the table is built by evaluating a closure on the full
/// [`EncodingScheme::grid`], lookups are infallible by construction:
/// there is no panic path and nothing for the workspace audit to waive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeTable<T>([T; 8]);

impl<T> SchemeTable<T> {
    /// Builds the table by evaluating `fill` on every scheme in
    /// [`EncodingScheme::grid`] order.
    #[must_use]
    pub fn build(mut fill: impl FnMut(EncodingScheme) -> T) -> Self {
        let [a, b, c, d, e, f, g, h] = EncodingScheme::grid();
        Self([
            fill(a),
            fill(b),
            fill(c),
            fill(d),
            fill(e),
            fill(f),
            fill(g),
            fill(h),
        ])
    }

    /// The entry for `scheme`. Total: every constructible scheme has a
    /// slot.
    #[must_use]
    pub fn get(&self, scheme: EncodingScheme) -> &T {
        let [rp, rl, cl, rd, cd, rz, cz, cp] = &self.0;
        match (scheme.layout, scheme.compression) {
            (Layout::Row, Compression::Plain) => rp,
            (Layout::Row, Compression::Lzf) => rl,
            (Layout::Column, Compression::Lzf) => cl,
            (Layout::Row, Compression::Deflate) => rd,
            (Layout::Column, Compression::Deflate) => cd,
            (Layout::Row, Compression::Lzr) => rz,
            (Layout::Column, Compression::Lzr) => cz,
            (Layout::Column, Compression::Plain) => cp,
        }
    }

    /// Iterates `(scheme, value)` pairs in [`EncodingScheme::grid`]
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (EncodingScheme, &T)> {
        EncodingScheme::grid().into_iter().zip(self.0.iter())
    }
}

impl std::str::FromStr for EncodingScheme {
    type Err = String;

    /// Parses the [`Display`](fmt::Display) form, e.g. `COL-LZMA`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::all()
            .into_iter()
            .find(|scheme| scheme.to_string().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                let names: Vec<String> = Self::all().iter().map(ToString::to_string).collect();
                format!(
                    "unknown encoding scheme `{s}`; expected one of {}",
                    names.join(", ")
                )
            })
    }
}

impl fmt::Display for EncodingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = match self.layout {
            Layout::Row => "ROW",
            Layout::Column => "COL",
        };
        write!(f, "{l}-{}", self.compression.paper_name())
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss
)]
mod tests {
    use super::*;
    use blot_model::Record;

    fn batch(n: usize) -> RecordBatch {
        (0..n)
            .map(|i| {
                let mut r = Record::new(
                    (i % 8) as u32,
                    1000 + (i as i64) * 15,
                    121.0 + (i as f64) * 1e-4,
                    31.0 + (i as f64) * 1e-5,
                );
                r.speed = (i % 60) as f32;
                r.occupied = i % 2 == 0;
                r
            })
            .collect()
    }

    #[test]
    fn exactly_seven_schemes() {
        let all = EncodingScheme::all();
        assert_eq!(all.len(), 7);
        assert!(!all.contains(&EncodingScheme::new(Layout::Column, Compression::Plain)));
        let names: Vec<String> = all.iter().map(ToString::to_string).collect();
        assert!(names.contains(&"ROW-PLAIN".to_owned()));
        assert!(names.contains(&"COL-LZMA".to_owned()));
    }

    #[test]
    fn grid_covers_every_scheme_exactly_once() {
        let grid = EncodingScheme::grid();
        let mut tags: Vec<u8> = grid.iter().map(|s| s.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 8);
        for s in EncodingScheme::all() {
            assert!(grid.contains(&s));
        }
        assert!(grid.contains(&EncodingScheme::new(Layout::Column, Compression::Plain)));
    }

    #[test]
    fn metric_labels_are_unique_and_lowercase() {
        let grid = EncodingScheme::grid();
        let mut labels: Vec<&str> = grid.iter().map(|s| s.metric_label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
        for s in grid {
            let label = s.metric_label();
            assert_eq!(label, label.to_lowercase());
            assert!(!label.contains(' '));
        }
    }

    #[test]
    fn scheme_table_is_total_and_ordered() {
        let table = SchemeTable::build(|s| s.tag());
        for s in EncodingScheme::grid() {
            assert_eq!(*table.get(s), s.tag());
        }
        let pairs: Vec<(EncodingScheme, u8)> = table.iter().map(|(s, &t)| (s, t)).collect();
        assert_eq!(pairs.len(), 8);
        for (s, t) in pairs {
            assert_eq!(s.tag(), t);
        }
    }

    #[test]
    fn tags_are_unique_and_reversible() {
        let all = EncodingScheme::all();
        let mut tags: Vec<u8> = all.iter().map(|s| s.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 7);
        for s in all {
            assert_eq!(EncodingScheme::from_tag(s.tag()).unwrap(), s);
        }
        assert!(EncodingScheme::from_tag(0xFF).is_err());
    }

    #[test]
    fn every_scheme_roundtrips() {
        let b = batch(800);
        let mut sorted = b.clone();
        sorted.sort_by_oid_time();
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&b);
            let dec = scheme.decode(&bytes).unwrap();
            match scheme.layout {
                Layout::Row => assert_eq!(dec, b, "{scheme}"),
                Layout::Column => assert_eq!(dec, sorted, "{scheme}"),
            }
            let (auto_scheme, auto_dec) = EncodingScheme::decode_auto(&bytes).unwrap();
            assert_eq!(auto_scheme, scheme);
            assert_eq!(auto_dec.len(), b.len());
        }
    }

    #[test]
    fn scheme_mismatch_is_detected() {
        let b = batch(10);
        let row = EncodingScheme::new(Layout::Row, Compression::Plain);
        let col = EncodingScheme::new(Layout::Column, Compression::Lzf);
        let bytes = row.encode(&b);
        assert!(matches!(
            col.decode(&bytes),
            Err(CodecError::SchemeMismatch { .. })
        ));
    }

    #[test]
    fn compression_ratio_ordering_matches_table_one() {
        // On trajectory-like data: PLAIN > LZF > DEFLATE >= LZR in size,
        // and COL < ROW for every codec.
        let b = batch(20_000);
        let size = |l, c| EncodingScheme::new(l, c).encode(&b).len() as f64;
        let row_plain = size(Layout::Row, Compression::Plain);
        let row_lzf = size(Layout::Row, Compression::Lzf);
        let row_def = size(Layout::Row, Compression::Deflate);
        let row_lzr = size(Layout::Row, Compression::Lzr);
        assert!(
            row_plain > row_lzf && row_lzf > row_def && row_def > row_lzr,
            "row sizes: plain={row_plain} lzf={row_lzf} deflate={row_def} lzr={row_lzr}"
        );
        for c in [Compression::Lzf, Compression::Deflate, Compression::Lzr] {
            assert!(
                size(Layout::Column, c) < size(Layout::Row, c),
                "column must beat row under {c:?}"
            );
        }
    }
}
