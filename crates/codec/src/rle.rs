//! Byte-level run-length encoding for low-cardinality columns.
//!
//! Occupancy flags and passenger counts change rarely along a trajectory,
//! so their columns are long runs of identical bytes. Runs are stored as
//! `(varint length, byte)` pairs.

use crate::varint::{read_varint_u64, write_varint_u64};
use crate::CodecError;

/// Encodes `data` as `(run-length, value)` pairs prefixed by the total
/// decoded length.
#[must_use]
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + data.len() / 16);
    write_varint_u64(&mut out, data.len() as u64);
    let mut rest = data;
    while let Some((&value, _)) = rest.split_first() {
        let run = rest.iter().take_while(|&&b| b == value).count();
        write_varint_u64(&mut out, run as u64);
        out.push(value);
        rest = rest.get(run..).unwrap_or_default();
    }
    out
}

/// Decodes a stream produced by [`rle_encode`].
///
/// # Errors
///
/// Returns a [`CodecError`] when the stream is truncated or the run
/// lengths do not add up to the declared total.
pub fn rle_decode(buf: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    rle_decode_into(buf, &mut out)?;
    Ok(out)
}

/// [`rle_decode`] into a caller-owned buffer (cleared first), so batch
/// scan loops reuse one allocation across units.
///
/// # Errors
///
/// Same as [`rle_decode`].
pub fn rle_decode_into(buf: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let mut pos = 0;
    let total = read_varint_u64(buf, &mut pos)?;
    // Refuse declared lengths no valid stream could carry (1 GiB cap).
    if total > (1 << 30) {
        return Err(CodecError::TooLarge { declared: total });
    }
    let total = usize::try_from(total).map_err(|_| CodecError::TooLarge { declared: total })?;
    out.clear();
    out.reserve(total);
    while out.len() < total {
        let run = read_varint_u64(buf, &mut pos)?;
        let run = usize::try_from(run).map_err(|_| CodecError::TooLarge { declared: run })?;
        if run == 0 {
            return Err(CodecError::Corrupt {
                context: "zero-length RLE run",
            });
        }
        let &value = buf.get(pos).ok_or(CodecError::UnexpectedEof {
            context: "RLE value byte",
        })?;
        pos += 1;
        if out.len() + run > total {
            return Err(CodecError::Corrupt {
                context: "RLE runs exceed declared length",
            });
        }
        out.resize(out.len() + run, value);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_runs_and_noise() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 1000],
            vec![1, 1, 1, 2, 2, 3],
            (0..=255u8).collect(),
        ];
        for case in cases {
            assert_eq!(rle_decode(&rle_encode(&case)).unwrap(), case);
        }
    }

    #[test]
    fn long_runs_compress_well() {
        let data = vec![1u8; 100_000];
        let enc = rle_encode(&data);
        assert!(enc.len() < 10);
    }

    #[test]
    fn corrupt_streams_error() {
        // Truncated after header.
        let enc = rle_encode(&[1, 1, 1]);
        assert!(rle_decode(&enc[..1]).is_err());
        // Run overflowing declared total.
        let mut bad = Vec::new();
        write_varint_u64(&mut bad, 2); // total = 2
        write_varint_u64(&mut bad, 3); // run of 3 > 2
        bad.push(9);
        assert!(matches!(rle_decode(&bad), Err(CodecError::Corrupt { .. })));
    }
}
