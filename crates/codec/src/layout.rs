//! Physical layouts: fixed-width binary rows and encoded columns.
//!
//! The row layout stores records back to back in little-endian binary —
//! the paper's "binary format instead of text format" baseline whose size
//! also anchors compression ratios (`ROW-PLAIN` ratio 1 in Table I).
//!
//! The column layout reorders the batch by `(oid, time)` and stores each
//! attribute contiguously with a per-column encoding:
//!
//! | column      | encoding                                  |
//! |-------------|-------------------------------------------|
//! | `oid`       | delta + zigzag varint (sorted ⇒ tiny)     |
//! | `time`      | delta + zigzag varint (sorted runs)       |
//! | `x`, `y`    | Gorilla XOR float compression             |
//! | `speed`, `heading` | Gorilla XOR (f32 widened)          |
//! | `occupied`  | run-length encoding                       |
//! | `passengers`| run-length encoding                       |
//!
//! Reordering is legal because a partition is a *set* of records
//! (Definition 2); queries filter by range, never by original input
//! order.

use blot_model::RecordBatch;

use crate::gorilla;
use crate::varint::{read_varint_i64, read_varint_u64, write_varint_i64, write_varint_u64};
use crate::CodecError;

/// Bytes per record in the row layout:
/// `4 (oid) + 8 (time) + 8 (x) + 8 (y) + 4 (speed) + 4 (heading) + 1 + 1`.
pub const ROW_WIDTH: usize = 38;

/// Safety cap on record counts declared in stream headers (2^26 records
/// ≈ 2.5 GiB of row data — far beyond any storage unit).
const MAX_RECORDS: u64 = 1 << 26;

/// Serialises a batch in the row layout.
#[must_use]
pub fn encode_rows(batch: &RecordBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + batch.len() * ROW_WIDTH);
    write_varint_u64(&mut out, batch.len() as u64);
    for r in batch.iter() {
        out.extend_from_slice(&r.oid.to_le_bytes());
        out.extend_from_slice(&r.time.to_le_bytes());
        out.extend_from_slice(&r.x.to_le_bytes());
        out.extend_from_slice(&r.y.to_le_bytes());
        out.extend_from_slice(&r.speed.to_le_bytes());
        out.extend_from_slice(&r.heading.to_le_bytes());
        out.push(u8::from(r.occupied));
        out.push(r.passengers);
    }
    out
}

fn take<const N: usize>(
    buf: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<[u8; N], CodecError> {
    let end = *pos + N;
    let arr = buf
        .get(*pos..end)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(CodecError::UnexpectedEof { context: what })?;
    *pos = end;
    Ok(arr)
}

/// Deserialises a row-layout stream.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncation or an absurd record count.
pub fn decode_rows(buf: &[u8]) -> Result<RecordBatch, CodecError> {
    let mut pos = 0usize;
    let count = read_varint_u64(buf, &mut pos)?;
    if count > MAX_RECORDS {
        return Err(CodecError::TooLarge { declared: count });
    }
    let count = usize::try_from(count).map_err(|_| CodecError::TooLarge { declared: count })?;
    let mut batch = RecordBatch::with_capacity(count);
    for _ in 0..count {
        let oid = u32::from_le_bytes(take::<4>(buf, &mut pos, "row oid")?);
        let time = i64::from_le_bytes(take::<8>(buf, &mut pos, "row time")?);
        let x = f64::from_le_bytes(take::<8>(buf, &mut pos, "row x")?);
        let y = f64::from_le_bytes(take::<8>(buf, &mut pos, "row y")?);
        let speed = f32::from_le_bytes(take::<4>(buf, &mut pos, "row speed")?);
        let heading = f32::from_le_bytes(take::<4>(buf, &mut pos, "row heading")?);
        let occ = take::<1>(buf, &mut pos, "row occupied")?[0];
        let passengers = take::<1>(buf, &mut pos, "row passengers")?[0];
        batch.push(blot_model::Record {
            oid,
            time,
            x,
            y,
            speed,
            heading,
            occupied: occ != 0,
            passengers,
        });
    }
    Ok(batch)
}

fn write_chunk(out: &mut Vec<u8>, chunk: &[u8]) {
    write_varint_u64(out, chunk.len() as u64);
    out.extend_from_slice(chunk);
}

fn read_chunk<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CodecError> {
    let len = read_varint_u64(buf, pos)?;
    let len = usize::try_from(len).map_err(|_| CodecError::TooLarge { declared: len })?;
    let chunk = pos
        .checked_add(len)
        .and_then(|end| buf.get(*pos..end))
        .ok_or(CodecError::UnexpectedEof {
            context: "column chunk",
        })?;
    *pos += len;
    Ok(chunk)
}

/// Serialises a batch in the column layout. The batch is sorted by
/// `(oid, time)` as part of encoding.
#[must_use]
pub fn encode_columns(batch: &RecordBatch) -> Vec<u8> {
    let mut sorted = batch.clone();
    sorted.sort_by_oid_time();
    let n = sorted.len();
    let mut out = Vec::with_capacity(16 + n * 12);
    write_varint_u64(&mut out, n as u64);

    // oid column: deltas of a non-decreasing sequence.
    let mut col = Vec::with_capacity(n * 2);
    let mut prev = 0i64;
    for &oid in &sorted.oids {
        write_varint_i64(&mut col, i64::from(oid) - prev);
        prev = i64::from(oid);
    }
    write_chunk(&mut out, &col);

    // time column: deltas, small within each oid run.
    col.clear();
    let mut prev = 0i64;
    for &t in &sorted.times {
        write_varint_i64(&mut col, t.wrapping_sub(prev));
        prev = t;
    }
    write_chunk(&mut out, &col);

    write_chunk(&mut out, &gorilla::encode_f64_column(&sorted.xs));
    write_chunk(&mut out, &gorilla::encode_f64_column(&sorted.ys));
    write_chunk(&mut out, &gorilla::encode_f32_column(&sorted.speeds));
    write_chunk(&mut out, &gorilla::encode_f32_column(&sorted.headings));

    let occ_bytes: Vec<u8> = sorted.occupied.iter().map(|&b| u8::from(b)).collect();
    write_chunk(&mut out, &crate::rle::rle_encode(&occ_bytes));
    write_chunk(&mut out, &crate::rle::rle_encode(&sorted.passengers));
    out
}

/// Deserialises a column-layout stream. Records come back in
/// `(oid, time)` order.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncation, bad chunk framing, or column
/// length mismatches.
pub fn decode_columns(buf: &[u8]) -> Result<RecordBatch, CodecError> {
    let mut pos = 0usize;
    let count = read_varint_u64(buf, &mut pos)?;
    if count > MAX_RECORDS {
        return Err(CodecError::TooLarge { declared: count });
    }
    let n = usize::try_from(count).map_err(|_| CodecError::TooLarge { declared: count })?;

    let chunk = read_chunk(buf, &mut pos)?;
    let mut oids = Vec::with_capacity(n);
    let mut cpos = 0usize;
    let mut prev = 0i64;
    for _ in 0..n {
        prev += read_varint_i64(chunk, &mut cpos)?;
        let oid = u32::try_from(prev).map_err(|_| CodecError::Corrupt {
            context: "oid column out of range",
        })?;
        oids.push(oid);
    }

    let chunk = read_chunk(buf, &mut pos)?;
    let mut times = Vec::with_capacity(n);
    let mut cpos = 0usize;
    let mut prev = 0i64;
    for _ in 0..n {
        prev = prev.wrapping_add(read_varint_i64(chunk, &mut cpos)?);
        times.push(prev);
    }

    let xs = gorilla::decode_f64_column(read_chunk(buf, &mut pos)?, n)?;
    let ys = gorilla::decode_f64_column(read_chunk(buf, &mut pos)?, n)?;
    let speeds = gorilla::decode_f32_column(read_chunk(buf, &mut pos)?, n)?;
    let headings = gorilla::decode_f32_column(read_chunk(buf, &mut pos)?, n)?;

    let occ_bytes = crate::rle::rle_decode(read_chunk(buf, &mut pos)?)?;
    let passengers = crate::rle::rle_decode(read_chunk(buf, &mut pos)?)?;
    if occ_bytes.len() != n || passengers.len() != n {
        return Err(CodecError::Corrupt {
            context: "column length mismatch",
        });
    }
    Ok(RecordBatch {
        oids,
        times,
        xs,
        ys,
        speeds,
        headings,
        occupied: occ_bytes.into_iter().map(|b| b != 0).collect(),
        passengers,
    })
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss
)]
mod tests {
    use super::*;
    use blot_model::Record;

    fn trajectory_batch(n: usize) -> RecordBatch {
        (0..n)
            .map(|i| {
                let oid = (i % 16) as u32;
                let step = (i / 16) as i64;
                Record {
                    oid,
                    time: 1_000_000 + step * 30,
                    x: 121.4 + (step as f64) * 1e-4 + f64::from(oid) * 1e-3,
                    y: 31.2 + (step as f64) * 5e-5,
                    speed: 30.0 + (i % 7) as f32,
                    heading: ((i * 13) % 360) as f32,
                    occupied: (i / 50) % 2 == 0,
                    passengers: ((i / 100) % 3) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn row_roundtrip_exact() {
        let batch = trajectory_batch(500);
        let enc = encode_rows(&batch);
        assert_eq!(enc.len(), 2 + 500 * ROW_WIDTH);
        let dec = decode_rows(&enc).unwrap();
        assert_eq!(dec, batch);
    }

    #[test]
    fn column_roundtrip_is_sorted_set_equal() {
        let batch = trajectory_batch(500);
        let enc = encode_columns(&batch);
        let dec = decode_columns(&enc).unwrap();
        let mut expect = batch.clone();
        expect.sort_by_oid_time();
        assert_eq!(dec, expect);
    }

    #[test]
    fn columns_are_smaller_than_rows_on_trajectories() {
        let batch = trajectory_batch(20_000);
        let rows = encode_rows(&batch).len();
        let cols = encode_columns(&batch).len();
        assert!(
            cols * 2 < rows,
            "columns ({cols}) should be well under half the rows ({rows})"
        );
    }

    #[test]
    fn empty_batch_roundtrips() {
        let b = RecordBatch::new();
        assert_eq!(decode_rows(&encode_rows(&b)).unwrap(), b);
        assert_eq!(decode_columns(&encode_columns(&b)).unwrap(), b);
    }

    #[test]
    fn truncation_is_detected() {
        let batch = trajectory_batch(50);
        let rows = encode_rows(&batch);
        assert!(decode_rows(&rows[..rows.len() - 3]).is_err());
        let cols = encode_columns(&batch);
        assert!(decode_columns(&cols[..cols.len() / 2]).is_err());
    }

    #[test]
    fn negative_time_deltas_roundtrip() {
        // Unsorted times within an oid exercise signed deltas.
        let mut b = RecordBatch::new();
        b.push(Record::new(1, 100, 0.0, 0.0));
        b.push(Record::new(1, -50, 0.0, 0.0));
        b.push(Record::new(0, 99, 0.0, 0.0));
        let dec = decode_columns(&encode_columns(&b)).unwrap();
        assert_eq!(dec.times, vec![99, -50, 100]);
        assert_eq!(dec.oids, vec![0, 1, 1]);
    }
}
