//! LSB-first bit-level IO used by the Huffman and Gorilla coders.

use crate::CodecError;

/// Writes bits least-significant-bit first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    bit_pos: u32,
    current: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `bits`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, bits: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in 0..count {
            let bit = u8::from((bits >> i) & 1 != 0);
            self.current |= bit << self.bit_pos;
            self.bit_pos += 1;
            if self.bit_pos == 8 {
                self.buf.push(self.current);
                self.current = 0;
                self.bit_pos = 0;
            }
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + usize::try_from(self.bit_pos).unwrap_or(0)
    }

    /// Pads the final partial byte with zeros and returns the buffer.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        if self.bit_pos > 0 {
            self.buf.push(self.current);
        }
        self.buf
    }
}

/// Reads bits least-significant-bit first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    byte_pos: usize,
    bit_pos: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            byte_pos: 0,
            bit_pos: 0,
        }
    }

    /// Reads `count` bits, LSB first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CodecError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut out = 0u64;
        for i in 0..count {
            let Some(&byte) = self.buf.get(self.byte_pos) else {
                return Err(CodecError::UnexpectedEof {
                    context: "bit stream",
                });
            };
            let bit = u64::from((byte >> self.bit_pos) & 1);
            out |= bit << i;
            self.bit_pos += 1;
            if self.bit_pos == 8 {
                self.bit_pos = 0;
                self.byte_pos += 1;
            }
        }
        Ok(out)
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Number of bits consumed so far.
    #[must_use]
    pub fn bits_read(&self) -> usize {
        self.byte_pos * 8 + usize::try_from(self.bit_pos).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bit(true);
        w.write_bits(0x1234_5678_9ABC_DEF0, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(64).unwrap(), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn eof_is_reported() {
        let bytes = BitWriter::new().finish();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            r.read_bit(),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 11);
        assert_eq!(w.bit_len(), 11);
        assert_eq!(w.finish().len(), 2);
    }

    #[test]
    fn zero_width_reads_and_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 0);
        let bytes = w.finish();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }
}
