//! `Lzf` — the Snappy-class compressor: byte-aligned greedy LZ.
//!
//! Stands in for Snappy in the paper's encoding-scheme lineup: modest
//! compression ratio, very fast encode and decode. The format follows the
//! spirit of libLZF:
//!
//! * control byte `0..=31`: a literal run of `ctrl + 1` bytes follows;
//! * control byte `≥ 32`: a back-reference. The top 3 bits hold
//!   `len - 2` (7 ⇒ an extension byte with `len - 9` follows), the low
//!   5 bits are the high bits of `offset - 1`, and one more byte holds
//!   the low offset bits.
//!
//! Matching uses a single-probe hash table — one candidate per position —
//! which is what makes it fast.

use crate::varint::{read_varint_u64, write_varint_u64};
use crate::CodecError;

const WINDOW: usize = 1 << 13; // max offset 8192
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 264;
const MAX_LITERAL_RUN: usize = 32;
const HASH_BITS: u32 = 14;

/// Safety limit on declared decompressed sizes (1 GiB).
const MAX_DECODED: u64 = 1 << 30;

fn hash3(data: &[u8], pos: usize) -> Option<usize> {
    let &[a, b, c] = data.get(pos..pos.checked_add(3)?)? else {
        return None;
    };
    let v = u32::from(a) | u32::from(b) << 8 | u32::from(c) << 16;
    Some((v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize)
}

/// Compresses `data`. The output starts with the decoded length as a
/// varint; incompressible data expands by at most ~3% plus the header.
#[must_use]
pub fn lzf_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    write_varint_u64(&mut out, data.len() as u64);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut s = from;
        while s < to {
            let run = (to - s).min(MAX_LITERAL_RUN);
            // run <= MAX_LITERAL_RUN, so run - 1 always fits a byte.
            out.push(u8::try_from(run - 1).unwrap_or(u8::MAX));
            out.extend_from_slice(data.get(s..s + run).unwrap_or_default());
            s += run;
        }
    };

    while pos + MIN_MATCH <= data.len() {
        let Some(h) = hash3(data, pos) else { break };
        let cand = table.get(h).copied().unwrap_or(usize::MAX);
        if let Some(slot) = table.get_mut(h) {
            *slot = pos;
        }
        let mut matched = 0usize;
        if cand != usize::MAX && pos - cand <= WINDOW {
            let max_len = MAX_MATCH.min(data.len() - pos);
            matched = data
                .get(cand..cand + max_len)
                .unwrap_or_default()
                .iter()
                .zip(data.get(pos..pos + max_len).unwrap_or_default())
                .take_while(|(a, b)| a == b)
                .count();
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, literal_start, pos);
            let off = pos - cand - 1;
            let l = matched - 2;
            // off < WINDOW (8 KiB), so off >> 8 fits in 5 bits; the
            // length fields are bounded by MAX_MATCH.
            let off_hi = u8::try_from(off >> 8).unwrap_or(0x1F);
            if l < 7 {
                out.push((u8::try_from(l).unwrap_or(7) << 5) | off_hi);
            } else {
                out.push((7u8 << 5) | off_hi);
                out.push(u8::try_from(l - 7).unwrap_or(u8::MAX));
            }
            out.push(u8::try_from(off & 0xFF).unwrap_or(0xFF));
            // Seed the table inside the match so later data can reference it.
            let end = pos + matched;
            pos += 1;
            while pos < end && pos + MIN_MATCH <= data.len() {
                if let Some(h) = hash3(data, pos) {
                    if let Some(slot) = table.get_mut(h) {
                        *slot = pos;
                    }
                }
                pos += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, literal_start, data.len());
    out
}

/// Decompresses a stream produced by [`lzf_compress`].
///
/// # Errors
///
/// Returns a [`CodecError`] on truncation, bad back-references, or a
/// length mismatch.
pub fn lzf_decompress(buf: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let declared = read_varint_u64(buf, &mut pos)?;
    if declared > MAX_DECODED {
        return Err(CodecError::TooLarge { declared });
    }
    let declared = usize::try_from(declared).map_err(|_| CodecError::TooLarge { declared })?;
    let mut out = Vec::with_capacity(declared);
    while let Some(&ctrl) = buf.get(pos) {
        pos += 1;
        if ctrl < 32 {
            let run = usize::from(ctrl) + 1;
            let end = pos + run;
            let lits = buf.get(pos..end).ok_or(CodecError::UnexpectedEof {
                context: "LZF literal run",
            })?;
            out.extend_from_slice(lits);
            pos = end;
        } else {
            let mut len = usize::from(ctrl >> 5) + 2;
            if len == 9 {
                // l == 7 marker: extension byte follows.
                let &ext = buf.get(pos).ok_or(CodecError::UnexpectedEof {
                    context: "LZF length extension",
                })?;
                pos += 1;
                len = usize::from(ext) + 9;
            }
            let &low = buf.get(pos).ok_or(CodecError::UnexpectedEof {
                context: "LZF offset byte",
            })?;
            pos += 1;
            let off = (usize::from(ctrl & 0x1F) << 8 | usize::from(low)) + 1;
            if off > out.len() {
                return Err(CodecError::BadReference {
                    offset: off,
                    decoded_len: out.len(),
                });
            }
            let start = out.len() - off;
            for i in 0..len {
                let b = out
                    .get(start + i)
                    .copied()
                    .ok_or(CodecError::BadReference {
                        offset: off,
                        decoded_len: out.len(),
                    })?;
                out.push(b);
            }
        }
    }
    if out.len() != declared {
        return Err(CodecError::Corrupt {
            context: "LZF decoded length mismatch",
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let enc = lzf_compress(data);
        let dec = lzf_decompress(&enc).unwrap();
        assert_eq!(dec, data);
        enc.len()
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(&(0..=255u8).collect::<Vec<_>>());
    }

    #[test]
    fn compresses_repetitive_data() {
        let data = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .copied()
            .cycle()
            .take(10_000)
            .collect::<Vec<_>>();
        let n = roundtrip(&data);
        assert!(n < data.len() / 5, "{n} bytes for {} input", data.len());
    }

    #[test]
    fn handles_long_matches_and_overlap() {
        let mut data = vec![0u8; 5000];
        data.extend(std::iter::repeat_n(b'x', 3000));
        data.extend_from_slice(b"tail");
        roundtrip(&data);
    }

    #[test]
    fn random_data_survives() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let n = roundtrip(&data);
        // Random data must not explode.
        assert!(n < data.len() + data.len() / 16 + 16);
    }

    #[test]
    fn corrupt_input_is_rejected() {
        let enc = lzf_compress(b"hello hello hello hello");
        assert!(lzf_decompress(&enc[..enc.len() - 1]).is_err());
        // Bogus back-reference.
        let mut bad = Vec::new();
        write_varint_u64(&mut bad, 10);
        bad.push(1 << 5); // match len 3, offset high 0
        bad.push(0); // offset low -> off = 1, but nothing decoded yet
        assert!(matches!(
            lzf_decompress(&bad),
            Err(CodecError::BadReference { .. })
        ));
        // Excessive declared size.
        let mut huge = Vec::new();
        write_varint_u64(&mut huge, u64::MAX / 2);
        assert!(matches!(
            lzf_decompress(&huge),
            Err(CodecError::TooLarge { .. })
        ));
    }
}
