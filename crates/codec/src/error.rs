use std::fmt;

/// Error decoding an encoded partition or compressed stream.
///
/// Encoding is infallible (any batch can be encoded); decoding validates
/// the input and reports structural corruption rather than panicking, so
/// that a damaged storage unit surfaces as a recoverable error to the
/// replica-repair path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the decoder finished.
    UnexpectedEof {
        /// What the decoder was reading when the stream ended.
        context: &'static str,
    },
    /// The stream is structurally invalid.
    Corrupt {
        /// Description of the inconsistency.
        context: &'static str,
    },
    /// A back-reference pointed outside the decoded prefix.
    BadReference {
        /// Offset of the bad reference.
        offset: usize,
        /// Length decoded so far.
        decoded_len: usize,
    },
    /// The declared decompressed size exceeds the safety limit.
    TooLarge {
        /// Declared size in bytes.
        declared: u64,
    },
    /// The stream was produced by a different scheme than requested.
    SchemeMismatch {
        /// Scheme tag found in the stream.
        found: u8,
        /// Scheme tag expected by the caller.
        expected: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof { context } => {
                write!(f, "unexpected end of stream while reading {context}")
            }
            Self::Corrupt { context } => write!(f, "corrupt stream: {context}"),
            Self::BadReference {
                offset,
                decoded_len,
            } => write!(
                f,
                "back-reference offset {offset} exceeds decoded prefix of {decoded_len} bytes"
            ),
            Self::TooLarge { declared } => {
                write!(
                    f,
                    "declared decompressed size {declared} exceeds safety limit"
                )
            }
            Self::SchemeMismatch { found, expected } => {
                write!(
                    f,
                    "stream encoded with scheme tag {found}, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

// Compile-time guarantee that the error type is usable across threads
// and in `Box<dyn Error>` chains; `cargo xtask lint` (rule
// `error-traits`) checks that this assertion exists.
const _: () = {
    const fn require_error_traits<E: std::error::Error + Send + Sync>() {}
    require_error_traits::<CodecError>()
};
