//! `Deflate` — the Gzip-class compressor: LZSS + canonical Huffman.
//!
//! Stands in for Gzip in the paper's encoding-scheme lineup. The design
//! mirrors RFC 1951 (the same literal/length and distance slot tables)
//! without being wire-compatible: a single block per input, with the two
//! code-length vectors stored run-length encoded in the header.
//!
//! Stream layout:
//!
//! ```text
//! varint   decoded length
//! varint   header length  |  RLE(lit/len code lengths ‖ dist code lengths)
//! bits     Huffman-coded symbols, terminated by the EOB symbol (256)
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{build_lengths, HuffmanDecoder, HuffmanEncoder, MAX_CODE_LEN};
use crate::lz77::MatchFinder;
use crate::rle::{rle_decode, rle_encode};
use crate::varint::{read_varint_u64, write_varint_u64};
use crate::CodecError;

const WINDOW: usize = 1 << 15;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const MAX_CHAIN: usize = 64;

const LITLEN_SYMBOLS: usize = 286; // 0..=255 literals, 256 EOB, 257..=285 lengths
const DIST_SYMBOLS: usize = 30;
const EOB: u16 = 256;

/// DEFLATE length-code table: `(base_length, extra_bits)` for codes
/// 257..=285.
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// DEFLATE distance-slot table: `(base_distance, extra_bits)` for slots
/// 0..=29.
const DIST_TABLE: [(u32, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

fn length_symbol(len: usize) -> (u16, u8, u16) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    // Length 258 belongs to the dedicated final slot, not the longest
    // extra-bits range; for every other length take the last slot whose
    // base does not exceed it.
    let slot = LEN_TABLE
        .iter()
        .rposition(|&(base, _)| usize::from(base) <= len)
        .unwrap_or(0);
    let (base, extra) = LEN_TABLE.get(slot).copied().unwrap_or((3, 0));
    (
        // slot < 29 and the offset fits the slot's extra bits.
        257 + u16::try_from(slot).unwrap_or(28),
        extra,
        u16::try_from(len.saturating_sub(usize::from(base))).unwrap_or(u16::MAX),
    )
}

fn dist_symbol(dist: usize) -> (u16, u8, u32) {
    debug_assert!((1..=WINDOW).contains(&dist));
    let slot = DIST_TABLE
        .iter()
        .rposition(|&(base, _)| base as usize <= dist)
        .unwrap_or(0);
    let (base, extra) = DIST_TABLE.get(slot).copied().unwrap_or((1, 0));
    (
        // slot < 30 and the offset fits the slot's extra bits.
        u16::try_from(slot).unwrap_or(29),
        extra,
        u32::try_from(dist.saturating_sub(base as usize)).unwrap_or(u32::MAX),
    )
}

enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

fn lz_parse(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 4 + 1);
    let mut mf = MatchFinder::new(data.len(), WINDOW, MIN_MATCH, MAX_MATCH, MAX_CHAIN);
    let mut pos = 0;
    while pos < data.len() {
        match mf.find(data, pos) {
            Some(m) => {
                tokens.push(Token::Match {
                    len: m.len,
                    dist: m.dist,
                });
                for p in pos..pos + m.len {
                    mf.insert(data, p);
                }
                pos += m.len;
            }
            None => {
                let Some(&b) = data.get(pos) else { break };
                tokens.push(Token::Literal(b));
                mf.insert(data, pos);
                pos += 1;
            }
        }
    }
    tokens
}

/// Compresses `data`.
#[must_use]
pub fn deflate_compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz_parse(data);

    // Gather symbol statistics.
    let mut lit_freq = vec![0u64; LITLEN_SYMBOLS];
    let mut dist_freq = vec![0u64; DIST_SYMBOLS];
    let bump = |freq: &mut Vec<u64>, sym: usize| {
        if let Some(f) = freq.get_mut(sym) {
            *f += 1;
        }
    };
    bump(&mut lit_freq, usize::from(EOB));
    for t in &tokens {
        match *t {
            Token::Literal(b) => bump(&mut lit_freq, usize::from(b)),
            Token::Match { len, dist } => {
                bump(&mut lit_freq, usize::from(length_symbol(len).0));
                bump(&mut dist_freq, usize::from(dist_symbol(dist).0));
            }
        }
    }
    let lit_lengths = build_lengths(&lit_freq, MAX_CODE_LEN);
    let dist_lengths = build_lengths(&dist_freq, MAX_CODE_LEN);

    let mut out = Vec::with_capacity(data.len() / 3 + 64);
    write_varint_u64(&mut out, data.len() as u64);
    let mut header = Vec::with_capacity(LITLEN_SYMBOLS + DIST_SYMBOLS);
    header.extend_from_slice(&lit_lengths);
    header.extend_from_slice(&dist_lengths);
    let header_rle = rle_encode(&header);
    write_varint_u64(&mut out, header_rle.len() as u64);
    out.extend_from_slice(&header_rle);

    let lit_enc = HuffmanEncoder::from_lengths(&lit_lengths);
    let dist_enc = HuffmanEncoder::from_lengths(&dist_lengths);
    let mut w = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_enc.encode(&mut w, u16::from(b)),
            Token::Match { len, dist } => {
                let (sym, extra, payload) = length_symbol(len);
                lit_enc.encode(&mut w, sym);
                w.write_bits(u64::from(payload), u32::from(extra));
                let (dsym, dextra, dpayload) = dist_symbol(dist);
                dist_enc.encode(&mut w, dsym);
                w.write_bits(u64::from(dpayload), u32::from(dextra));
            }
        }
    }
    lit_enc.encode(&mut w, EOB);
    out.extend_from_slice(&w.finish());
    out
}

/// Decompresses a stream produced by [`deflate_compress`].
///
/// # Errors
///
/// Returns a [`CodecError`] on any structural damage.
pub fn deflate_decompress(buf: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let declared = read_varint_u64(buf, &mut pos)?;
    if declared > (1 << 30) {
        return Err(CodecError::TooLarge { declared });
    }
    let declared = usize::try_from(declared).map_err(|_| CodecError::TooLarge { declared })?;
    let header_len =
        usize::try_from(read_varint_u64(buf, &mut pos)?).map_err(|_| CodecError::Corrupt {
            context: "deflate header length",
        })?;
    let header_end = pos
        .checked_add(header_len)
        .filter(|&e| e <= buf.len())
        .ok_or(CodecError::UnexpectedEof {
            context: "deflate header",
        })?;
    let header = rle_decode(buf.get(pos..header_end).unwrap_or_default())?;
    if header.len() != LITLEN_SYMBOLS + DIST_SYMBOLS {
        return Err(CodecError::Corrupt {
            context: "deflate header length",
        });
    }
    let (lit_lengths, dist_lengths) =
        header
            .split_at_checked(LITLEN_SYMBOLS)
            .ok_or(CodecError::Corrupt {
                context: "deflate header length",
            })?;
    let lit_dec = HuffmanDecoder::from_lengths(lit_lengths);
    let dist_dec = HuffmanDecoder::from_lengths(dist_lengths);

    let mut r = BitReader::new(buf.get(header_end..).unwrap_or_default());
    let mut out = Vec::with_capacity(declared);
    loop {
        let sym = lit_dec.decode(&mut r)?;
        if sym == EOB {
            break;
        }
        if sym < 256 {
            out.push(u8::try_from(sym).unwrap_or(u8::MAX));
            continue;
        }
        let slot = usize::from(sym) - 257;
        let (base, extra) = LEN_TABLE.get(slot).copied().ok_or(CodecError::Corrupt {
            context: "bad length symbol",
        })?;
        // At most 5 extra bits, so the value always fits in usize.
        let len = usize::from(base) + usize::try_from(r.read_bits(u32::from(extra))?).unwrap_or(0);
        let dslot = usize::from(dist_dec.decode(&mut r)?);
        let (dbase, dextra) = DIST_TABLE.get(dslot).copied().ok_or(CodecError::Corrupt {
            context: "bad distance symbol",
        })?;
        // At most 13 extra bits, so the value always fits in usize.
        let dist = dbase as usize + usize::try_from(r.read_bits(u32::from(dextra))?).unwrap_or(0);
        if dist > out.len() {
            return Err(CodecError::BadReference {
                offset: dist,
                decoded_len: out.len(),
            });
        }
        if out.len() + len > declared {
            return Err(CodecError::Corrupt {
                context: "deflate output overruns declared size",
            });
        }
        let start = out.len() - dist;
        for i in 0..len {
            let b = out
                .get(start + i)
                .copied()
                .ok_or(CodecError::BadReference {
                    offset: dist,
                    decoded_len: out.len(),
                })?;
            out.push(b);
        }
    }
    if out.len() != declared {
        return Err(CodecError::Corrupt {
            context: "deflate decoded length mismatch",
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let enc = deflate_compress(data);
        let dec = deflate_decompress(&enc).unwrap();
        assert_eq!(dec, data);
        enc.len()
    }

    #[test]
    fn length_symbol_table_is_consistent() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (sym, extra, payload) = length_symbol(len);
            assert!((257..=285).contains(&sym));
            let (base, table_extra) = LEN_TABLE[usize::from(sym) - 257];
            assert_eq!(extra, table_extra);
            assert_eq!(usize::from(base) + usize::from(payload), len);
            assert!(u32::from(payload) < (1 << u32::from(extra)) || extra == 0);
        }
    }

    #[test]
    fn dist_symbol_table_is_consistent() {
        for dist in 1..=WINDOW {
            let (slot, extra, payload) = dist_symbol(dist);
            let (base, table_extra) = DIST_TABLE[usize::from(slot)];
            assert_eq!(extra, table_extra);
            assert_eq!(base as usize + payload as usize, dist);
        }
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaa");
        roundtrip(&(0..=255u8).collect::<Vec<_>>());
    }

    #[test]
    fn beats_lzf_on_text() {
        let data: Vec<u8> = b"pos,oid,time,lat,lon,speed,heading 121.4437,31.2165 "
            .iter()
            .copied()
            .cycle()
            .take(50_000)
            .collect();
        let d = roundtrip(&data);
        let l = crate::lzf::lzf_compress(&data).len();
        assert!(d < l, "deflate {d} should beat lzf {l}");
    }

    #[test]
    fn random_data_roundtrips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let data: Vec<u8> = (0..30_000).map(|_| rng.gen()).collect();
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let enc = deflate_compress(b"hello world hello world hello world");
        assert!(deflate_decompress(&enc[..3]).is_err());
        let mut bad = enc.clone();
        let n = bad.len();
        bad.truncate(n - 2);
        assert!(deflate_decompress(&bad).is_err());
    }
}
