//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! Column encodings store deltas of sorted object IDs and timestamps as
//! zigzag varints: small deltas — the common case for tracking data
//! sorted by `(oid, time)` — take one byte.

use crate::CodecError;

/// Appends `value` as an LEB128 varint (1–10 bytes).
pub fn write_varint_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = u8::try_from(value & 0x7F).unwrap_or(0x7F);
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] if the buffer ends mid-varint and
/// [`CodecError::Corrupt`] if the encoding exceeds 10 bytes (overflow).
pub fn read_varint_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or(CodecError::UnexpectedEof { context: "varint" })?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt {
                context: "varint overflows u64",
            });
        }
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt {
                context: "varint longer than 10 bytes",
            });
        }
    }
}

/// Maps a signed integer to an unsigned one so that values of small
/// magnitude (of either sign) get small codes: `0 → 0, -1 → 1, 1 → 2, …`.
#[must_use]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)).cast_unsigned()
}

/// Inverse of [`zigzag_encode`].
#[must_use]
pub fn zigzag_decode(v: u64) -> i64 {
    (v >> 1).cast_signed() ^ -((v & 1).cast_signed())
}

/// Appends a signed value as a zigzag varint.
pub fn write_varint_i64(out: &mut Vec<u8>, value: i64) {
    write_varint_u64(out, zigzag_encode(value));
}

/// Reads a signed value written by [`write_varint_i64`].
///
/// # Errors
///
/// Propagates the errors of [`read_varint_u64`].
pub fn read_varint_i64(buf: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    Ok(zigzag_decode(read_varint_u64(buf, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_roundtrip_boundaries() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            write_varint_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        let mut buf = Vec::new();
        write_varint_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint_i64(&mut buf, -50);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn zigzag_pairs() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
        for v in [-1000, -1, 0, 1, 12345, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert!(matches!(
            read_varint_u64(&buf, &mut pos),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_varint_errors() {
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_varint_u64(&buf, &mut pos),
            Err(CodecError::Corrupt { .. })
        ));
    }
}
