//! Canonical, length-limited Huffman coding for the Deflate-class codec.
//!
//! Code lengths are computed with the package-merge algorithm, which
//! yields optimal prefix codes under a maximum-length constraint. Codes
//! are canonical, so only the length vector needs to be serialised; both
//! sides rebuild identical code books from it.
//!
//! Bit order: canonical codes are defined MSB-first; since the shared
//! [`BitWriter`](crate::BitWriter) is LSB-first, codes are emitted with
//! their bits reversed so the decoder can consume one bit at a time in
//! MSB-first code space.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Maximum code length used by the Deflate-class codec.
pub const MAX_CODE_LEN: u8 = 15;

/// Computes optimal length-limited code lengths for `freqs` via
/// package-merge. Symbols with zero frequency get length 0 (no code).
///
/// # Panics
///
/// Panics if `max_len` is too small to represent the alphabet
/// (`2^max_len < #used symbols`) or `max_len == 0`.
#[must_use]
pub fn build_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    assert!(max_len > 0, "max_len must be positive");
    // Symbols beyond u16::MAX cannot appear in a u16 symbol stream, so
    // they get no code either way.
    let used: Vec<u16> = freqs
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .filter_map(|(i, _)| u16::try_from(i).ok())
        .collect();
    let mut lengths = vec![0u8; freqs.len()];
    match used.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs one bit on the wire.
            if let Some((&s, _)) = used.split_first() {
                if let Some(slot) = lengths.get_mut(usize::from(s)) {
                    *slot = 1;
                }
            }
            return lengths;
        }
        n => assert!(
            (1usize << u32::from(max_len).min(31)) >= n,
            "max_len {max_len} cannot encode {n} symbols"
        ),
    }

    // Package-merge. A "package" is a weight plus the multiset of leaf
    // symbols it contains (tracked as counts added to the final lengths).
    #[derive(Clone)]
    struct Package {
        weight: u64,
        symbols: Vec<u16>,
    }
    let mut singletons: Vec<Package> = used
        .iter()
        .map(|&s| Package {
            weight: freqs.get(usize::from(s)).copied().unwrap_or(0),
            symbols: vec![s],
        })
        .collect();
    singletons.sort_by_key(|p| p.weight);

    let mut level: Vec<Package> = singletons.clone();
    for _ in 1..max_len {
        // Pair adjacent packages of the previous level…
        let mut paired: Vec<Package> = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks_exact(2) {
            if let [a, b] = pair {
                let mut symbols = a.symbols.clone();
                symbols.extend_from_slice(&b.symbols);
                paired.push(Package {
                    weight: a.weight + b.weight,
                    symbols,
                });
            }
        }
        // …and merge with a fresh copy of the singletons.
        let mut merged = Vec::with_capacity(paired.len() + singletons.len());
        let mut si = singletons.iter().peekable();
        let mut pj = paired.into_iter().peekable();
        loop {
            match (si.peek(), pj.peek()) {
                (Some(s), Some(p)) => {
                    if s.weight <= p.weight {
                        merged.extend(si.next().cloned());
                    } else {
                        merged.extend(pj.next());
                    }
                }
                (Some(_), None) => merged.extend(si.next().cloned()),
                (None, Some(_)) => merged.extend(pj.next()),
                (None, None) => break,
            }
        }
        level = merged;
    }

    // The first 2n-2 packages of the final level define the code: each
    // occurrence of a symbol adds one to its code length.
    for p in level.iter().take(2 * used.len() - 2) {
        for &s in &p.symbols {
            if let Some(l) = lengths.get_mut(usize::from(s)) {
                *l += 1;
            }
        }
    }
    lengths
}

/// Canonical code assignment: `(code, len)` per symbol, MSB-first code
/// space. Symbols with length 0 get no code.
fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; usize::from(max) + 1];
    for &l in lengths {
        if l > 0 {
            if let Some(c) = bl_count.get_mut(usize::from(l)) {
                *c += 1;
            }
        }
    }
    let mut next_code = vec![0u32; usize::from(max) + 2];
    let mut code = 0u32;
    for len in 1..=usize::from(max) {
        code = (code + bl_count.get(len - 1).copied().unwrap_or(0)) << 1;
        if let Some(slot) = next_code.get_mut(len) {
            *slot = code;
        }
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                (0, 0)
            } else if let Some(slot) = next_code.get_mut(usize::from(l)) {
                let c = *slot;
                *slot += 1;
                (c, l)
            } else {
                (0, 0)
            }
        })
        .collect()
}

/// Encoder side of a canonical Huffman code book.
#[derive(Debug)]
pub struct HuffmanEncoder {
    /// Per symbol: code bits already reversed for LSB-first emission, and
    /// the code length.
    codes: Vec<(u32, u8)>,
}

impl HuffmanEncoder {
    /// Builds an encoder from a code-length vector.
    #[must_use]
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let codes = canonical_codes(lengths)
            .into_iter()
            .map(|(code, len)| {
                if len == 0 {
                    (0, 0)
                } else {
                    (code.reverse_bits() >> (32 - u32::from(len)), len)
                }
            })
            .collect();
        Self { codes }
    }

    /// Writes the code for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no code (zero frequency at build time).
    pub fn encode(&self, w: &mut BitWriter, symbol: u16) {
        let (code, len) = self
            .codes
            .get(usize::from(symbol))
            .copied()
            .unwrap_or((0, 0));
        assert!(len > 0, "symbol {symbol} has no code");
        w.write_bits(u64::from(code), u32::from(len));
    }
}

/// Decoder side of a canonical Huffman code book.
#[derive(Debug)]
pub struct HuffmanDecoder {
    /// `first_code[len]` — canonical code value of the first code of
    /// length `len`.
    first_code: Vec<u32>,
    /// `offset[len]` — index into `symbols` of that first code.
    offset: Vec<usize>,
    /// `count[len]` — number of codes of length `len`.
    count: Vec<u32>,
    /// Symbols ordered by (length, symbol).
    symbols: Vec<u16>,
    max_len: u8,
}

impl HuffmanDecoder {
    /// Builds a decoder from the same code-length vector as the encoder.
    #[must_use]
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let len_of = |s: u16| lengths.get(usize::from(s)).copied().unwrap_or(0);
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut symbols: Vec<u16> = lengths
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .filter_map(|(i, _)| u16::try_from(i).ok())
            .collect();
        symbols.sort_by_key(|&s| (len_of(s), s));
        let codes = canonical_codes(lengths);
        let mut first_code = vec![u32::MAX; usize::from(max_len) + 1];
        let mut offset = vec![0usize; usize::from(max_len) + 1];
        let mut count = vec![0u32; usize::from(max_len) + 1];
        for (idx, &s) in symbols.iter().enumerate() {
            let len = usize::from(len_of(s));
            if first_code.get(len).copied() == Some(u32::MAX) {
                if let Some(slot) = first_code.get_mut(len) {
                    *slot = codes.get(usize::from(s)).copied().unwrap_or((0, 0)).0;
                }
                if let Some(slot) = offset.get_mut(len) {
                    *slot = idx;
                }
            }
            if let Some(c) = count.get_mut(len) {
                *c += 1;
            }
        }
        Self {
            first_code,
            offset,
            count,
            symbols,
            max_len,
        }
    }

    /// Reads one symbol.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input or a code not present in
    /// the book.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        let mut code = 0u32;
        for len in 1..=usize::from(self.max_len) {
            code = (code << 1) | u32::from(r.read_bit()?);
            let Some(&first) = self.first_code.get(len) else {
                break;
            };
            if first == u32::MAX {
                continue;
            }
            let count = self.count.get(len).copied().unwrap_or(0);
            if code >= first && code < first + count {
                let base = self.offset.get(len).copied().unwrap_or(0);
                let idx = base + (code - first) as usize;
                return self.symbols.get(idx).copied().ok_or(CodecError::Corrupt {
                    context: "invalid Huffman code",
                });
            }
        }
        Err(CodecError::Corrupt {
            context: "invalid Huffman code",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(freqs: &[u64], stream: &[u16]) {
        let lengths = build_lengths(freqs, MAX_CODE_LEN);
        let enc = HuffmanEncoder::from_lengths(&lengths);
        let dec = HuffmanDecoder::from_lengths(&lengths);
        let mut w = BitWriter::new();
        for &s in stream {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let lengths = build_lengths(&freqs, MAX_CODE_LEN);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft = {kraft}");
        // Optimal codes are complete: kraft == 1 for >1 symbol.
        assert!((kraft - 1.0).abs() < 1e-12);
    }

    #[test]
    fn respects_length_limit() {
        // Fibonacci-ish frequencies force deep unconstrained trees.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        for limit in [8u8, 10, 15] {
            let lengths = build_lengths(&freqs, limit);
            assert!(lengths.iter().all(|&l| l <= limit));
            let kraft: f64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 2f64.powi(-i32::from(l)))
                .sum();
            assert!(kraft <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn single_symbol_alphabet() {
        let mut freqs = vec![0u64; 10];
        freqs[3] = 100;
        roundtrip_symbols(&freqs, &[3, 3, 3, 3]);
    }

    #[test]
    fn skewed_and_uniform_roundtrips() {
        let mut freqs = vec![1u64; 256];
        freqs[0] = 10_000;
        freqs[65] = 5_000;
        let stream: Vec<u16> = (0..256).chain([0, 0, 0, 65, 65].iter().copied()).collect();
        roundtrip_symbols(&freqs, &stream);
        roundtrip_symbols(&vec![7u64; 300], &(0..300).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_frequencies_get_shorter_codes() {
        let mut freqs = vec![1u64; 16];
        freqs[5] = 1_000_000;
        let lengths = build_lengths(&freqs, MAX_CODE_LEN);
        assert!(lengths[5] < lengths[0]);
        assert_eq!(lengths[5], 1);
    }

    #[test]
    fn invalid_code_is_reported() {
        let mut freqs = vec![0u64; 4];
        freqs[0] = 1;
        freqs[1] = 1;
        let lengths = build_lengths(&freqs, MAX_CODE_LEN);
        let dec = HuffmanDecoder::from_lengths(&lengths);
        // Exhausted stream surfaces as an error, not a bogus symbol.
        let bytes = [];
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode(&mut r).is_err());
    }
}
