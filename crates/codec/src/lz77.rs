//! Hash-chain match finder shared by the Deflate- and LZMA-class codecs.

/// A back-reference candidate: `len` bytes matching at distance `dist`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Match length in bytes.
    pub len: usize,
    /// Backward distance in bytes (`1` = previous byte).
    pub dist: usize,
}

/// Incremental longest-match search over a sliding window using hash
/// chains keyed on 3-byte prefixes.
pub struct MatchFinder {
    head: Vec<i64>,
    prev: Vec<i64>,
    window: usize,
    min_len: usize,
    max_len: usize,
    max_chain: usize,
}

const HASH_BITS: u32 = 15;

fn hash3(data: &[u8], pos: usize) -> Option<usize> {
    let &[a, b, c] = data.get(pos..pos.checked_add(3)?)? else {
        return None;
    };
    let v = u32::from(a) | u32::from(b) << 8 | u32::from(c) << 16;
    Some((v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize)
}

impl MatchFinder {
    /// Creates a finder for input of length `data_len`.
    ///
    /// `window` bounds match distances, `min_len..=max_len` bounds match
    /// lengths, and `max_chain` bounds the candidates examined per
    /// position (the speed/ratio knob).
    #[must_use]
    pub fn new(
        data_len: usize,
        window: usize,
        min_len: usize,
        max_len: usize,
        max_chain: usize,
    ) -> Self {
        assert!(min_len >= 3, "hash chains need min_len >= 3");
        Self {
            head: vec![-1; 1 << HASH_BITS],
            prev: vec![-1; data_len],
            window,
            min_len,
            max_len,
            max_chain,
        }
    }

    /// Registers position `pos` in the hash chains. Must be called for
    /// every position in order, including positions inside emitted
    /// matches.
    pub fn insert(&mut self, data: &[u8], pos: usize) {
        let Some(h) = hash3(data, pos) else { return };
        let chain = self.head.get(h).copied().unwrap_or(-1);
        if let Some(slot) = self.prev.get_mut(pos) {
            *slot = chain;
        }
        if let Some(slot) = self.head.get_mut(h) {
            // An input longer than i64::MAX bytes cannot exist; treat a
            // failed conversion as "no entry".
            *slot = i64::try_from(pos).unwrap_or(-1);
        }
    }

    /// Finds the longest match at `pos` against previously inserted
    /// positions, or `None` if no match reaches `min_len`.
    #[must_use]
    pub fn find(&self, data: &[u8], pos: usize) -> Option<Match> {
        if pos + self.min_len > data.len() {
            return None;
        }
        let max_here = self.max_len.min(data.len() - pos);
        let h = hash3(data, pos)?;
        let here = data.get(pos..pos + max_here).unwrap_or_default();
        let mut cand = self.head.get(h).copied().unwrap_or(-1);
        let mut best: Option<Match> = None;
        let mut chain = 0;
        while cand >= 0 && chain < self.max_chain {
            let Ok(c) = usize::try_from(cand) else { break };
            if c >= pos {
                cand = self.prev.get(c).copied().unwrap_or(-1);
                continue;
            }
            let dist = pos - c;
            if dist > self.window {
                break; // chains are in decreasing position order
            }
            let already = best.map_or(self.min_len - 1, |m| m.len);
            let there = data.get(c..c + max_here).unwrap_or_default();
            // Quick reject: the match must beat `already`.
            let beats = there
                .get(already)
                .zip(here.get(already))
                .is_some_and(|(x, y)| x == y);
            if beats {
                let len = there.iter().zip(here).take_while(|(x, y)| x == y).count();
                if len >= self.min_len && len > already {
                    best = Some(Match { len, dist });
                    if len == max_here {
                        break;
                    }
                }
            }
            cand = self.prev.get(c).copied().unwrap_or(-1);
            chain += 1;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find_all(data: &[u8], window: usize) -> Vec<Option<Match>> {
        let mut mf = MatchFinder::new(data.len(), window, 3, 258, 64);
        let mut out = Vec::new();
        for pos in 0..data.len() {
            out.push(mf.find(data, pos));
            mf.insert(data, pos);
        }
        out
    }

    #[test]
    fn finds_simple_repeat() {
        let data = b"abcdefabcdef";
        let matches = find_all(data, 1 << 15);
        let m = matches[6].expect("second occurrence should match the first");
        assert_eq!(m.dist, 6);
        assert_eq!(m.len, 6);
    }

    #[test]
    fn finds_overlapping_run() {
        // "aaaa..." matches itself at distance 1 (RLE via LZ).
        let data = vec![b'a'; 100];
        let mut mf = MatchFinder::new(data.len(), 1 << 15, 3, 258, 64);
        mf.insert(&data, 0);
        let m = mf.find(&data, 1).unwrap();
        assert_eq!(m.dist, 1);
        assert_eq!(m.len, 99);
    }

    #[test]
    fn respects_window() {
        let mut data = b"abcxyz".to_vec();
        data.extend(std::iter::repeat_n(b'_', 100));
        data.extend_from_slice(b"abcxyz");
        let matches = find_all(&data, 16);
        assert!(
            matches[106].is_none(),
            "match beyond window must be rejected"
        );
        let wide = find_all(&data, 1 << 15);
        assert!(wide[106].is_some());
    }

    #[test]
    fn no_match_in_random_prefix() {
        let data = b"abcdefgh";
        let matches = find_all(data, 1 << 15);
        assert!(matches.iter().all(Option::is_none));
    }

    #[test]
    fn returns_longest_not_first() {
        // "abcX abcdef ... abcdef" — the finder should prefer the longer,
        // nearer candidate over the older short one.
        let data = b"abcd____abcdef__abcdef";
        let matches = find_all(data, 1 << 15);
        let m = matches[16].unwrap();
        assert_eq!(m.len, 6);
        assert_eq!(m.dist, 8);
    }
}
