//! Adaptive binary range coder (LZMA-style) for the `Lzr` codec.
//!
//! Probabilities are 11-bit (`0..2048`) adaptive counters updated with a
//! shift of 5, exactly as in LZMA. The encoder carries a 33-bit `low`
//! with carry propagation through a cache byte.

use crate::CodecError;

/// Number of probability quantisation levels (2^11).
const PROB_ONE: u32 = 1 << 11;
/// Adaptation speed.
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive probability of a bit being 0.
#[derive(Debug, Clone, Copy)]
pub struct BitModel(u16);

impl Default for BitModel {
    fn default() -> Self {
        Self(u16::try_from(PROB_ONE / 2).unwrap_or(u16::MAX))
    }
}

impl BitModel {
    /// Creates a model with the maximally uncertain prior (p = 0.5).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Range encoder producing a byte stream.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > u64::from(u32::MAX) {
            // `low` never exceeds 33 bits, so the carry is 0 or 1.
            let carry = u8::try_from(self.low >> 32).unwrap_or(1);
            let mut first = true;
            while self.cache_size > 0 {
                let byte = if first {
                    first = false;
                    self.cache.wrapping_add(carry)
                } else {
                    0xFFu8.wrapping_add(carry)
                };
                self.out.push(byte);
                self.cache_size -= 1;
            }
            self.cache = u8::try_from((self.low >> 24) & 0xFF).unwrap_or(0xFF);
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encodes one bit under the adaptive `model`.
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
        let prob = u32::from(model.0);
        let bound = (self.range >> 11) * prob;
        if bit {
            self.low += u64::from(bound);
            self.range -= bound;
            model.0 = u16::try_from(prob - (prob >> MOVE_BITS)).unwrap_or(u16::MAX);
        } else {
            self.range = bound;
            model.0 = u16::try_from(prob + ((PROB_ONE - prob) >> MOVE_BITS)).unwrap_or(u16::MAX);
        }
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encodes `count` bits of `value` (MSB first) at fixed probability ½.
    pub fn encode_direct(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit != 0 {
                self.low += u64::from(self.range);
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flushes the encoder and returns the byte stream.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder over a byte slice.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Initialises the decoder (consumes the 5 priming bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream is shorter than
    /// the priming sequence.
    pub fn new(buf: &'a [u8]) -> Result<Self, CodecError> {
        if buf.len() < 5 {
            return Err(CodecError::UnexpectedEof {
                context: "range coder priming",
            });
        }
        let mut code = 0u32;
        for &b in buf.get(1..5).unwrap_or_default() {
            code = (code << 8) | u32::from(b);
        }
        Ok(Self {
            code,
            range: u32::MAX,
            buf,
            pos: 5,
        })
    }

    fn next_byte(&mut self) -> u8 {
        // Reading past the physical end yields zeros; truncation is caught
        // by the outer format's length checks.
        let b = self.buf.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn normalize(&mut self) {
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
    }

    /// Decodes one bit under the adaptive `model`.
    pub fn decode_bit(&mut self, model: &mut BitModel) -> bool {
        let prob = u32::from(model.0);
        let bound = (self.range >> 11) * prob;
        let bit = if self.code < bound {
            self.range = bound;
            model.0 = u16::try_from(prob + ((PROB_ONE - prob) >> MOVE_BITS)).unwrap_or(u16::MAX);
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            model.0 = u16::try_from(prob - (prob >> MOVE_BITS)).unwrap_or(u16::MAX);
            true
        };
        self.normalize();
        bit
    }

    /// Decodes `count` direct bits (MSB first).
    pub fn decode_direct(&mut self, count: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..count {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            self.normalize();
        }
        value
    }
}

/// A bit-tree of `1 << bits` leaves coding fixed-width values MSB-first
/// with one adaptive model per internal node.
#[derive(Debug, Clone)]
pub struct BitTree {
    models: Vec<BitModel>,
    bits: u32,
}

impl BitTree {
    /// Creates a tree coding `bits`-wide values.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        Self {
            models: vec![BitModel::new(); 1 << bits],
            bits,
        }
    }

    /// Encodes `value` (must fit in `bits`).
    pub fn encode(&mut self, enc: &mut RangeEncoder, value: u32) {
        debug_assert!(value < (1 << self.bits));
        let mut node = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (value >> i) & 1 != 0;
            // The walk visits nodes 1..2^(bits+1), exactly the table size.
            if let Some(m) = self.models.get_mut(node) {
                enc.encode_bit(m, bit);
            }
            node = (node << 1) | usize::from(bit);
        }
    }

    /// Decodes a value.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let mut node = 1usize;
        for _ in 0..self.bits {
            let bit = self.models.get_mut(node).is_some_and(|m| dec.decode_bit(m));
            node = (node << 1) | usize::from(bit);
        }
        u32::try_from(node)
            .unwrap_or(0)
            .saturating_sub(1 << self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_model_bit_roundtrip() {
        let bits = [
            true, false, false, true, true, true, false, true, false, false,
        ];
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let buf = enc.finish();
        let mut dec = RangeDecoder::new(&buf).unwrap();
        let mut m = BitModel::new();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut m), b);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values = [
            (0u32, 1u32),
            (1, 1),
            (0xAB, 8),
            (0x12345, 20),
            (u32::MAX, 32),
        ];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let buf = enc.finish();
        let mut dec = RangeDecoder::new(&buf).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v);
        }
    }

    #[test]
    fn bit_tree_roundtrip() {
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(8);
        let values: Vec<u32> = (0..=255).chain([0, 0, 0, 7, 7, 7]).collect();
        for &v in &values {
            tree.encode(&mut enc, v);
        }
        let buf = enc.finish();
        let mut dec = RangeDecoder::new(&buf).unwrap();
        let mut tree = BitTree::new(8);
        for &v in &values {
            assert_eq!(tree.decode(&mut dec), v);
        }
    }

    #[test]
    fn skewed_bits_compress_below_one_bit_each() {
        // 10k zero-bits under one adapting model must take far fewer than
        // 10k bits — that is the whole point of arithmetic coding.
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for _ in 0..10_000 {
            enc.encode_bit(&mut m, false);
        }
        let buf = enc.finish();
        assert!(buf.len() < 200, "got {} bytes", buf.len());
    }

    #[test]
    fn mixed_models_and_direct_interleave() {
        let mut enc = RangeEncoder::new();
        let mut m1 = BitModel::new();
        let mut tree = BitTree::new(4);
        for i in 0..100u32 {
            enc.encode_bit(&mut m1, i % 3 == 0);
            tree.encode(&mut enc, i % 16);
            enc.encode_direct(i % 32, 5);
        }
        let buf = enc.finish();
        let mut dec = RangeDecoder::new(&buf).unwrap();
        let mut m1 = BitModel::new();
        let mut tree = BitTree::new(4);
        for i in 0..100u32 {
            assert_eq!(dec.decode_bit(&mut m1), i % 3 == 0);
            assert_eq!(tree.decode(&mut dec), i % 16);
            assert_eq!(dec.decode_direct(5), i % 32);
        }
    }

    #[test]
    fn truncated_stream_is_detected_at_priming() {
        assert!(RangeDecoder::new(&[1, 2, 3]).is_err());
    }
}
