//! Filtered decoding: extract only the records inside a query range
//! without materialising the whole partition.
//!
//! §II-D's scan step is "read and decompress each involved partition to
//! extract all the records … check the extracted records and output the
//! ones within the query range". Building the full [`RecordBatch`] just
//! to throw most of it away doubles allocation traffic on selective
//! queries; this module fuses decode and filter:
//!
//! * row layouts stream record by record (plain rows filter straight
//!   from the input slice with no intermediate buffer at all);
//! * column layouts decode the three core-attribute columns first,
//!   compute the match mask, and materialise the remaining columns only
//!   for matching positions.

use blot_geo::Cuboid;
use blot_model::{Record, RecordBatch};

use crate::layout::ROW_WIDTH;
use crate::scheme::{Compression, EncodingScheme, Layout};
use crate::varint::{read_varint_i64, read_varint_u64};
use crate::CodecError;

/// Result of a filtered decode.
#[derive(Debug, Clone)]
pub struct Filtered {
    /// The records inside the range.
    pub matched: RecordBatch,
    /// Total records the unit held (the paper's "records to be
    /// scanned").
    pub scanned: usize,
}

impl EncodingScheme {
    /// Decodes a storage unit produced by [`encode`](Self::encode) and
    /// returns only the records inside `range`, plus the scanned count.
    ///
    /// Produces exactly `decode(bytes)?.filter_range(range)` (up to
    /// record order within the unit) while avoiding the full
    /// intermediate batch.
    ///
    /// # Errors
    ///
    /// Same as [`decode`](Self::decode).
    pub fn decode_filter(self, bytes: &[u8], range: &Cuboid) -> Result<Filtered, CodecError> {
        let (&tag, payload) = bytes.split_first().ok_or(CodecError::UnexpectedEof {
            context: "scheme tag",
        })?;
        if tag != self.tag() {
            return Err(CodecError::SchemeMismatch {
                found: tag,
                expected: self.tag(),
            });
        }
        let laid_out: std::borrow::Cow<'_, [u8]> = match self.compression {
            Compression::Plain => std::borrow::Cow::Borrowed(payload),
            Compression::Lzf => std::borrow::Cow::Owned(crate::lzf::lzf_decompress(payload)?),
            Compression::Deflate => {
                std::borrow::Cow::Owned(crate::deflate::deflate_decompress(payload)?)
            }
            Compression::Lzr => std::borrow::Cow::Owned(crate::lzr::lzr_decompress(payload)?),
        };
        match self.layout {
            Layout::Row => filter_rows(&laid_out, range),
            Layout::Column => filter_columns(&laid_out, range),
        }
    }
}

/// The `N`-byte field starting at `at` in `row`, as a fixed array.
fn field<const N: usize>(row: &[u8], at: usize) -> Result<[u8; N], CodecError> {
    at.checked_add(N)
        .and_then(|end| row.get(at..end))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(CodecError::UnexpectedEof {
            context: "record field",
        })
}

/// The single byte at `at` in `row`.
fn byte(row: &[u8], at: usize) -> Result<u8, CodecError> {
    row.get(at).copied().ok_or(CodecError::UnexpectedEof {
        context: "record field",
    })
}

/// Streams fixed-width rows, keeping only in-range records.
fn filter_rows(buf: &[u8], range: &Cuboid) -> Result<Filtered, CodecError> {
    let mut pos = 0usize;
    let count = read_varint_u64(buf, &mut pos)?;
    if count > (1 << 26) {
        return Err(CodecError::TooLarge { declared: count });
    }
    let count = usize::try_from(count).map_err(|_| CodecError::TooLarge { declared: count })?;
    let rows = count
        .checked_mul(ROW_WIDTH)
        .and_then(|len| pos.checked_add(len))
        .and_then(|end| buf.get(pos..end))
        .ok_or(CodecError::UnexpectedEof {
            context: "row records",
        })?;
    let mut matched = RecordBatch::new();
    for row in rows.chunks_exact(ROW_WIDTH) {
        // Core attributes sit at fixed offsets: oid 0..4, time 4..12,
        // x 12..20, y 20..28.
        let time = i64::from_le_bytes(field::<8>(row, 4)?);
        let x = f64::from_le_bytes(field::<8>(row, 12)?);
        let y = f64::from_le_bytes(field::<8>(row, 20)?);
        #[allow(clippy::cast_precision_loss)]
        let inside = range.contains_point(&blot_geo::Point::new(x, y, time as f64));
        if !inside {
            continue;
        }
        matched.push(Record {
            oid: u32::from_le_bytes(field::<4>(row, 0)?),
            time,
            x,
            y,
            speed: f32::from_le_bytes(field::<4>(row, 28)?),
            heading: f32::from_le_bytes(field::<4>(row, 32)?),
            occupied: byte(row, 36)? != 0,
            passengers: byte(row, 37)?,
        });
    }
    Ok(Filtered {
        matched,
        scanned: count,
    })
}

/// Reads a length-prefixed column chunk and advances `pos` past it.
fn read_chunk<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CodecError> {
    let len = read_varint_u64(buf, pos)?;
    let len = usize::try_from(len).map_err(|_| CodecError::TooLarge { declared: len })?;
    let start = *pos;
    let chunk = start
        .checked_add(len)
        .and_then(|end| buf.get(start..end))
        .ok_or(CodecError::UnexpectedEof {
            context: "column chunk",
        })?;
    *pos = start + len;
    Ok(chunk)
}

/// Decodes core columns, masks, then materialises only matching rows.
fn filter_columns(buf: &[u8], range: &Cuboid) -> Result<Filtered, CodecError> {
    let mut pos = 0usize;
    let count = read_varint_u64(buf, &mut pos)?;
    if count > (1 << 26) {
        return Err(CodecError::TooLarge { declared: count });
    }
    let n = usize::try_from(count).map_err(|_| CodecError::TooLarge { declared: count })?;

    // Column order matches layout::encode_columns:
    // oid, time, x, y, speed, heading, occupied, passengers.
    let oid_c = read_chunk(buf, &mut pos)?;
    let time_c = read_chunk(buf, &mut pos)?;
    let x_c = read_chunk(buf, &mut pos)?;
    let y_c = read_chunk(buf, &mut pos)?;
    let sp_c = read_chunk(buf, &mut pos)?;
    let hd_c = read_chunk(buf, &mut pos)?;
    let oc_c = read_chunk(buf, &mut pos)?;
    let pa_c = read_chunk(buf, &mut pos)?;

    // Core columns first.
    let mut times = Vec::with_capacity(n);
    {
        let mut cpos = 0usize;
        let mut prev = 0i64;
        for _ in 0..n {
            prev = prev.wrapping_add(read_varint_i64(time_c, &mut cpos)?);
            times.push(prev);
        }
    }
    let xs = crate::gorilla::decode_f64_column(x_c, n)?;
    let ys = crate::gorilla::decode_f64_column(y_c, n)?;

    let mask: Vec<bool> = xs
        .iter()
        .zip(&ys)
        .zip(&times)
        .map(|((&x, &y), &t)| {
            #[allow(clippy::cast_precision_loss)]
            let t = t as f64;
            range.contains_point(&blot_geo::Point::new(x, y, t))
        })
        .collect();
    let matched_count = mask.iter().filter(|&&m| m).count();
    if matched_count == 0 {
        return Ok(Filtered {
            matched: RecordBatch::new(),
            scanned: n,
        });
    }

    // Remaining columns, then gather by mask.
    let mut oids = Vec::with_capacity(n);
    {
        let mut cpos = 0usize;
        let mut prev = 0i64;
        for _ in 0..n {
            prev += read_varint_i64(oid_c, &mut cpos)?;
            let oid = u32::try_from(prev).map_err(|_| CodecError::Corrupt {
                context: "oid column out of range",
            })?;
            oids.push(oid);
        }
    }
    let speeds = crate::gorilla::decode_f32_column(sp_c, n)?;
    let headings = crate::gorilla::decode_f32_column(hd_c, n)?;
    let occ = crate::rle::rle_decode(oc_c)?;
    let passengers = crate::rle::rle_decode(pa_c)?;
    if occ.len() != n || passengers.len() != n {
        return Err(CodecError::Corrupt {
            context: "column length mismatch",
        });
    }

    let mut matched = RecordBatch::with_capacity(matched_count);
    let cols = oids
        .into_iter()
        .zip(times)
        .zip(xs.into_iter().zip(ys))
        .zip(speeds.into_iter().zip(headings))
        .zip(occ.into_iter().zip(passengers));
    for (&keep, ((((oid, time), (x, y)), (speed, heading)), (occupied, passengers))) in
        mask.iter().zip(cols)
    {
        if keep {
            matched.push(Record {
                oid,
                time,
                x,
                y,
                speed,
                heading,
                occupied: occupied != 0,
                passengers,
            });
        }
    }
    Ok(Filtered {
        matched,
        scanned: n,
    })
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss
)]
mod tests {
    use super::*;
    use blot_geo::Point;

    fn batch(n: usize) -> RecordBatch {
        (0..n)
            .map(|i| {
                let mut r = Record::new(
                    (i % 6) as u32,
                    1_000 + (i as i64) * 10,
                    121.0 + (i as f64) * 1e-4,
                    31.0 + (i as f64) * 5e-5,
                );
                r.speed = (i % 50) as f32;
                r.occupied = i % 3 == 0;
                r.passengers = (i % 4) as u8;
                r
            })
            .collect()
    }

    fn test_range() -> Cuboid {
        Cuboid::new(
            Point::new(121.01, 31.0, 1_500.0),
            Point::new(121.05, 31.02, 6_000.0),
        )
    }

    #[test]
    fn filtered_decode_equals_decode_then_filter() {
        let b = batch(1_200);
        let range = test_range();
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&b);
            let filtered = scheme.decode_filter(&bytes, &range).unwrap();
            let full = scheme.decode(&bytes).unwrap();
            let expected = full.filter_range(&range);
            assert_eq!(filtered.scanned, b.len(), "{scheme}");
            assert_eq!(filtered.matched, expected, "{scheme}");
            assert!(
                !filtered.matched.is_empty(),
                "test range must match something"
            );
        }
    }

    #[test]
    fn empty_match_reports_scanned_count() {
        let b = batch(300);
        let nowhere = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 1.0));
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&b);
            let f = scheme.decode_filter(&bytes, &nowhere).unwrap();
            assert_eq!(f.scanned, 300);
            assert!(f.matched.is_empty());
        }
    }

    #[test]
    fn corrupt_input_errors_not_panics() {
        let b = batch(100);
        let range = test_range();
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&b);
            assert!(scheme
                .decode_filter(&bytes[..bytes.len() / 2], &range)
                .is_err());
            let wrong = EncodingScheme::all()
                .into_iter()
                .find(|s| *s != scheme)
                .expect("another scheme");
            assert!(matches!(
                wrong.decode_filter(&bytes, &range),
                Err(CodecError::SchemeMismatch { .. })
            ));
        }
    }
}
