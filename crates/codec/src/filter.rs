//! Filtered decoding: extract only the records inside a query range
//! without materialising the whole partition.
//!
//! §II-D's scan step is "read and decompress each involved partition to
//! extract all the records … check the extracted records and output the
//! ones within the query range". Building the full [`RecordBatch`] just
//! to throw most of it away doubles allocation traffic on selective
//! queries; this module fuses decode and filter:
//!
//! * row layouts stream record by record (plain rows filter straight
//!   from the input slice with no intermediate buffer at all);
//! * column layouts decode the three core-attribute columns first,
//!   compute the match mask, and materialise the remaining columns only
//!   for matching positions.

use blot_geo::Cuboid;
use blot_model::{Record, RecordBatch};

use crate::layout::ROW_WIDTH;
use crate::scheme::{Compression, EncodingScheme, Layout};
use crate::varint::{read_varint_i64, read_varint_u64};
use crate::CodecError;

/// Result of a filtered decode.
#[derive(Debug, Clone)]
pub struct Filtered {
    /// The records inside the range.
    pub matched: RecordBatch,
    /// Total records the unit held (the paper's "records to be
    /// scanned").
    pub scanned: usize,
}

impl EncodingScheme {
    /// Decodes a storage unit produced by [`encode`](Self::encode) and
    /// returns only the records inside `range`, plus the scanned count.
    ///
    /// Produces exactly `decode(bytes)?.filter_range(range)` (up to
    /// record order within the unit) while avoiding the full
    /// intermediate batch.
    ///
    /// # Errors
    ///
    /// Same as [`decode`](Self::decode).
    pub fn decode_filter(self, bytes: &[u8], range: &Cuboid) -> Result<Filtered, CodecError> {
        let (&tag, payload) = bytes.split_first().ok_or(CodecError::UnexpectedEof {
            context: "scheme tag",
        })?;
        if tag != self.tag() {
            return Err(CodecError::SchemeMismatch {
                found: tag,
                expected: self.tag(),
            });
        }
        let (payload, _zone_map) = crate::ZoneMap::split_footer(payload)?;
        let laid_out: std::borrow::Cow<'_, [u8]> = match self.compression {
            Compression::Plain => std::borrow::Cow::Borrowed(payload),
            Compression::Lzf => std::borrow::Cow::Owned(crate::lzf::lzf_decompress(payload)?),
            Compression::Deflate => {
                std::borrow::Cow::Owned(crate::deflate::deflate_decompress(payload)?)
            }
            Compression::Lzr => std::borrow::Cow::Owned(crate::lzr::lzr_decompress(payload)?),
        };
        match self.layout {
            Layout::Row => filter_rows(&laid_out, range),
            Layout::Column => filter_columns(&laid_out, range),
        }
    }

    /// Batch-oriented variant of [`decode_filter`](Self::decode_filter):
    /// identical output (`matched` and `scanned` are bit-for-bit the
    /// same), different inner loops.
    ///
    /// Rows are processed in fixed-size batches — a branch-light
    /// predicate pass over the three filter columns builds a match mask,
    /// and the remaining five fields are only parsed for rows the mask
    /// keeps. Column layouts decode the predicate columns into reusable
    /// scratch vectors and skip the non-predicate columns entirely when
    /// nothing matches. `scratch` is caller-owned so a scan loop reuses
    /// the same allocations across every unit it touches.
    ///
    /// Whole-unit pruning is *not* done here: deciding from the zone-map
    /// footer whether to decode at all is the storage layer's job,
    /// before the payload bytes are even fetched.
    ///
    /// # Errors
    ///
    /// Same as [`decode`](Self::decode).
    pub fn decode_filter_batched(
        self,
        bytes: &[u8],
        range: &Cuboid,
        scratch: &mut DecodeScratch,
    ) -> Result<Filtered, CodecError> {
        let (&tag, payload) = bytes.split_first().ok_or(CodecError::UnexpectedEof {
            context: "scheme tag",
        })?;
        if tag != self.tag() {
            return Err(CodecError::SchemeMismatch {
                found: tag,
                expected: self.tag(),
            });
        }
        let (payload, _zone_map) = crate::ZoneMap::split_footer(payload)?;
        let laid_out: std::borrow::Cow<'_, [u8]> = match self.compression {
            Compression::Plain => std::borrow::Cow::Borrowed(payload),
            Compression::Lzf => std::borrow::Cow::Owned(crate::lzf::lzf_decompress(payload)?),
            Compression::Deflate => {
                std::borrow::Cow::Owned(crate::deflate::deflate_decompress(payload)?)
            }
            Compression::Lzr => std::borrow::Cow::Owned(crate::lzr::lzr_decompress(payload)?),
        };
        match self.layout {
            Layout::Row => filter_rows_batched(&laid_out, range, scratch),
            Layout::Column => filter_columns_batched(&laid_out, range, scratch),
        }
    }
}

/// Rows per batch in the batched row path: large enough to amortise the
/// per-batch mask setup, small enough that the predicate columns of one
/// batch (~24 KiB) stay L1-resident.
const ROW_BATCH: usize = 1024;

/// Reusable decode buffers for [`EncodingScheme::decode_filter_batched`].
///
/// One instance per scan thread; every unit scanned through it reuses
/// the same allocations instead of growing fresh `Vec`s per unit (and,
/// in the old column path, per column).
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Decoded predicate column: timestamps.
    times: Vec<i64>,
    /// Decoded predicate column: longitudes.
    xs: Vec<f64>,
    /// Decoded predicate column: latitudes.
    ys: Vec<f64>,
    /// Per-record predicate verdicts.
    mask: Vec<bool>,
    /// Gorilla bit patterns, shared by every float column decode.
    bits: Vec<u64>,
    /// Non-predicate columns, decoded only when the mask has survivors.
    oids: Vec<u32>,
    speeds: Vec<f32>,
    headings: Vec<f32>,
    occupied: Vec<u8>,
    passengers: Vec<u8>,
}

impl DecodeScratch {
    /// Creates an empty scratch; buffers grow to working size on first
    /// use and are retained afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The branch-light predicate: closed-boundary containment identical to
/// [`Cuboid::contains_point`], written as bitwise `&` of the six
/// comparisons so the compiler can vectorise the mask loop.
#[inline]
fn in_range(lo: &blot_geo::Point, hi: &blot_geo::Point, x: f64, y: f64, t: f64) -> bool {
    (x >= lo.x) & (x <= hi.x) & (y >= lo.y) & (y <= hi.y) & (t >= lo.t) & (t <= hi.t)
}

/// Batched row filter: per fixed-size batch, parse only the three
/// predicate fields, build the mask, then materialise survivors.
fn filter_rows_batched(
    buf: &[u8],
    range: &Cuboid,
    scratch: &mut DecodeScratch,
) -> Result<Filtered, CodecError> {
    let mut pos = 0usize;
    let count = read_varint_u64(buf, &mut pos)?;
    if count > (1 << 26) {
        return Err(CodecError::TooLarge { declared: count });
    }
    let count = usize::try_from(count).map_err(|_| CodecError::TooLarge { declared: count })?;
    let rows = count
        .checked_mul(ROW_WIDTH)
        .and_then(|len| pos.checked_add(len))
        .and_then(|end| buf.get(pos..end))
        .ok_or(CodecError::UnexpectedEof {
            context: "row records",
        })?;
    let (lo, hi) = (range.min(), range.max());
    let mut matched = RecordBatch::new();
    for block in rows.chunks(ROW_BATCH * ROW_WIDTH) {
        scratch.mask.clear();
        let mut survivors = 0usize;
        for row in block.chunks_exact(ROW_WIDTH) {
            let time = i64::from_le_bytes(field::<8>(row, 4)?);
            let x = f64::from_le_bytes(field::<8>(row, 12)?);
            let y = f64::from_le_bytes(field::<8>(row, 20)?);
            #[allow(clippy::cast_precision_loss)]
            let keep = in_range(&lo, &hi, x, y, time as f64);
            survivors += usize::from(keep);
            scratch.mask.push(keep);
        }
        if survivors == 0 {
            continue;
        }
        for (row, &keep) in block.chunks_exact(ROW_WIDTH).zip(&scratch.mask) {
            if !keep {
                continue;
            }
            matched.push(Record {
                oid: u32::from_le_bytes(field::<4>(row, 0)?),
                time: i64::from_le_bytes(field::<8>(row, 4)?),
                x: f64::from_le_bytes(field::<8>(row, 12)?),
                y: f64::from_le_bytes(field::<8>(row, 20)?),
                speed: f32::from_le_bytes(field::<4>(row, 28)?),
                heading: f32::from_le_bytes(field::<4>(row, 32)?),
                occupied: byte(row, 36)? != 0,
                passengers: byte(row, 37)?,
            });
        }
    }
    Ok(Filtered {
        matched,
        scanned: count,
    })
}

/// Batched column filter: predicate columns decode into scratch, the
/// mask decides whether the remaining five columns are touched at all.
fn filter_columns_batched(
    buf: &[u8],
    range: &Cuboid,
    scratch: &mut DecodeScratch,
) -> Result<Filtered, CodecError> {
    let mut pos = 0usize;
    let count = read_varint_u64(buf, &mut pos)?;
    if count > (1 << 26) {
        return Err(CodecError::TooLarge { declared: count });
    }
    let n = usize::try_from(count).map_err(|_| CodecError::TooLarge { declared: count })?;

    // Column order matches layout::encode_columns:
    // oid, time, x, y, speed, heading, occupied, passengers.
    let oid_c = read_chunk(buf, &mut pos)?;
    let time_c = read_chunk(buf, &mut pos)?;
    let x_c = read_chunk(buf, &mut pos)?;
    let y_c = read_chunk(buf, &mut pos)?;
    let sp_c = read_chunk(buf, &mut pos)?;
    let hd_c = read_chunk(buf, &mut pos)?;
    let oc_c = read_chunk(buf, &mut pos)?;
    let pa_c = read_chunk(buf, &mut pos)?;

    // Predicate columns into scratch.
    scratch.times.clear();
    {
        let mut cpos = 0usize;
        let mut prev = 0i64;
        for _ in 0..n {
            prev = prev.wrapping_add(read_varint_i64(time_c, &mut cpos)?);
            scratch.times.push(prev);
        }
    }
    crate::gorilla::decode_f64_bits_slice_into(x_c, n, &mut scratch.bits)?;
    scratch.xs.clear();
    scratch
        .xs
        .extend(scratch.bits.iter().map(|&b| f64::from_bits(b)));
    crate::gorilla::decode_f64_bits_slice_into(y_c, n, &mut scratch.bits)?;
    scratch.ys.clear();
    scratch
        .ys
        .extend(scratch.bits.iter().map(|&b| f64::from_bits(b)));

    let (lo, hi) = (range.min(), range.max());
    scratch.mask.clear();
    let mut survivors = 0usize;
    for ((&x, &y), &t) in scratch.xs.iter().zip(&scratch.ys).zip(&scratch.times) {
        #[allow(clippy::cast_precision_loss)]
        let keep = in_range(&lo, &hi, x, y, t as f64);
        survivors += usize::from(keep);
        scratch.mask.push(keep);
    }
    if survivors == 0 {
        // The whole point: non-predicate columns are never decoded.
        return Ok(Filtered {
            matched: RecordBatch::new(),
            scanned: n,
        });
    }

    // Remaining columns into scratch, then gather by mask.
    scratch.oids.clear();
    {
        let mut cpos = 0usize;
        let mut prev = 0i64;
        for _ in 0..n {
            prev += read_varint_i64(oid_c, &mut cpos)?;
            let oid = u32::try_from(prev).map_err(|_| CodecError::Corrupt {
                context: "oid column out of range",
            })?;
            scratch.oids.push(oid);
        }
    }
    crate::gorilla::decode_f32_column_into(sp_c, n, &mut scratch.bits, &mut scratch.speeds)?;
    crate::gorilla::decode_f32_column_into(hd_c, n, &mut scratch.bits, &mut scratch.headings)?;
    crate::rle::rle_decode_into(oc_c, &mut scratch.occupied)?;
    crate::rle::rle_decode_into(pa_c, &mut scratch.passengers)?;
    if scratch.occupied.len() != n || scratch.passengers.len() != n {
        return Err(CodecError::Corrupt {
            context: "column length mismatch",
        });
    }

    let mut matched = RecordBatch::with_capacity(survivors);
    let cols = scratch
        .oids
        .iter()
        .zip(&scratch.times)
        .zip(scratch.xs.iter().zip(&scratch.ys))
        .zip(scratch.speeds.iter().zip(&scratch.headings))
        .zip(scratch.occupied.iter().zip(&scratch.passengers));
    for (&keep, ((((&oid, &time), (&x, &y)), (&speed, &heading)), (&occupied, &passengers))) in
        scratch.mask.iter().zip(cols)
    {
        if keep {
            matched.push(Record {
                oid,
                time,
                x,
                y,
                speed,
                heading,
                occupied: occupied != 0,
                passengers,
            });
        }
    }
    Ok(Filtered {
        matched,
        scanned: n,
    })
}

/// The `N`-byte field starting at `at` in `row`, as a fixed array.
fn field<const N: usize>(row: &[u8], at: usize) -> Result<[u8; N], CodecError> {
    at.checked_add(N)
        .and_then(|end| row.get(at..end))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(CodecError::UnexpectedEof {
            context: "record field",
        })
}

/// The single byte at `at` in `row`.
fn byte(row: &[u8], at: usize) -> Result<u8, CodecError> {
    row.get(at).copied().ok_or(CodecError::UnexpectedEof {
        context: "record field",
    })
}

/// Streams fixed-width rows, keeping only in-range records.
fn filter_rows(buf: &[u8], range: &Cuboid) -> Result<Filtered, CodecError> {
    let mut pos = 0usize;
    let count = read_varint_u64(buf, &mut pos)?;
    if count > (1 << 26) {
        return Err(CodecError::TooLarge { declared: count });
    }
    let count = usize::try_from(count).map_err(|_| CodecError::TooLarge { declared: count })?;
    let rows = count
        .checked_mul(ROW_WIDTH)
        .and_then(|len| pos.checked_add(len))
        .and_then(|end| buf.get(pos..end))
        .ok_or(CodecError::UnexpectedEof {
            context: "row records",
        })?;
    let mut matched = RecordBatch::new();
    for row in rows.chunks_exact(ROW_WIDTH) {
        // Core attributes sit at fixed offsets: oid 0..4, time 4..12,
        // x 12..20, y 20..28.
        let time = i64::from_le_bytes(field::<8>(row, 4)?);
        let x = f64::from_le_bytes(field::<8>(row, 12)?);
        let y = f64::from_le_bytes(field::<8>(row, 20)?);
        #[allow(clippy::cast_precision_loss)]
        let inside = range.contains_point(&blot_geo::Point::new(x, y, time as f64));
        if !inside {
            continue;
        }
        matched.push(Record {
            oid: u32::from_le_bytes(field::<4>(row, 0)?),
            time,
            x,
            y,
            speed: f32::from_le_bytes(field::<4>(row, 28)?),
            heading: f32::from_le_bytes(field::<4>(row, 32)?),
            occupied: byte(row, 36)? != 0,
            passengers: byte(row, 37)?,
        });
    }
    Ok(Filtered {
        matched,
        scanned: count,
    })
}

/// Reads a length-prefixed column chunk and advances `pos` past it.
fn read_chunk<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CodecError> {
    let len = read_varint_u64(buf, pos)?;
    let len = usize::try_from(len).map_err(|_| CodecError::TooLarge { declared: len })?;
    let start = *pos;
    let chunk = start
        .checked_add(len)
        .and_then(|end| buf.get(start..end))
        .ok_or(CodecError::UnexpectedEof {
            context: "column chunk",
        })?;
    *pos = start + len;
    Ok(chunk)
}

/// Decodes core columns, masks, then materialises only matching rows.
fn filter_columns(buf: &[u8], range: &Cuboid) -> Result<Filtered, CodecError> {
    let mut pos = 0usize;
    let count = read_varint_u64(buf, &mut pos)?;
    if count > (1 << 26) {
        return Err(CodecError::TooLarge { declared: count });
    }
    let n = usize::try_from(count).map_err(|_| CodecError::TooLarge { declared: count })?;

    // Column order matches layout::encode_columns:
    // oid, time, x, y, speed, heading, occupied, passengers.
    let oid_c = read_chunk(buf, &mut pos)?;
    let time_c = read_chunk(buf, &mut pos)?;
    let x_c = read_chunk(buf, &mut pos)?;
    let y_c = read_chunk(buf, &mut pos)?;
    let sp_c = read_chunk(buf, &mut pos)?;
    let hd_c = read_chunk(buf, &mut pos)?;
    let oc_c = read_chunk(buf, &mut pos)?;
    let pa_c = read_chunk(buf, &mut pos)?;

    // Core columns first.
    let mut times = Vec::with_capacity(n);
    {
        let mut cpos = 0usize;
        let mut prev = 0i64;
        for _ in 0..n {
            prev = prev.wrapping_add(read_varint_i64(time_c, &mut cpos)?);
            times.push(prev);
        }
    }
    let xs = crate::gorilla::decode_f64_column(x_c, n)?;
    let ys = crate::gorilla::decode_f64_column(y_c, n)?;

    let mask: Vec<bool> = xs
        .iter()
        .zip(&ys)
        .zip(&times)
        .map(|((&x, &y), &t)| {
            #[allow(clippy::cast_precision_loss)]
            let t = t as f64;
            range.contains_point(&blot_geo::Point::new(x, y, t))
        })
        .collect();
    let matched_count = mask.iter().filter(|&&m| m).count();
    if matched_count == 0 {
        return Ok(Filtered {
            matched: RecordBatch::new(),
            scanned: n,
        });
    }

    // Remaining columns, then gather by mask.
    let mut oids = Vec::with_capacity(n);
    {
        let mut cpos = 0usize;
        let mut prev = 0i64;
        for _ in 0..n {
            prev += read_varint_i64(oid_c, &mut cpos)?;
            let oid = u32::try_from(prev).map_err(|_| CodecError::Corrupt {
                context: "oid column out of range",
            })?;
            oids.push(oid);
        }
    }
    let speeds = crate::gorilla::decode_f32_column(sp_c, n)?;
    let headings = crate::gorilla::decode_f32_column(hd_c, n)?;
    let occ = crate::rle::rle_decode(oc_c)?;
    let passengers = crate::rle::rle_decode(pa_c)?;
    if occ.len() != n || passengers.len() != n {
        return Err(CodecError::Corrupt {
            context: "column length mismatch",
        });
    }

    let mut matched = RecordBatch::with_capacity(matched_count);
    let cols = oids
        .into_iter()
        .zip(times)
        .zip(xs.into_iter().zip(ys))
        .zip(speeds.into_iter().zip(headings))
        .zip(occ.into_iter().zip(passengers));
    for (&keep, ((((oid, time), (x, y)), (speed, heading)), (occupied, passengers))) in
        mask.iter().zip(cols)
    {
        if keep {
            matched.push(Record {
                oid,
                time,
                x,
                y,
                speed,
                heading,
                occupied: occupied != 0,
                passengers,
            });
        }
    }
    Ok(Filtered {
        matched,
        scanned: n,
    })
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss
)]
mod tests {
    use super::*;
    use blot_geo::Point;

    fn batch(n: usize) -> RecordBatch {
        (0..n)
            .map(|i| {
                let mut r = Record::new(
                    (i % 6) as u32,
                    1_000 + (i as i64) * 10,
                    121.0 + (i as f64) * 1e-4,
                    31.0 + (i as f64) * 5e-5,
                );
                r.speed = (i % 50) as f32;
                r.occupied = i % 3 == 0;
                r.passengers = (i % 4) as u8;
                r
            })
            .collect()
    }

    fn test_range() -> Cuboid {
        Cuboid::new(
            Point::new(121.01, 31.0, 1_500.0),
            Point::new(121.05, 31.02, 6_000.0),
        )
    }

    #[test]
    fn filtered_decode_equals_decode_then_filter() {
        let b = batch(1_200);
        let range = test_range();
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&b);
            let filtered = scheme.decode_filter(&bytes, &range).unwrap();
            let full = scheme.decode(&bytes).unwrap();
            let expected = full.filter_range(&range);
            assert_eq!(filtered.scanned, b.len(), "{scheme}");
            assert_eq!(filtered.matched, expected, "{scheme}");
            assert!(
                !filtered.matched.is_empty(),
                "test range must match something"
            );
        }
    }

    #[test]
    fn empty_match_reports_scanned_count() {
        let b = batch(300);
        let nowhere = Cuboid::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 1.0));
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&b);
            let f = scheme.decode_filter(&bytes, &nowhere).unwrap();
            assert_eq!(f.scanned, 300);
            assert!(f.matched.is_empty());
        }
    }

    #[test]
    fn corrupt_input_errors_not_panics() {
        let b = batch(100);
        let range = test_range();
        for scheme in EncodingScheme::all() {
            let bytes = scheme.encode(&b);
            assert!(scheme
                .decode_filter(&bytes[..bytes.len() / 2], &range)
                .is_err());
            let wrong = EncodingScheme::all()
                .into_iter()
                .find(|s| *s != scheme)
                .expect("another scheme");
            assert!(matches!(
                wrong.decode_filter(&bytes, &range),
                Err(CodecError::SchemeMismatch { .. })
            ));
        }
    }
}
