//! Per-unit zone maps: min/max footers consulted before payload decode.
//!
//! Every encoded storage unit carries a fixed-size footer with the
//! min/max of its predicate attributes (time, longitude, latitude) and
//! the OID range — the parquet row-group statistics pattern applied to
//! BLOT units. A scan planner reads the footer (a tail-sized fetch, like
//! a parquet footer) and skips the payload entirely when the unit's
//! bounding box cannot intersect the query cuboid.
//!
//! # Wire format
//!
//! The footer is appended *after* the compressed payload and parsed
//! backwards from the end of the unit:
//!
//! ```text
//! [compressed payload][stats 64B][version 1B][checksum 4B][magic 4B]
//! ```
//!
//! The 64-byte stats block is little-endian: `count u64`, `min_time
//! i64`, `max_time i64`, `min_x f64`, `max_x f64`, `min_y f64`, `max_y
//! f64`, `min_oid u32`, `max_oid u32`. The checksum is FNV-1a over the
//! stats block plus the version byte. Units written before this footer
//! existed simply lack the magic and parse as [`None`] — they are never
//! pruned, only scanned. A present-but-damaged footer is a hard
//! [`CodecError`]: mis-pruning (silently dropping matching records) is
//! the one failure mode this module must never exhibit.
//!
//! # Exactness
//!
//! Query filters compare record times as `time as f64` (the cuboid's
//! time axis is `f64`). `i64 → f64` casts are monotone, so comparing the
//! cast of the min/max time against the cuboid bounds makes the same
//! keep/skip decision the per-record filter would — pruning is exact
//! with respect to filter semantics, not merely conservative. NaN
//! coordinates are ignored by the min/max fold; a NaN never satisfies a
//! range predicate, so a unit whose only out-of-bounds records are NaN
//! still prunes correctly.

use blot_geo::Cuboid;
use blot_model::RecordBatch;

use crate::CodecError;

/// Total footer length: 64 stats + 1 version + 4 checksum + 4 magic.
pub const ZONE_MAP_FOOTER_LEN: usize = 73;

/// Trailing magic identifying a footer-bearing unit.
const MAGIC: [u8; 4] = *b"ZMAP";

/// Current footer format version.
const VERSION: u8 = 1;

/// Length of the stats block (the checksummed part minus the version).
const STATS_LEN: usize = 64;

/// Min/max statistics over one encoded unit's records.
///
/// `min_* > max_*` (the fold sentinels) encodes an empty unit; an empty
/// unit [`overlaps`](Self::overlaps) nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    /// Number of records in the unit.
    pub count: u64,
    /// Earliest record timestamp.
    pub min_time: i64,
    /// Latest record timestamp.
    pub max_time: i64,
    /// Westernmost longitude.
    pub min_x: f64,
    /// Easternmost longitude.
    pub max_x: f64,
    /// Southernmost latitude.
    pub min_y: f64,
    /// Northernmost latitude.
    pub max_y: f64,
    /// Smallest object id.
    pub min_oid: u32,
    /// Largest object id.
    pub max_oid: u32,
}

/// FNV-1a over `bytes` — tiny, dependency-free, adequate for detecting
/// torn or bit-rotted footers (payload integrity is the compressor's
/// problem).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], CodecError> {
    let end = pos.checked_add(N).ok_or(CodecError::UnexpectedEof {
        context: "zone-map footer field",
    })?;
    let arr = buf
        .get(*pos..end)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(CodecError::UnexpectedEof {
            context: "zone-map footer field",
        })?;
    *pos = end;
    Ok(arr)
}

impl ZoneMap {
    /// Computes the statistics of a batch. Invariant under record
    /// reordering, so row and column layouts of the same partition carry
    /// identical footers.
    #[must_use]
    pub fn from_batch(batch: &RecordBatch) -> Self {
        let mut zm = Self {
            count: batch.len() as u64,
            min_time: i64::MAX,
            max_time: i64::MIN,
            min_x: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            min_y: f64::INFINITY,
            max_y: f64::NEG_INFINITY,
            min_oid: u32::MAX,
            max_oid: u32::MIN,
        };
        for &t in &batch.times {
            zm.min_time = zm.min_time.min(t);
            zm.max_time = zm.max_time.max(t);
        }
        // `f64::min`/`max` return the other operand when one side is
        // NaN, so NaN coordinates drop out of the fold.
        for &x in &batch.xs {
            zm.min_x = zm.min_x.min(x);
            zm.max_x = zm.max_x.max(x);
        }
        for &y in &batch.ys {
            zm.min_y = zm.min_y.min(y);
            zm.max_y = zm.max_y.max(y);
        }
        for &oid in &batch.oids {
            zm.min_oid = zm.min_oid.min(oid);
            zm.max_oid = zm.max_oid.max(oid);
        }
        zm
    }

    /// Whether the unit can hold any record inside `range`, under the
    /// same closed-boundary comparisons [`Cuboid::contains_point`] uses.
    #[must_use]
    pub fn overlaps(&self, range: &Cuboid) -> bool {
        if self.count == 0 {
            return false;
        }
        // Same monotone cast the per-record filter applies to `time`.
        #[allow(clippy::cast_precision_loss)]
        let (t_lo, t_hi) = (self.min_time as f64, self.max_time as f64);
        let (lo, hi) = (range.min(), range.max());
        t_lo <= hi.t
            && t_hi >= lo.t
            && self.min_x <= hi.x
            && self.max_x >= lo.x
            && self.min_y <= hi.y
            && self.max_y >= lo.y
    }

    /// Appends the 73-byte footer to an encoded unit.
    pub fn append_to(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.min_time.to_le_bytes());
        out.extend_from_slice(&self.max_time.to_le_bytes());
        out.extend_from_slice(&self.min_x.to_le_bytes());
        out.extend_from_slice(&self.max_x.to_le_bytes());
        out.extend_from_slice(&self.min_y.to_le_bytes());
        out.extend_from_slice(&self.max_y.to_le_bytes());
        out.extend_from_slice(&self.min_oid.to_le_bytes());
        out.extend_from_slice(&self.max_oid.to_le_bytes());
        out.push(VERSION);
        let checksum = fnv1a(out.get(start..).unwrap_or_default());
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&MAGIC);
    }

    /// Splits an encoded unit into `(payload, footer)`.
    ///
    /// A unit without the trailing magic is a legacy unit: the whole
    /// input is payload and the footer is `None` (scan everything, never
    /// prune). A unit *with* the magic must carry a complete, valid
    /// footer.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] when the magic is present
    /// but the unit is shorter than a full footer, and
    /// [`CodecError::Corrupt`] on a checksum or version mismatch.
    pub fn split_footer(unit: &[u8]) -> Result<(&[u8], Option<Self>), CodecError> {
        let has_magic = unit
            .len()
            .checked_sub(MAGIC.len())
            .and_then(|at| unit.get(at..))
            .is_some_and(|tail| tail == MAGIC);
        if !has_magic {
            return Ok((unit, None));
        }
        let at = unit
            .len()
            .checked_sub(ZONE_MAP_FOOTER_LEN)
            .ok_or(CodecError::UnexpectedEof {
                context: "zone-map footer",
            })?;
        let (payload, footer) = unit.split_at_checked(at).ok_or(CodecError::UnexpectedEof {
            context: "zone-map footer",
        })?;
        Ok((payload, Some(Self::parse(footer)?)))
    }

    /// Parses a 73-byte footer (stats + version + checksum + magic).
    fn parse(footer: &[u8]) -> Result<Self, CodecError> {
        let mut pos = 0usize;
        let zm = Self {
            count: u64::from_le_bytes(take::<8>(footer, &mut pos)?),
            min_time: i64::from_le_bytes(take::<8>(footer, &mut pos)?),
            max_time: i64::from_le_bytes(take::<8>(footer, &mut pos)?),
            min_x: f64::from_le_bytes(take::<8>(footer, &mut pos)?),
            max_x: f64::from_le_bytes(take::<8>(footer, &mut pos)?),
            min_y: f64::from_le_bytes(take::<8>(footer, &mut pos)?),
            max_y: f64::from_le_bytes(take::<8>(footer, &mut pos)?),
            min_oid: u32::from_le_bytes(take::<4>(footer, &mut pos)?),
            max_oid: u32::from_le_bytes(take::<4>(footer, &mut pos)?),
        };
        let [version] = take::<1>(footer, &mut pos)?;
        let declared = u32::from_le_bytes(take::<4>(footer, &mut pos)?);
        let actual = fnv1a(footer.get(..STATS_LEN + 1).unwrap_or_default());
        if declared != actual {
            return Err(CodecError::Corrupt {
                context: "zone-map footer checksum mismatch",
            });
        }
        if version != VERSION {
            return Err(CodecError::Corrupt {
                context: "unknown zone-map footer version",
            });
        }
        Ok(zm)
    }

    /// Bit-exact comparison against another zone map (`-0.0 != 0.0`,
    /// `NaN == NaN` with the same payload). Scrub recomputes the stats
    /// from the decoded records and demands bitwise agreement with the
    /// stored footer.
    #[must_use]
    pub fn same_bits(&self, other: &Self) -> bool {
        self.count == other.count
            && self.min_time == other.min_time
            && self.max_time == other.max_time
            && self.min_x.to_bits() == other.min_x.to_bits()
            && self.max_x.to_bits() == other.max_x.to_bits()
            && self.min_y.to_bits() == other.min_y.to_bits()
            && self.max_y.to_bits() == other.max_y.to_bits()
            && self.min_oid == other.min_oid
            && self.max_oid == other.max_oid
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss
)]
mod tests {
    use super::*;
    use blot_geo::Point;
    use blot_model::Record;

    fn batch(n: usize) -> RecordBatch {
        (0..n)
            .map(|i| {
                Record::new(
                    (i % 9) as u32,
                    5_000 + (i as i64) * 7,
                    121.0 + (i as f64) * 1e-3,
                    31.0 + (i as f64) * 1e-4,
                )
            })
            .collect()
    }

    #[test]
    fn footer_roundtrips() {
        let zm = ZoneMap::from_batch(&batch(50));
        let mut unit = vec![9u8; 40];
        zm.append_to(&mut unit);
        assert_eq!(unit.len(), 40 + ZONE_MAP_FOOTER_LEN);
        let (payload, parsed) = ZoneMap::split_footer(&unit).unwrap();
        assert_eq!(payload, &[9u8; 40][..]);
        assert!(parsed.unwrap().same_bits(&zm));
    }

    #[test]
    fn legacy_unit_parses_as_none() {
        let unit = vec![1u8, 2, 3, 4, 5];
        let (payload, zm) = ZoneMap::split_footer(&unit).unwrap();
        assert_eq!(payload, &unit[..]);
        assert!(zm.is_none());
    }

    #[test]
    fn corrupt_footer_is_an_error_not_a_prune() {
        let zm = ZoneMap::from_batch(&batch(10));
        let mut unit = vec![0u8; 16];
        zm.append_to(&mut unit);
        // Flip one stats byte: checksum must catch it.
        unit[20] ^= 0xFF;
        assert!(matches!(
            ZoneMap::split_footer(&unit),
            Err(CodecError::Corrupt { .. })
        ));
        // Magic alone, unit too short for a footer.
        let stub = MAGIC.to_vec();
        assert!(matches!(
            ZoneMap::split_footer(&stub),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlap_matches_filter_semantics() {
        let b = batch(100);
        let zm = ZoneMap::from_batch(&b);
        let hit = Cuboid::new(
            Point::new(121.0, 31.0, 5_000.0),
            Point::new(121.01, 31.001, 5_100.0),
        );
        assert!(zm.overlaps(&hit));
        // Past the data's time range: out.
        let miss = Cuboid::new(
            Point::new(121.0, 31.0, 6_000.0),
            Point::new(122.0, 32.0, 9_000.0),
        );
        assert!(!zm.overlaps(&miss));
        // Touching the max time exactly (closed boundary): in.
        let edge = Cuboid::new(
            Point::new(121.0, 31.0, 5_693.0),
            Point::new(122.0, 32.0, 9_000.0),
        );
        assert!(zm.overlaps(&edge));
    }

    #[test]
    fn empty_batch_overlaps_nothing() {
        let zm = ZoneMap::from_batch(&RecordBatch::new());
        assert_eq!(zm.count, 0);
        let everywhere = Cuboid::new(
            Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
            Point::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
        );
        assert!(!zm.overlaps(&everywhere));
        // And it still roundtrips through the wire format.
        let mut unit = Vec::new();
        zm.append_to(&mut unit);
        let (_, parsed) = ZoneMap::split_footer(&unit).unwrap();
        assert!(parsed.unwrap().same_bits(&zm));
    }

    #[test]
    fn nan_coordinates_are_ignored_by_the_fold() {
        let mut b = batch(5);
        b.push(Record::new(3, 5_010, f64::NAN, f64::NAN));
        let zm = ZoneMap::from_batch(&b);
        assert!(zm.min_x.is_finite() && zm.max_x.is_finite());
        assert_eq!(zm.count, 6);
    }
}
