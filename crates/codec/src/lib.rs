//! Physical encoding stack for BLOT partitions.
//!
//! §II-C of the paper lists the encoding toolbox of a BLOT system: binary
//! instead of text, general-purpose compression of whole partitions, and
//! column-wise organisation with column encodings (delta, run-length),
//! freely combined. The evaluation instantiates seven concrete *encoding
//! schemes* (Table I): `{row, column} × {plain, Snappy, Gzip, LZMA2}`
//! minus the uncompressed column store.
//!
//! The environment this reproduction runs in has no compression crates
//! available, so the three general-purpose compressors are implemented
//! from scratch, each standing in for one point on the speed/ratio
//! spectrum:
//!
//! | paper    | here                     | class                          |
//! |----------|--------------------------|--------------------------------|
//! | Snappy   | [`Compression::Lzf`]     | byte-aligned greedy LZ, fast   |
//! | Gzip     | [`Compression::Deflate`] | LZSS + canonical Huffman       |
//! | LZMA2    | [`Compression::Lzr`]     | LZ + adaptive binary range coder, slow/high-ratio |
//!
//! The physical layouts are:
//!
//! * [`Layout::Row`] — fixed-width little-endian binary rows;
//! * [`Layout::Column`] — struct-of-arrays with per-column encodings:
//!   delta+zigzag varints for IDs and timestamps, Gorilla-style XOR float
//!   compression for coordinates, run-length encoding for flags.
//!
//! An [`EncodingScheme`] pairs a layout with a compression and is the unit
//! the replica selection problem enumerates (`m = m_P · m_E` candidate
//! replicas, §III-A).
//!
//! # Example
//!
//! ```
//! use blot_codec::{EncodingScheme, Layout, Compression};
//! use blot_model::{Record, RecordBatch};
//!
//! let mut batch: RecordBatch =
//!     (0..100).map(|i| Record::new(i % 4, i64::from(i), 121.4 + f64::from(i) * 1e-4, 31.2)).collect();
//! let scheme = EncodingScheme::new(Layout::Column, Compression::Deflate);
//! let bytes = scheme.encode(&batch);
//! let back = scheme.decode(&bytes).unwrap();
//! batch.sort_by_oid_time(); // column layout stores records in (oid, time) order
//! assert_eq!(back, batch);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitio;
mod deflate;
mod error;
mod filter;
mod gorilla;
mod huffman;
mod layout;
mod lz77;
mod lzf;
mod lzr;
mod range;
mod rle;
mod scheme;
mod varint;
mod zonemap;

pub use bitio::{BitReader, BitWriter};
pub use error::CodecError;
pub use filter::{DecodeScratch, Filtered};
pub use scheme::{Compression, EncodingScheme, Layout, SchemeTable};
pub use zonemap::{ZoneMap, ZONE_MAP_FOOTER_LEN};

pub use deflate::{deflate_compress, deflate_decompress};
pub use lzf::{lzf_compress, lzf_decompress};
pub use lzr::{lzr_compress, lzr_decompress};

pub use rle::{rle_decode, rle_encode};
pub use varint::{
    read_varint_i64, read_varint_u64, write_varint_i64, write_varint_u64, zigzag_decode,
    zigzag_encode,
};
