//! `cargo xtask fuzz` — a native, dependency-free fuzz runner for the
//! codec decode paths.
//!
//! The container has no cargo-fuzz/libFuzzer, so the harness lives
//! here: a deterministic xorshift RNG drives structured mutations of
//! valid encodings (bit flips, truncations, splices, raw noise) into
//! every decoder, under `std::panic::catch_unwind`. The workspace audit
//! bans panics in the codec, and the `decoders_never_panic_on_garbage`
//! property test samples the same contract — the fuzz lane just pushes
//! orders of magnitude more inputs through it on a time budget.
//!
//! There is one target per decoder — fourteen in all: the three
//! general-purpose decompressors, the tag-sniffing `decode_auto`, the
//! eight per-scheme `EncodingScheme::decode` paths of the full
//! layout × compression grid, the zone-map footer parser
//! (`zonemap_footer`), and the `blot-server` wire-frame decoder
//! (`server_frame`). The `registry` lint cross-checks the codec part of
//! this list against the parsed `Compression`/`Layout` variants, so
//! adding a variant without its fuzz target fails `cargo xtask lint`.

use blot_codec::{
    deflate_compress, deflate_decompress, lzf_compress, lzf_decompress, lzr_compress,
    lzr_decompress, Compression, EncodingScheme, Layout, ZoneMap,
};
use blot_geo::{Cuboid, Point};
use blot_model::{Record, RecordBatch};
use blot_obs::{SpanContext, SpanId, TraceId};
use blot_server::wire::{
    encode_frame, RemoteQueryResult, Request, Response, TraceFilter, WireQuery,
};
use std::time::{Duration, Instant};

/// One fuzz target: a named decoder entry point that must never panic.
#[derive(Debug)]
pub struct FuzzTarget {
    /// Registry name (`lzf`, `decode_row_deflate`, …).
    pub name: &'static str,
    run: fn(&[u8]),
}

fn t_lzf(d: &[u8]) {
    let _ = lzf_decompress(d);
}
fn t_deflate(d: &[u8]) {
    let _ = deflate_decompress(d);
}
fn t_lzr(d: &[u8]) {
    let _ = lzr_decompress(d);
}
fn t_decode_auto(d: &[u8]) {
    let _ = EncodingScheme::decode_auto(d);
}
fn t_server_frame(d: &[u8]) {
    blot_server::wire::fuzz_decode(d);
}
fn t_zonemap_footer(d: &[u8]) {
    // Parsing must never panic, and any footer that survives the
    // checksum must support a prune decision without arithmetic traps.
    if let Ok((_, Some(zm))) = ZoneMap::split_footer(d) {
        let probe = Cuboid::new(Point::new(120.0, 30.0, 0.0), Point::new(122.0, 32.0, 1.0e8));
        let _ = zm.overlaps(&probe);
    }
}

macro_rules! scheme_target {
    ($fn_name:ident, $layout:ident, $comp:ident) => {
        fn $fn_name(d: &[u8]) {
            let _ = EncodingScheme::new(Layout::$layout, Compression::$comp).decode(d);
        }
    };
}

scheme_target!(t_row_plain, Row, Plain);
scheme_target!(t_row_lzf, Row, Lzf);
scheme_target!(t_row_deflate, Row, Deflate);
scheme_target!(t_row_lzr, Row, Lzr);
scheme_target!(t_column_plain, Column, Plain);
scheme_target!(t_column_lzf, Column, Lzf);
scheme_target!(t_column_deflate, Column, Deflate);
scheme_target!(t_column_lzr, Column, Lzr);

/// The fourteen decoder targets.
pub const TARGETS: &[FuzzTarget] = &[
    FuzzTarget {
        name: "lzf",
        run: t_lzf,
    },
    FuzzTarget {
        name: "deflate",
        run: t_deflate,
    },
    FuzzTarget {
        name: "lzr",
        run: t_lzr,
    },
    FuzzTarget {
        name: "decode_auto",
        run: t_decode_auto,
    },
    FuzzTarget {
        name: "decode_row_plain",
        run: t_row_plain,
    },
    FuzzTarget {
        name: "decode_row_lzf",
        run: t_row_lzf,
    },
    FuzzTarget {
        name: "decode_row_deflate",
        run: t_row_deflate,
    },
    FuzzTarget {
        name: "decode_row_lzr",
        run: t_row_lzr,
    },
    FuzzTarget {
        name: "decode_column_plain",
        run: t_column_plain,
    },
    FuzzTarget {
        name: "decode_column_lzf",
        run: t_column_lzf,
    },
    FuzzTarget {
        name: "decode_column_deflate",
        run: t_column_deflate,
    },
    FuzzTarget {
        name: "decode_column_lzr",
        run: t_column_lzr,
    },
    FuzzTarget {
        name: "zonemap_footer",
        run: t_zonemap_footer,
    },
    FuzzTarget {
        name: "server_frame",
        run: t_server_frame,
    },
];

/// The registered target names (for the `registry` lint and `--help`).
#[must_use]
pub fn target_names() -> Vec<&'static str> {
    TARGETS.iter().map(|t| t.name).collect()
}

/// A panic caught in one decoder.
#[derive(Debug)]
pub struct Failure {
    /// Hex dump of the offending input (truncated to 256 bytes).
    pub input_hex: String,
    /// The panic payload, when it was a string.
    pub message: String,
}

/// Result of fuzzing one target.
#[derive(Debug)]
pub struct TargetSummary {
    /// Target name.
    pub name: &'static str,
    /// Inputs executed.
    pub execs: u64,
    /// Panics caught (fuzzing a target stops after the first few).
    pub failures: Vec<Failure>,
}

/// Deterministic xorshift64* generator — the fuzzer must reproduce a
/// run exactly from the target name alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            usize::try_from(self.next() % n as u64).unwrap_or(0)
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic trajectory-shaped batch for seed corpora.
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss
)]
fn seed_batch(n: usize) -> RecordBatch {
    (0..n)
        .map(|i| {
            let f = i as f64;
            let mut r = Record::new(
                (i % 8) as u32,
                1000 + (i as i64) * 15,
                121.0 + f * 1e-4,
                31.0 + f * 1e-5,
            );
            r.speed = (i % 60) as f32;
            r.occupied = i % 2 == 0;
            r
        })
        .collect()
}

/// Valid encodings plus raw patterns: mutations of real streams reach
/// much deeper decoder states than pure noise.
fn build_seeds() -> Vec<Vec<u8>> {
    let batch = seed_batch(64);
    let mut seeds: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0u8],
        (0u8..64).collect(),
        b"abcabcabcabcabcabcabcabcabcabc".to_vec(),
    ];
    for scheme in EncodingScheme::grid() {
        seeds.push(scheme.encode(&batch));
    }
    let pattern: Vec<u8> = (0u8..200).map(|i| i % 17).collect();
    seeds.push(lzf_compress(&pattern));
    seeds.push(deflate_compress(&pattern));
    seeds.push(lzr_compress(&pattern));
    // A bare zone-map footer, so mutations explore the checksum and
    // version checks without having to reconstruct the 73-byte tail.
    let mut footer = Vec::new();
    ZoneMap::from_batch(&batch).append_to(&mut footer);
    seeds.push(footer);
    // Valid wire frames for the `server_frame` target, covering the
    // trace-context grammar: a query carrying the optional 24-byte
    // trace tail, a trace-export request, the extended `QueryOk` with
    // its per-stage breakdown, and a `TraceOk` JSON reply. Mutations
    // from these explore the context/no-context payload split and the
    // zero-trace-id rejection.
    let range = Cuboid::new(Point::new(120.0, 30.0, 0.0), Point::new(122.0, 32.0, 1.0e8));
    let ctx = SpanContext {
        trace: TraceId(0x5EED_0000_0000_0000_0000_0000_0000_0001),
        span: SpanId(0x5EED_0002),
    };
    let frames = [
        Request::RangeQuery(WireQuery {
            range,
            ctx: Some(ctx),
        })
        .encode(),
        Request::Trace(TraceFilter {
            slow_ms: 2.5,
            last: 4,
        })
        .encode(),
        Response::QueryOk(Box::new(RemoteQueryResult {
            records: seed_batch(8),
            replica: 1,
            sim_ms: 3.5,
            makespan_ms: 1.25,
            partitions_scanned: 6,
            units_skipped: 2,
            bytes_skipped: 4096,
            admission_ms: 0.5,
            batch_ms: 0.75,
            store_ms: 2.0,
            failed_over: vec![0],
        }))
        .encode(),
        Response::TraceOk("[{\"name\":\"store.query\"}]".to_string()).encode(),
    ];
    for (kind, payload) in frames {
        seeds.push(encode_frame(kind, &payload));
    }
    seeds
}

fn mutate(rng: &mut Rng, seeds: &[Vec<u8>]) -> Vec<u8> {
    let mut input = seeds
        .get(rng.below(seeds.len()))
        .cloned()
        .unwrap_or_default();
    match rng.below(6) {
        // Bit flips.
        0 => {
            for _ in 0..=rng.below(8) {
                if input.is_empty() {
                    break;
                }
                let i = rng.below(input.len());
                if let Some(b) = input.get_mut(i) {
                    *b ^= 1 << rng.below(8);
                }
            }
        }
        // Byte overwrites.
        1 => {
            for _ in 0..=rng.below(4) {
                if input.is_empty() {
                    break;
                }
                let i = rng.below(input.len());
                #[allow(clippy::cast_possible_truncation)]
                let v = rng.next() as u8;
                if let Some(b) = input.get_mut(i) {
                    *b = v;
                }
            }
        }
        // Truncation.
        2 => {
            input.truncate(rng.below(input.len() + 1));
        }
        // Random extension.
        3 => {
            for _ in 0..rng.below(64) {
                #[allow(clippy::cast_possible_truncation)]
                input.push(rng.next() as u8);
            }
        }
        // Splice a window of another seed into this one.
        4 => {
            if let Some(other) = seeds.get(rng.below(seeds.len())) {
                if !other.is_empty() {
                    let from = rng.below(other.len());
                    let len = rng.below(other.len() - from + 1);
                    let at = rng.below(input.len() + 1);
                    let window: Vec<u8> = other.iter().skip(from).take(len).copied().collect();
                    input.splice(at..at, window);
                }
            }
        }
        // Pure noise.
        _ => {
            input.clear();
            for _ in 0..rng.below(300) {
                #[allow(clippy::cast_possible_truncation)]
                input.push(rng.next() as u8);
            }
        }
    }
    input
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().min(256) * 2);
    for b in bytes.iter().take(256) {
        out.push_str(&format!("{b:02x}"));
    }
    if bytes.len() > 256 {
        out.push('…');
    }
    out
}

/// Fuzzes the registered targets for `millis_per_target` each.
///
/// `filter` restricts the run to one target by name. The caller gets a
/// summary per target; any non-empty `failures` list is a bug in the
/// decoder under test.
///
/// # Errors
///
/// Returns a message when `filter` names no registered target.
pub fn run(filter: Option<&str>, millis_per_target: u64) -> Result<Vec<TargetSummary>, String> {
    let targets: Vec<&FuzzTarget> = TARGETS
        .iter()
        .filter(|t| filter.is_none_or(|f| t.name == f))
        .collect();
    if targets.is_empty() {
        return Err(format!(
            "unknown fuzz target `{}`; registered: {}",
            filter.unwrap_or_default(),
            target_names().join(", ")
        ));
    }
    let seeds = build_seeds();
    // Silence the default per-panic backtrace spew while fuzzing.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut summaries = Vec::with_capacity(targets.len());
    for target in targets {
        let mut rng = Rng::new(fnv(target.name));
        let budget = Duration::from_millis(millis_per_target);
        let start = Instant::now();
        let mut summary = TargetSummary {
            name: target.name,
            execs: 0,
            failures: Vec::new(),
        };
        while start.elapsed() < budget && summary.failures.len() < 4 {
            let input = mutate(&mut rng, &seeds);
            let run = target.run;
            if let Err(payload) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&input)))
            {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                summary.failures.push(Failure {
                    input_hex: hex(&input),
                    message,
                });
            }
            summary.execs += 1;
        }
        summaries.push(summary);
    }
    std::panic::set_hook(prev_hook);
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_targets_cover_the_grid_the_footer_and_the_wire() {
        assert_eq!(TARGETS.len(), 14);
        let names = target_names();
        assert!(names.contains(&"decode_auto"));
        assert!(names.contains(&"server_frame"));
        assert!(names.contains(&"zonemap_footer"));
        for scheme in EncodingScheme::grid() {
            let layout = match scheme.layout {
                Layout::Row => "row",
                Layout::Column => "column",
            };
            let comp = match scheme.compression {
                Compression::Plain => "plain",
                Compression::Lzf => "lzf",
                Compression::Deflate => "deflate",
                Compression::Lzr => "lzr",
            };
            assert!(names.contains(&format!("decode_{layout}_{comp}").as_str()));
        }
    }

    #[test]
    fn smoke_run_is_deterministic_and_clean() {
        let a = run(Some("decode_auto"), 50).unwrap();
        assert_eq!(a.len(), 1);
        assert!(a[0].execs > 0);
        assert!(a[0].failures.is_empty(), "{:?}", a[0].failures);
    }

    #[test]
    fn unknown_target_is_an_error() {
        assert!(run(Some("nope"), 10).is_err());
    }
}
