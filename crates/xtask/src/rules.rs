//! The audit rules: panic-freedom, indexing, error-enum hygiene and
//! `# Errors` documentation (the interprocedural families live in
//! [`crate::dataflow`]).
//!
//! All rules work on the token stream from [`crate::lexer`]; none of
//! them require type information. Violations can be waived site by
//! site with a justification comment, on the offending line or the
//! line above:
//!
//! ```text
//! // audit: allow(indexing, row length checked by the caller)
//! ```
//!
//! or for a whole file (pervasive, structurally-safe patterns such as
//! dense matrix code):
//!
//! ```text
//! // audit: allow-file(indexing, dense simplex tableau, bounds by construction)
//! ```
//!
//! Every allow is collected into a ledger that `cargo xtask lint`
//! prints; allows that waive nothing are themselves violations, so the
//! ledger cannot rot.

use crate::lexer::{lex, Kind, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in `audit: allow(<rule>, …)` comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`,
    /// `unimplemented!` in non-test library code.
    Panic,
    /// `expr[…]` indexing (prefer `.get(…)`) in non-test library code.
    Indexing,
    /// `pub fn … -> Result` without a `# Errors` doc section.
    ErrorsDoc,
    /// Public error enum without an `std::error::Error` impl or without
    /// a `require_error_traits::<…>` Send + Sync assertion.
    ErrorTraits,
    /// Dependency-graph problems (unknown license, duplicate majors).
    Deps,
    /// Interprocedural unit-family inference: cross-family additive or
    /// comparison arithmetic, or re-wrapping an escaped `.get()`/`.0`
    /// value into a different `blot_core::units` family — workspace
    /// wide, through call summaries (the dataflow successor of the old
    /// file-scoped lexical `unit-safety` rule).
    UnitFlow,
    /// A silently discarded fallible call (`let _ =` or a bare `;`
    /// statement dropping a `Result`) in a panic-free crate, or a wire
    /// `ErrorCode` whose `client::disposition()` retryability is
    /// inconsistent with the server's retry-after emission sites.
    ResultDiscipline,
    /// A narrowing `as` cast in the codec/wire bit-level files that the
    /// interval analysis cannot prove in-range (the dataflow successor
    /// of the old lexical `lossy-cast` rule; proved casts are
    /// auto-vetted with the computed interval as witness).
    CastRange,
    /// A `storage::sync` guard held across backend I/O, or a lock
    /// acquisition violating the declared lock order.
    LockDiscipline,
    /// Ad-hoc OS-thread creation (`thread::spawn`, `thread::scope`,
    /// `thread::Builder`) outside the shared scan-executor pool — all
    /// unit-granular parallelism must go through `ScanExecutor`.
    ThreadDiscipline,
    /// A `static` holding an `Atomic*` in the instrumented crates —
    /// global counters must be registered instruments in the
    /// `blot-obs` registry, or they are invisible to snapshots.
    MetricsDiscipline,
    /// A `codec::scheme` variant without a complete toolchain (encoder,
    /// decoder, round-trip proptest, fuzz target).
    Registry,
    /// A function in a panic-free crate transitively reaches a
    /// panic/unwrap/indexing site in another workspace crate (the
    /// workspace call-graph closes the cross-crate escape hatch the
    /// lexical `panic` rule cannot see).
    PanicReach,
    /// A guard-holding function transitively re-acquires its own lock,
    /// inverts the declared lock order, performs blocking I/O, or
    /// submits to `ScanExecutor::execute_all` through a call chain —
    /// or the workspace lock-acquisition graph has a cycle.
    Deadlock,
    /// A `server::wire` `Request`/`Response`/`ErrorCode` variant
    /// without encode + decode arms, a client-side handling arm, and a
    /// test-corpus mention.
    WireRegistry,
    /// The live waiver count differs from the `ratchet.toml` pin.
    Ratchet,
    /// An `audit: allow` comment that waives nothing.
    UnusedAllow,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::Panic,
        Rule::Indexing,
        Rule::ErrorsDoc,
        Rule::ErrorTraits,
        Rule::Deps,
        Rule::UnitFlow,
        Rule::ResultDiscipline,
        Rule::CastRange,
        Rule::LockDiscipline,
        Rule::ThreadDiscipline,
        Rule::MetricsDiscipline,
        Rule::Registry,
        Rule::PanicReach,
        Rule::Deadlock,
        Rule::WireRegistry,
        Rule::Ratchet,
        Rule::UnusedAllow,
    ];

    /// The name used in allow comments and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Indexing => "indexing",
            Rule::ErrorsDoc => "errors-doc",
            Rule::ErrorTraits => "error-traits",
            Rule::Deps => "deps",
            Rule::UnitFlow => "unit-flow",
            Rule::ResultDiscipline => "result-discipline",
            Rule::CastRange => "cast-range",
            Rule::LockDiscipline => "lock-discipline",
            Rule::ThreadDiscipline => "thread-discipline",
            Rule::MetricsDiscipline => "metrics-discipline",
            Rule::Registry => "registry",
            Rule::PanicReach => "panic-reachability",
            Rule::Deadlock => "deadlock",
            Rule::WireRegistry => "wire-registry",
            Rule::Ratchet => "ratchet",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Rationale and fix recipe, for `cargo xtask lint --explain`.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            Rule::Panic => {
                "Why: a panic in the query/repair hot path or a connection handler kills the \
                 whole request (or worker thread) instead of failing over to another replica — \
                 the paper's availability argument assumes per-replica failure isolation.\n\
                 Fix: return a `Result` and propagate with `?`; convert `Option` with \
                 `ok_or(...)`. If the site is provably unreachable, vet it with\n\
                 `// audit: allow(panic, <why it cannot fire>)`."
            }
            Rule::Indexing => {
                "Why: `expr[i]` panics on a bad index; in panic-free crates that is the same \
                 hazard as `.unwrap()`. Most out-of-bounds bugs arrive via refactors that \
                 change a length invariant silently.\n\
                 Fix: use `.get(i)` and handle `None`, iterate instead of indexing, or \
                 destructure fixed-size arrays (`let [a, b, c] = arr;`). Structurally-safe \
                 dense loops can carry `// audit: allow(indexing, <bound argument>)`."
            }
            Rule::ErrorsDoc => {
                "Why: callers of a fallible `pub fn` need to know *which* failures to expect \
                 to route them (retry vs fail over vs abort); an undocumented `Result` \
                 invites `.unwrap()`.\n\
                 Fix: add a `# Errors` section to the doc comment describing each failure \
                 case."
            }
            Rule::ErrorTraits => {
                "Why: error enums that do not implement `std::error::Error + Send + Sync` \
                 cannot cross thread boundaries or be boxed uniformly, which the executor \
                 and server layers rely on.\n\
                 Fix: implement `Display` + `std::error::Error`, and add the\n\
                 `require_error_traits::<YourError>()` compile-time assertion next to the \
                 enum."
            }
            Rule::Deps => {
                "Why: duplicate semver-major dependency versions bloat builds and split \
                 trait impls; undeclared licenses block redistribution.\n\
                 Fix: converge the workspace on one version per crate major and declare a \
                 `license` field in every manifest."
            }
            Rule::UnitFlow => {
                "Why: the cost model mixes milliseconds, bytes, partition counts, record \
                 counts and ratios; adding or comparing two different unit families is \
                 always a bug even though the types (f64) agree, and a `.get()`/`.0` escape \
                 followed by a re-wrap in another crate launders the mistake past any \
                 file-scoped check. The dataflow engine infers each value's family from the \
                 `blot_core::units` constructors, name suffixes and call summaries, \
                 workspace-wide.\n\
                 Fix: convert explicitly before combining (e.g. bytes → ms via the \
                 throughput constant), keep values inside their newtypes across function \
                 boundaries, or vet a true false positive with\n\
                 `// audit: allow(unit-flow, <why the families agree>)`."
            }
            Rule::ResultDiscipline => {
                "Why: in the panic-free crates a discarded `Result` is the silent twin of \
                 `.unwrap()` — a failed `set_read_timeout` means the socket blocks forever, \
                 a dropped `write` result loses bytes with no trace. The same rule \
                 cross-checks the wire contract: an `ErrorCode` the server decorates with a \
                 retry-after hint must map to `RetryAfterHint` in `client::disposition`, \
                 and vice versa, or the hint is dead protocol surface.\n\
                 Fix: handle the error, propagate with `?`, or vet a genuinely best-effort \
                 drop with `// audit: allow(result-discipline, <why the loss is harmless>)`."
            }
            Rule::CastRange => {
                "Why: the bit-level codec/wire files narrow integers while packing; a \
                 silent `as` truncation corrupts frames in a way round-trip tests on small \
                 values miss. The interval analysis proves most sites safe (a masked value, \
                 a length already bounds-checked, an enum's discriminant range) and only \
                 flags the remainder.\n\
                 Fix: use `u8::try_from(x)` (or checked arithmetic) and propagate the \
                 error, tighten the value's range so the proof goes through (mask first, \
                 compare against a bound), or justify the site with\n\
                 `// audit: allow(cast-range, <range argument>)`."
            }
            Rule::LockDiscipline => {
                "Why: a `storage::sync` guard held across backend I/O serialises every \
                 concurrent reader behind one unit's disk latency; out-of-order acquisition \
                 can deadlock two threads taking the pair in opposite orders.\n\
                 Fix: use temporary guards (`self.units.write().insert(...)`), `drop(guard)` \
                 before I/O, and acquire locks in the declared `LOCK_ORDER` (log before \
                 failures before units)."
            }
            Rule::ThreadDiscipline => {
                "Why: ad-hoc `thread::spawn` bypasses the shared `ScanExecutor` pool, so \
                 unit-scan work escapes its admission control and saturates the box under \
                 load.\n\
                 Fix: submit work through `ScanExecutor::execute_all`. Long-lived I/O loops \
                 (accept/handler threads) may carry `// audit: allow(thread-discipline, ...)`."
            }
            Rule::MetricsDiscipline => {
                "Why: a `static` atomic counter is invisible to `metrics_snapshot()` and \
                 `blot stats`, so drift accounting silently under-reports.\n\
                 Fix: register the counter as a `blot_obs` instrument and bump it through \
                 the registry handle."
            }
            Rule::Registry => {
                "Why: a codec scheme variant without an encoder, decoder, round-trip \
                 proptest and fuzz target can be selected at runtime but not actually \
                 (de)serialised — a latent data-loss bug.\n\
                 Fix: add the dispatch arms in `EncodingScheme::{encode,decode}`, a \
                 `<variant>_roundtrips` property test, and register the fuzz target in \
                 `xtask::fuzz`. This rule cannot be waived."
            }
            Rule::PanicReach => {
                "Why: the lexical `panic` rule stops at crate boundaries — a panic-free \
                 crate can still die by calling into a helper crate that panics. The \
                 workspace call graph closes that escape hatch by propagating \
                 panic/unwrap/indexing reachability through resolved call edges.\n\
                 Fix: preferred — make the callee fallible and handle the error at the \
                 frontier call. If the panic is a documented invariant that holds at every \
                 call site, vet it at the source with\n\
                 `// audit: allow(panic-reachability, <invariant argument>)` on the line \
                 above the panicking site; one source vet covers every caller."
            }
            Rule::Deadlock => {
                "Why: per-file lock analysis cannot see a lock re-acquired three frames \
                 below a held guard, blocking I/O reached through a call chain, or an \
                 `execute_all` submission that needs the very lock the submitter holds. Any \
                 of these can wedge the server under load; cycles in the workspace \
                 lock-acquisition graph can deadlock two threads.\n\
                 Fix: drop the guard before calling out (`drop(guard)`), restructure so the \
                 callee receives data instead of taking locks, and keep acquisitions in the \
                 declared `LOCK_ORDER`. False positives from conservative trait dispatch \
                 can carry `// audit: allow(deadlock, <why the call cannot recurse>)` at \
                 the reported call site."
            }
            Rule::WireRegistry => {
                "Why: a `Request`/`Response`/`ErrorCode` variant without encode + decode \
                 arms, client handling and test coverage is a protocol hole: one peer can \
                 emit what the other cannot parse, and nothing fails until production.\n\
                 Fix: add the arms in `wire.rs` (`encode`, `decode`, `from_u16`), give the \
                 client a handling arm or `disposition(...)` entry, and cover the variant \
                 in the e2e or unit tests. This rule cannot be waived."
            }
            Rule::Ratchet => {
                "Why: waiver counts only mean something if they cannot drift — an increase \
                 is a new unreviewed waiver, a decrease is an improvement that would \
                 silently regress if the pin stayed loose.\n\
                 Fix: remove the new waiver, or — after review — run \
                 `cargo xtask lint --update-ratchet` to re-pin."
            }
            Rule::UnusedAllow => {
                "Why: an `audit: allow` that waives nothing is ledger rot — it documents a \
                 hazard that no longer exists and hides the day the hazard comes back.\n\
                 Fix: delete the comment (and run `cargo xtask lint --update-ratchet`)."
            }
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "panic" => Rule::Panic,
            "indexing" => Rule::Indexing,
            "errors-doc" => Rule::ErrorsDoc,
            "error-traits" => Rule::ErrorTraits,
            "deps" => Rule::Deps,
            "unit-flow" => Rule::UnitFlow,
            "result-discipline" => Rule::ResultDiscipline,
            "cast-range" => Rule::CastRange,
            "lock-discipline" => Rule::LockDiscipline,
            "thread-discipline" => Rule::ThreadDiscipline,
            "metrics-discipline" => Rule::MetricsDiscipline,
            "panic-reachability" => Rule::PanicReach,
            "deadlock" => Rule::Deadlock,
            // `registry`, `wire-registry` and `ratchet` are
            // workspace-level structural checks and deliberately cannot
            // be waived site by site.
            _ => return None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the site.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A parsed `audit: allow` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule being waived.
    pub rule: Rule,
    /// Justification text (everything after the comma).
    pub reason: String,
    /// File the comment is in.
    pub file: PathBuf,
    /// 1-based line of the comment.
    pub line: usize,
    /// Whole-file waiver (`allow-file`) instead of site waiver.
    pub file_wide: bool,
    /// How many violations this comment waived.
    pub used: usize,
}

/// Result of auditing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survived the allowlist.
    pub violations: Vec<Violation>,
    /// All allow comments found (with use counts).
    pub allows: Vec<Allow>,
    /// Public error enums declared in this file (for the crate-level
    /// error-traits aggregation).
    pub error_enums: Vec<(String, usize)>,
    /// Names asserted via `require_error_traits::<Name>`.
    pub trait_assertions: Vec<String>,
    /// Names with an `… Error for Name` impl in this file.
    pub error_impls: Vec<String>,
    /// Waived-site counts per rule (for the summary).
    pub waived: Vec<(Rule, usize)>,
}

/// Which rules to run on a file.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// Panic-freedom (rule `panic`).
    pub panic: bool,
    /// Indexing-without-get (rule `indexing`).
    pub indexing: bool,
    /// `# Errors` sections on fallible `pub fn`s (rule `errors-doc`).
    pub errors_doc: bool,
    /// Guard liveness and lock ordering (rule `lock-discipline`).
    pub lock_discipline: bool,
    /// No ad-hoc thread creation outside the executor pool (rule
    /// `thread-discipline`).
    pub thread_discipline: bool,
    /// No `static` atomics outside the metrics registry (rule
    /// `metrics-discipline`).
    pub metrics_discipline: bool,
}

/// Keywords that can precede `[` without the bracket being an index
/// expression (`let [a, b] = …`, `return [x]`, …).
pub(crate) const NON_VALUE_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "continue", "const", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield", "Self",
];

/// Audits one file's source text.
///
/// `rules` selects the per-site rules; enum/impl collection for the
/// crate-level `error-traits` rule always runs.
#[must_use]
pub fn audit_file(file: &Path, source: &str, rules: RuleSet) -> FileReport {
    let tokens = lex(source);
    let mut report = FileReport::default();

    // 1. Allow ledger.
    for t in &tokens {
        if t.kind != Kind::Comment {
            continue;
        }
        if let Some(mut allow) = parse_allow(&t.text) {
            allow.file = file.to_path_buf();
            allow.line = t.line;
            report.allows.push(allow);
        }
    }

    // 2. Significant tokens outside `#[cfg(test)]` items.
    let sig = significant_non_test(&tokens);

    // 3. Per-site rules.
    let mut raw: Vec<Violation> = Vec::new();
    if rules.panic {
        scan_panic_sites(file, &tokens, &sig, &mut raw);
    }
    if rules.indexing {
        scan_indexing(file, &tokens, &sig, &mut raw);
    }
    if rules.errors_doc {
        scan_errors_doc(file, &tokens, &sig, &mut raw);
    }
    if rules.thread_discipline {
        scan_thread_spawns(file, &tokens, &sig, &mut raw);
    }
    if rules.metrics_discipline {
        scan_static_atomics(file, &tokens, &sig, &mut raw);
    }
    if rules.lock_discipline {
        let view = crate::ast::View::new(&tokens, &sig);
        let ast = crate::ast::parse(view);
        crate::locks::scan(file, view, &ast, &mut raw);
    }

    // 4. Error enums / impls / assertions (crate-level aggregation).
    collect_error_items(&tokens, &sig, &mut report);

    // 5. Apply the allowlist.
    let mut waived: std::collections::HashMap<Rule, usize> = std::collections::HashMap::new();
    for v in raw {
        let allow = report.allows.iter_mut().find(|a| {
            a.rule == v.rule && (a.file_wide || a.line == v.line || a.line + 1 == v.line)
        });
        if let Some(a) = allow {
            a.used += 1;
            *waived.entry(v.rule).or_default() += 1;
        } else {
            report.violations.push(v);
        }
    }
    report.waived = waived.into_iter().collect();
    report
}

/// Applies an already-collected allow ledger to a batch of raw
/// violations produced by a workspace-level pass (the call-graph and
/// dataflow analyses), using the same matching policy as
/// [`audit_file`]: same rule, and file-wide or on the offending line or
/// the line above. Matched allows have their use counts bumped;
/// unmatched violations are returned.
#[must_use]
pub fn apply_site_allows(raw: Vec<Violation>, allows: &mut [Allow]) -> Vec<Violation> {
    let mut surviving = Vec::new();
    for v in raw {
        let allow = allows.iter_mut().find(|a| {
            a.rule == v.rule
                && a.file == v.file
                && (a.file_wide || a.line == v.line || a.line + 1 == v.line)
        });
        if let Some(a) = allow {
            a.used += 1;
        } else {
            surviving.push(v);
        }
    }
    surviving
}

/// Parses `audit: allow(rule, reason)` / `audit: allow-file(rule, reason)`
/// out of a comment's text.
fn parse_allow(comment: &str) -> Option<Allow> {
    let at = comment.find("audit:")?;
    let rest = comment[at + "audit:".len()..].trim_start();
    let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        return None;
    };
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule_name, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    Some(Allow {
        rule: Rule::from_name(rule_name)?,
        reason: reason.to_string(),
        file: PathBuf::new(),
        line: 0,
        file_wide,
        used: 0,
    })
}

/// Lexes `source` and returns the token list together with the indices
/// of its significant non-test tokens — the inputs the [`crate::ast`]
/// layer works from.
#[must_use]
pub fn lex_significant(source: &str) -> (Vec<Token>, Vec<usize>) {
    let tokens = lex(source);
    let sig = significant_non_test(&tokens);
    (tokens, sig)
}

/// Indices of Ident/Punct/Literal tokens that are not inside a
/// `#[cfg(test)]` item.
fn significant_non_test(tokens: &[Token]) -> Vec<usize> {
    let all: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.kind, Kind::Ident | Kind::Punct | Kind::Literal))
        .map(|(i, _)| i)
        .collect();

    let mut keep = Vec::with_capacity(all.len());
    let mut k = 0usize;
    while k < all.len() {
        if is_cfg_test_attr(tokens, &all, k) {
            k = skip_attributed_item(tokens, &all, k);
        } else {
            keep.push(all[k]);
            k += 1;
        }
    }
    keep
}

/// Does the significant-token position `k` start a `#[cfg(test)]`-style
/// attribute (any `cfg(…)` mentioning `test`)?
fn is_cfg_test_attr(tokens: &[Token], all: &[usize], k: usize) -> bool {
    let text = |j: usize| all.get(j).map(|&i| tokens[i].text.as_str());
    if text(k) != Some("#") || text(k + 1) != Some("[") || text(k + 2) != Some("cfg") {
        return false;
    }
    // Scan the attribute's bracket group for the ident `test`.
    let mut depth = 0usize;
    let mut j = k + 1;
    while let Some(t) = text(j) {
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "test" => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Skips from an attribute at position `k` past the item it decorates:
/// any further attributes, then either a braced body or a `;`.
fn skip_attributed_item(tokens: &[Token], all: &[usize], k: usize) -> usize {
    let text = |j: usize| all.get(j).map(|&i| tokens[i].text.as_str());
    let mut j = k;
    let mut brace_depth = 0usize;
    let mut bracket_depth = 0usize;
    while let Some(t) = text(j) {
        match t {
            "[" => bracket_depth += 1,
            "]" => bracket_depth = bracket_depth.saturating_sub(1),
            "{" => brace_depth += 1,
            "}" => {
                brace_depth = brace_depth.saturating_sub(1);
                if brace_depth == 0 {
                    return j + 1;
                }
            }
            ";" if brace_depth == 0 && bracket_depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    all.len()
}

fn scan_panic_sites(file: &Path, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    let text = |j: usize| sig.get(j).map(|&i| tokens[i].text.as_str());
    for j in 0..sig.len() {
        let line = tokens[sig[j]].line;
        // `.unwrap()` / `.expect(`
        if text(j) == Some(".") {
            if let (Some(m), Some("(")) = (text(j + 1), text(j + 2)) {
                if m == "unwrap" || m == "expect" {
                    out.push(Violation {
                        rule: Rule::Panic,
                        file: file.to_path_buf(),
                        line: tokens[sig[j + 1]].line,
                        message: format!("`.{m}(…)` in library code — propagate the error"),
                    });
                }
            }
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        if let Some(m) = text(j) {
            if matches!(m, "panic" | "unreachable" | "todo" | "unimplemented")
                && text(j + 1) == Some("!")
            {
                out.push(Violation {
                    rule: Rule::Panic,
                    file: file.to_path_buf(),
                    line,
                    message: format!("`{m}!` in library code — return an error instead"),
                });
            }
        }
    }
}

/// Flags `thread::spawn`, `thread::scope` and `thread::Builder` in
/// non-test library code: every unit-granular task must run on the
/// shared `ScanExecutor` pool (whose own `pool.rs` is exempt at the
/// crate-wiring level).
fn scan_thread_spawns(file: &Path, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    let text = |j: usize| sig.get(j).map(|&i| tokens[i].text.as_str());
    for j in 0..sig.len() {
        if text(j) != Some("thread") || text(j + 1) != Some(":") || text(j + 2) != Some(":") {
            continue;
        }
        if let Some(m) = text(j + 3) {
            if matches!(m, "spawn" | "scope" | "Builder") {
                out.push(Violation {
                    rule: Rule::ThreadDiscipline,
                    file: file.to_path_buf(),
                    line: tokens[sig[j]].line,
                    message: format!(
                        "`thread::{m}` outside the executor pool — run tasks on `ScanExecutor`"
                    ),
                });
            }
        }
    }
}

/// Flags `static` items whose declared type mentions an `Atomic*`
/// type: an ad-hoc global counter bypasses the `blot-obs` registry, so
/// it never shows up in `metrics_snapshot()` or `blot stats`. The
/// `'static` lifetime lexes as a single identifier starting with `'`,
/// so only the keyword itself can match here; atomics owned by
/// registry-managed instruments are instance fields and stay quiet.
fn scan_static_atomics(file: &Path, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    let text = |j: usize| sig.get(j).map(|&i| tokens[i].text.as_str());
    for j in 0..sig.len() {
        if text(j) != Some("static") || tokens[sig[j]].kind != Kind::Ident {
            continue;
        }
        // Walk the declaration's type portion: everything up to the
        // initialiser `=` or the end of the item.
        let mut k = j + 1;
        while let Some(t) = text(k) {
            if matches!(t, "=" | ";" | "{") {
                break;
            }
            if t.starts_with("Atomic") {
                out.push(Violation {
                    rule: Rule::MetricsDiscipline,
                    file: file.to_path_buf(),
                    line: tokens[sig[j]].line,
                    message: format!(
                        "`static …: {t}` outside the metrics registry — register a \
                         `blot_obs` instrument instead"
                    ),
                });
                break;
            }
            k += 1;
        }
    }
}

fn scan_indexing(file: &Path, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for j in 1..sig.len() {
        if tokens[sig[j]].text != "[" {
            continue;
        }
        let prev = &tokens[sig[j - 1]];
        let is_index_base = match prev.kind {
            Kind::Ident => {
                !NON_VALUE_KEYWORDS.contains(&prev.text.as_str()) && !prev.text.starts_with('\'')
            }
            Kind::Punct => prev.text == ")" || prev.text == "]",
            Kind::Literal | Kind::Comment | Kind::Doc => false,
        };
        if is_index_base {
            out.push(Violation {
                rule: Rule::Indexing,
                file: file.to_path_buf(),
                line: tokens[sig[j]].line,
                message: format!(
                    "`{}[…]` indexing in library code — use `.get(…)` or justify",
                    prev.text
                ),
            });
        }
    }
}

fn scan_errors_doc(file: &Path, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    let text = |j: usize| sig.get(j).map(|&i| tokens[i].text.as_str());
    for j in 0..sig.len() {
        if text(j) != Some("pub") || text(j + 1) == Some("(") {
            continue; // not `pub`, or restricted `pub(crate)` visibility
        }
        // Allow qualifiers between `pub` and `fn`.
        let mut f = j + 1;
        while matches!(text(f), Some("const" | "async" | "unsafe" | "extern")) {
            f += 1;
        }
        if text(f) != Some("fn") {
            continue;
        }
        let name = text(f + 1).unwrap_or("?").to_string();
        // Signature: everything up to the body `{` or a trait-decl `;`.
        let mut returns_result = false;
        let mut saw_arrow = false;
        let mut k = f + 2;
        while let Some(t) = text(k) {
            match t {
                "{" | ";" => break,
                "-" if text(k + 1) == Some(">") => saw_arrow = true,
                "Result" if saw_arrow => returns_result = true,
                _ => {}
            }
            k += 1;
        }
        if !returns_result {
            continue;
        }
        if !docs_before(tokens, sig[j]).contains("# Errors") {
            out.push(Violation {
                rule: Rule::ErrorsDoc,
                file: file.to_path_buf(),
                line: tokens[sig[j]].line,
                message: format!("`pub fn {name}` returns `Result` but has no `# Errors` section"),
            });
        }
    }
}

/// Concatenated doc-comment text immediately above full-token index
/// `start` (skipping attributes between the docs and the item).
fn docs_before(tokens: &[Token], start: usize) -> String {
    let mut docs = Vec::new();
    let mut i = start;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        match t.kind {
            Kind::Doc => docs.push(t.text.clone()),
            Kind::Comment => {}
            // Attributes between docs and item: skip the `#[…]` group.
            Kind::Punct | Kind::Ident | Kind::Literal => {
                if t.text == "]" {
                    let mut depth = 0usize;
                    loop {
                        match tokens[i].text.as_str() {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if i == 0 {
                            break;
                        }
                        i -= 1;
                    }
                    // Step over the `#` that opens the attribute.
                    if i > 0 && tokens[i - 1].text == "#" {
                        i -= 1;
                    }
                } else {
                    break;
                }
            }
        }
    }
    docs.reverse();
    docs.join("\n")
}

fn collect_error_items(tokens: &[Token], sig: &[usize], report: &mut FileReport) {
    let text = |j: usize| sig.get(j).map(|&i| tokens[i].text.as_str());
    for j in 0..sig.len() {
        // `pub enum FooError`
        if text(j) == Some("pub") && text(j + 1) == Some("enum") {
            if let Some(name) = text(j + 2) {
                if name.ends_with("Error") {
                    report
                        .error_enums
                        .push((name.to_string(), tokens[sig[j]].line));
                }
            }
        }
        // `require_error_traits::<Name>` (the Send + Sync assertion)
        if text(j) == Some("require_error_traits")
            && text(j + 1) == Some(":")
            && text(j + 2) == Some(":")
            && text(j + 3) == Some("<")
        {
            if let Some(name) = text(j + 4) {
                report.trait_assertions.push(name.to_string());
            }
        }
        // `… Error for Name`
        if text(j) == Some("Error") && text(j + 1) == Some("for") {
            if let Some(name) = text(j + 2) {
                report.error_impls.push(name.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(source: &str) -> FileReport {
        audit_file(
            Path::new("test.rs"),
            source,
            RuleSet {
                panic: true,
                indexing: true,
                errors_doc: true,
                ..RuleSet::default()
            },
        )
    }

    #[test]
    fn unwrap_fires_and_tests_are_exempt() {
        let r = audit(
            "fn f() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n",
        );
        assert_eq!(
            r.violations
                .iter()
                .filter(|v| v.rule == Rule::Panic)
                .count(),
            1
        );
    }

    #[test]
    fn allow_comment_waives_and_is_counted() {
        let r = audit(
            "fn f() {\n    // audit: allow(panic, impossible by construction)\n    x.unwrap();\n}\n",
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.allows.len(), 1);
        assert_eq!(r.allows[0].used, 1);
        assert_eq!(r.allows[0].reason, "impossible by construction");
    }

    #[test]
    fn unused_allow_stays_unused() {
        let r = audit("// audit: allow(panic, stale)\nfn f() { let x = 1; }\n");
        assert_eq!(r.allows[0].used, 0);
    }

    #[test]
    fn indexing_fires_but_not_on_patterns_or_types() {
        let r = audit("fn f(v: &[u8], a: [u8; 2]) { let [x, y] = a; let b = v[0]; }\n");
        let idx: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.rule == Rule::Indexing)
            .collect();
        assert_eq!(idx.len(), 1, "{idx:?}");
        assert!(idx[0].message.contains("`v[…]`"));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let r = audit("fn f() { let s = \"a.unwrap()\"; } // .unwrap() in a comment\n");
        assert!(r.violations.is_empty());
    }

    #[test]
    fn site_allows_apply_to_workspace_level_violations() {
        let mut allows = vec![Allow {
            rule: Rule::CastRange,
            reason: "mask bounds the value".to_string(),
            file: PathBuf::from("a.rs"),
            line: 9,
            file_wide: false,
            used: 0,
        }];
        let raw = vec![
            Violation {
                rule: Rule::CastRange,
                file: PathBuf::from("a.rs"),
                line: 10,
                message: "waived".to_string(),
            },
            Violation {
                rule: Rule::CastRange,
                file: PathBuf::from("b.rs"),
                line: 10,
                message: "other file".to_string(),
            },
        ];
        let surviving = apply_site_allows(raw, &mut allows);
        assert_eq!(surviving.len(), 1);
        assert_eq!(surviving[0].message, "other file");
        assert_eq!(allows[0].used, 1);
    }

    #[test]
    fn errors_doc_required_for_fallible_pub_fns() {
        let bad = audit("pub fn f() -> Result<(), E> { Ok(()) }\n");
        assert_eq!(bad.violations.len(), 1);
        assert_eq!(bad.violations[0].rule, Rule::ErrorsDoc);

        let good = audit(
            "/// Does a thing.\n///\n/// # Errors\n///\n/// Never.\npub fn f() -> Result<(), E> { Ok(()) }\n",
        );
        assert!(good.violations.is_empty(), "{:?}", good.violations);

        let crate_vis = audit("pub(crate) fn f() -> Result<(), E> { Ok(()) }\n");
        assert!(crate_vis.violations.is_empty());
    }

    #[test]
    fn error_items_are_collected() {
        let r = audit(
            "pub enum FooError { A }\n\
             impl std::error::Error for FooError {}\n\
             const _: () = require_error_traits::<FooError>();\n",
        );
        assert_eq!(r.error_enums.len(), 1);
        assert_eq!(r.error_impls, vec!["FooError".to_string()]);
        assert_eq!(r.trait_assertions, vec!["FooError".to_string()]);
    }

    #[test]
    fn file_wide_allow_covers_every_site() {
        let r = audit(
            "// audit: allow-file(indexing, dense tableau, bounds by construction)\n\
             fn f(v: &[f64]) -> f64 { v[0] + v[1] }\n",
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.allows[0].used, 2);
        assert!(r.allows[0].file_wide);
    }
}
