//! A lightweight parse layer over the [`crate::lexer`] token stream.
//!
//! The semantic rules (unit safety, lock discipline, registry
//! completeness) need more structure than the flat token scans of
//! [`crate::rules`]: function bodies with brace nesting, per-crate item
//! tables (enums with their variants, impl blocks with their methods)
//! and call sites with receiver paths. This module recovers exactly
//! that much structure — it is not a Rust grammar, and it does not need
//! to be: it only has to be right on the workspace's own style, and the
//! fixture tests pin the cases it must handle.
//!
//! Everything works in *significant-token space*: the parser receives
//! the token list plus the indices of significant non-test tokens (as
//! produced by the rules module), so `#[cfg(test)]` items are invisible
//! to every semantic rule for free.

use crate::lexer::{Kind, Token};

/// A view over the significant (non-test) tokens of one file.
#[derive(Debug, Clone, Copy)]
pub struct View<'a> {
    tokens: &'a [Token],
    sig: &'a [usize],
}

impl<'a> View<'a> {
    /// Creates a view from the full token list and the significant
    /// indices into it.
    #[must_use]
    pub fn new(tokens: &'a [Token], sig: &'a [usize]) -> Self {
        Self { tokens, sig }
    }

    /// Number of significant tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the view holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// Text of significant token `j`, if in range.
    #[must_use]
    pub fn text(&self, j: usize) -> Option<&str> {
        self.sig.get(j).map(|&i| self.tokens[i].text.as_str())
    }

    /// Kind of significant token `j`, if in range.
    #[must_use]
    pub fn kind(&self, j: usize) -> Option<Kind> {
        self.sig.get(j).map(|&i| self.tokens[i].kind)
    }

    /// 1-based source line of significant token `j` (0 if out of range).
    #[must_use]
    pub fn line(&self, j: usize) -> usize {
        self.sig.get(j).map_or(0, |&i| self.tokens[i].line)
    }

    /// Whether token `j` is an identifier equal to `s`.
    #[must_use]
    pub fn is_ident(&self, j: usize, s: &str) -> bool {
        self.kind(j) == Some(Kind::Ident) && self.text(j) == Some(s)
    }
}

/// One parsed function (free or method), with its body as a
/// significant-token range.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Enclosing impl's type name, when the fn is a method.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Signature range `[start, end)` in significant-token space: from
    /// the token after the fn name to the body `{` (or trait-decl `;`),
    /// exclusive. Holds the parameter list and the return type.
    pub sig: (usize, usize),
    /// Body range `[start, end)` in significant-token space, exclusive
    /// of the braces; `None` for bodiless trait declarations.
    pub body: Option<(usize, usize)>,
}

/// One parsed enum with its variant names.
#[derive(Debug, Clone)]
pub struct EnumDecl {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Largest discriminant value: explicit `= N` assignments are
    /// honoured, other variants count up from the previous one (the
    /// language rule). 0 for an empty enum.
    pub max_discriminant: i128,
}

/// One parsed impl block.
#[derive(Debug, Clone)]
pub struct ImplDecl {
    /// The implemented type's head identifier (`FailingBackend` for
    /// `impl<B> Backend for FailingBackend<B>`).
    pub type_name: String,
    /// Trait head identifier for trait impls.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
}

/// Item table of one file.
#[derive(Debug, Default)]
pub struct Ast {
    /// All functions, methods included (flat, with [`FnDecl::owner`]).
    pub fns: Vec<FnDecl>,
    /// All enums with their variants.
    pub enums: Vec<EnumDecl>,
    /// All impl blocks.
    pub impls: Vec<ImplDecl>,
}

impl Ast {
    /// The first enum named `name`, if any.
    #[must_use]
    pub fn enum_named(&self, name: &str) -> Option<&EnumDecl> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// All functions named `name` (any owner).
    pub fn fns_named<'s>(&'s self, name: &'s str) -> impl Iterator<Item = &'s FnDecl> {
        self.fns.iter().filter(move |f| f.name == name)
    }
}

/// One extracted call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called name: a `::`-joined path for free calls
    /// (`std::fs::read`), the bare method name for method calls.
    pub callee: String,
    /// Dotted receiver path for method calls (`self.inner`), when the
    /// receiver is a simple path.
    pub receiver: Option<String>,
    /// 1-based line of the callee token.
    pub line: usize,
    /// Significant-token index of the callee token.
    pub pos: usize,
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "fn", "move", "box",
];

/// Parses the item table of a file.
#[must_use]
pub fn parse(view: View<'_>) -> Ast {
    let mut ast = Ast::default();
    parse_items(view, 0, view.len(), None, &mut ast);
    ast
}

/// Parses items in `[start, end)`; `owner` names the enclosing impl's
/// type for methods.
fn parse_items(view: View<'_>, start: usize, end: usize, owner: Option<&str>, ast: &mut Ast) {
    let mut j = start;
    while j < end {
        match view.text(j) {
            Some("fn") if view.kind(j + 1) == Some(Kind::Ident) => {
                j = parse_fn(view, j, end, owner, ast);
            }
            Some("enum") if view.kind(j + 1) == Some(Kind::Ident) => {
                j = parse_enum(view, j, end, ast);
            }
            Some("impl") => {
                j = parse_impl(view, j, end, ast);
            }
            // Other braces (const blocks, macro bodies like `proptest!`,
            // module bodies) are entered transparently: items inside
            // them — `#[test] fn`s in a proptest! block, the
            // `require_error_traits` const fn — are real items.
            _ => j += 1,
        }
    }
}

/// Index just past the group opened at `open` (which must hold `open_t`);
/// `end` bounds the search.
pub(crate) fn matching_close(
    view: View<'_>,
    open: usize,
    end: usize,
    open_t: &str,
    close_t: &str,
) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        match view.text(j) {
            Some(t) if t == open_t => depth += 1,
            Some(t) if t == close_t => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end
}

fn parse_fn(view: View<'_>, j: usize, end: usize, owner: Option<&str>, ast: &mut Ast) -> usize {
    let name = view.text(j + 1).unwrap_or_default().to_string();
    let line = view.line(j);
    // The signature runs to the body `{` or a trait-decl `;` at zero
    // paren/bracket depth.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut k = j + 2;
    while k < end {
        match view.text(k) {
            Some("(") => paren += 1,
            Some(")") => paren -= 1,
            Some("[") => bracket += 1,
            Some("]") => bracket -= 1,
            Some("{") if paren == 0 && bracket == 0 => {
                let close = matching_close(view, k, end, "{", "}");
                ast.fns.push(FnDecl {
                    name,
                    owner: owner.map(str::to_string),
                    line,
                    sig: (j + 2, k),
                    body: Some((k + 1, close.saturating_sub(1))),
                });
                return close;
            }
            Some(";") if paren == 0 && bracket == 0 => {
                ast.fns.push(FnDecl {
                    name,
                    owner: owner.map(str::to_string),
                    line,
                    sig: (j + 2, k),
                    body: None,
                });
                return k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    end
}

fn parse_enum(view: View<'_>, j: usize, end: usize, ast: &mut Ast) -> usize {
    let name = view.text(j + 1).unwrap_or_default().to_string();
    let line = view.line(j);
    let mut open = j + 2;
    while open < end && view.text(open) != Some("{") {
        if view.text(open) == Some(";") {
            // `enum Foo;` never parses in Rust, but stay robust.
            return open + 1;
        }
        open += 1;
    }
    let close = matching_close(view, open, end, "{", "}");
    let mut variants = Vec::new();
    let mut expect_variant = true;
    let mut next_implicit = 0i128;
    let mut max_discriminant = 0i128;
    let mut k = open + 1;
    while k + 1 < close {
        match view.text(k) {
            // Skip a variant attribute `#[…]`.
            Some("#") if view.text(k + 1) == Some("[") => {
                k = matching_close(view, k + 1, close, "[", "]");
                continue;
            }
            Some(",") => expect_variant = true,
            Some("(") => {
                k = matching_close(view, k, close, "(", ")");
                continue;
            }
            Some("{") => {
                k = matching_close(view, k, close, "{", "}");
                continue;
            }
            Some(_) if expect_variant && view.kind(k) == Some(Kind::Ident) => {
                variants.push(view.text(k).unwrap_or_default().to_string());
                // `Variant = N` pins the discriminant; the next variant
                // counts up from it.
                let value = (view.text(k + 1) == Some("="))
                    .then(|| view.text(k + 2).and_then(parse_int))
                    .flatten()
                    .unwrap_or(next_implicit);
                max_discriminant = max_discriminant.max(value);
                next_implicit = value + 1;
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    ast.enums.push(EnumDecl {
        name,
        line,
        variants,
        max_discriminant,
    });
    close
}

/// Parses a decimal or `0x`-hex integer literal, tolerating `_`
/// separators and a type suffix (`7u32`, `0xFF_u16`). Floats parse to
/// `None`.
#[must_use]
pub(crate) fn parse_int(text: &str) -> Option<i128> {
    let text: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        if digits.is_empty() {
            return None;
        }
        return i128::from_str_radix(&digits, 16).ok();
    }
    let digits: String = text.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    // Reject floats (`1.5`, `1e3`): after the digits only a type suffix
    // like `u32` may follow, which never starts with `.`/`e`/`E`.
    let rest = &text[digits.len()..];
    if rest.starts_with('.') || rest.starts_with('e') || rest.starts_with('E') {
        return None;
    }
    digits.parse().ok()
}

fn parse_impl(view: View<'_>, j: usize, end: usize, ast: &mut Ast) -> usize {
    let line = view.line(j);
    // Header: up to the body `{`; generics may not contain braces.
    let mut open = j + 1;
    while open < end && view.text(open) != Some("{") {
        open += 1;
    }
    // `impl … for Type` → the ident after `for`; otherwise the first
    // ident after the (optional) generic parameter list.
    let mut type_name = String::new();
    let mut trait_name = None;
    let mut for_at = None;
    for k in j + 1..open {
        if view.is_ident(k, "for") {
            for_at = Some(k);
            break;
        }
    }
    if let Some(f) = for_at {
        if view.kind(f + 1) == Some(Kind::Ident) {
            type_name = view.text(f + 1).unwrap_or_default().to_string();
        }
        // Trait head: the last path ident before `for`'s generics.
        for k in (j + 1..f).rev() {
            if view.kind(k) == Some(Kind::Ident) && view.text(k) != Some("const") {
                trait_name = view.text(k).map(str::to_string);
                break;
            }
        }
    } else {
        let mut k = j + 1;
        if view.text(k) == Some("<") {
            let mut depth = 0i32;
            while k < open {
                match view.text(k) {
                    Some("<") => depth += 1,
                    Some(">") => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        while k < open {
            if view.kind(k) == Some(Kind::Ident) {
                type_name = view.text(k).unwrap_or_default().to_string();
                break;
            }
            k += 1;
        }
    }
    ast.impls.push(ImplDecl {
        type_name: type_name.clone(),
        trait_name,
        line,
    });
    let close = matching_close(view, open, end, "{", "}");
    parse_items(
        view,
        open + 1,
        close.saturating_sub(1),
        Some(&type_name),
        ast,
    );
    close
}

/// Extracts the call sites in `[start, end)`.
#[must_use]
pub fn calls_in(view: View<'_>, start: usize, end: usize) -> Vec<Call> {
    let mut out = Vec::new();
    for j in start..end {
        if view.kind(j) != Some(Kind::Ident) || view.text(j + 1) != Some("(") {
            continue;
        }
        let name = view.text(j).unwrap_or_default();
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        if view.text(j.wrapping_sub(1)) == Some(".") && j >= 1 {
            // Method call: recover a simple dotted receiver path.
            out.push(Call {
                callee: name.to_string(),
                receiver: receiver_path(view, j - 1, start),
                line: view.line(j),
                pos: j,
            });
        } else {
            out.push(Call {
                callee: free_path(view, j, start),
                receiver: None,
                line: view.line(j),
                pos: j,
            });
        }
    }
    out
}

/// The dotted path ending at the `.` token `dot` (e.g. `self.inner`),
/// or `None` when the receiver is not a simple ident path.
fn receiver_path(view: View<'_>, dot: usize, floor: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot; // points at a `.`
    loop {
        if k == floor || k == 0 {
            break;
        }
        let prev = k - 1;
        if view.kind(prev) != Some(Kind::Ident) {
            return None;
        }
        parts.push(view.text(prev).unwrap_or_default().to_string());
        if prev > floor && view.text(prev.wrapping_sub(1)) == Some(".") {
            k = prev - 1;
        } else {
            break;
        }
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// The `::`-joined path ending at ident `name_at` (e.g. `std::fs::read`).
fn free_path(view: View<'_>, name_at: usize, floor: usize) -> String {
    let mut parts = vec![view.text(name_at).unwrap_or_default().to_string()];
    let mut k = name_at;
    while k >= floor + 3
        && view.text(k - 1) == Some(":")
        && view.text(k - 2) == Some(":")
        && view.kind(k - 3) == Some(Kind::Ident)
    {
        parts.push(view.text(k - 3).unwrap_or_default().to_string());
        k -= 3;
    }
    parts.reverse();
    parts.join("::")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn with_ast<R>(src: &str, f: impl FnOnce(View<'_>, &Ast) -> R) -> R {
        let tokens = lex(src);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| matches!(tokens[i].kind, Kind::Ident | Kind::Punct | Kind::Literal))
            .collect();
        let view = View::new(&tokens, &sig);
        let ast = parse(view);
        f(view, &ast)
    }

    #[test]
    fn fns_and_methods_get_owners_and_bodies() {
        with_ast(
            "fn free() { let x = 1; }\n\
             struct S;\n\
             impl S { fn method(&self) -> u32 { 2 } fn decl(&self); }\n\
             impl Clone for S { fn clone(&self) -> S { S } }\n",
            |view, ast| {
                assert_eq!(ast.fns.len(), 4);
                assert_eq!(ast.fns[0].name, "free");
                assert_eq!(ast.fns[0].owner, None);
                assert_eq!(ast.fns[1].name, "method");
                assert_eq!(ast.fns[1].owner.as_deref(), Some("S"));
                assert!(ast.fns[2].body.is_none());
                assert_eq!(ast.fns[3].owner.as_deref(), Some("S"));
                let (b0, b1) = ast.fns[0].body.unwrap();
                let body: Vec<&str> = (b0..b1).map(|j| view.text(j).unwrap()).collect();
                assert_eq!(body, vec!["let", "x", "=", "1", ";"]);
            },
        );
    }

    #[test]
    fn enum_variants_skip_fields_and_attributes() {
        with_ast(
            "pub enum E {\n  #[default]\n  A,\n  B(u32, Vec<u8>),\n  C { x: f64 },\n  D = 4,\n}\n",
            |_, ast| {
                let e = ast.enum_named("E").unwrap();
                assert_eq!(e.variants, vec!["A", "B", "C", "D"]);
            },
        );
    }

    #[test]
    fn impl_heads_are_recovered() {
        with_ast(
            "impl<B: Backend> Backend for FailingBackend<B> { }\n\
             impl<T> SchemeTable<T> { }\n",
            |_, ast| {
                assert_eq!(ast.impls[0].type_name, "FailingBackend");
                assert_eq!(ast.impls[0].trait_name.as_deref(), Some("Backend"));
                assert_eq!(ast.impls[1].type_name, "SchemeTable");
                assert_eq!(ast.impls[1].trait_name, None);
            },
        );
    }

    #[test]
    fn calls_recover_receiver_and_free_paths() {
        with_ast(
            "fn f(&self) { self.inner.get(key); std::fs::read(p); run_scan(x); if (a) { } }\n",
            |view, ast| {
                let (b0, b1) = ast.fns[0].body.unwrap();
                let calls = calls_in(view, b0, b1);
                let names: Vec<&str> = calls.iter().map(|c| c.callee.as_str()).collect();
                assert_eq!(names, vec!["get", "std::fs::read", "run_scan"]);
                assert_eq!(calls[0].receiver.as_deref(), Some("self.inner"));
                assert_eq!(calls[1].receiver, None);
            },
        );
    }
}
