//! Rule `lock-discipline`: guard liveness and lock ordering for the
//! `storage::sync` wrappers.
//!
//! The poison-recovering `Mutex`/`RwLock` wrappers keep panic paths out
//! of library code, but they cannot stop two structural mistakes:
//!
//! 1. **Guards held across I/O** — a `let`-bound guard that stays live
//!    across a call into the backend (`get`/`put`/`delete`/`list` on a
//!    backend receiver, `std::fs::*`, or a scan job) serialises every
//!    concurrent reader behind one unit's disk latency. All hot-path
//!    code uses temporary guards (`self.units.write().insert(…)`) that
//!    die at the end of the statement; the lint enforces that shape.
//! 2. **Lock-order inversions** — acquiring a second guard while one is
//!    held must follow the declared global order [`LOCK_ORDER`], or two
//!    threads taking the pair in opposite orders can deadlock.
//!
//! Only `let`-bound guards from empty-argument `.lock()` / `.read()` /
//! `.write()` calls are tracked; a guard is live from its binding to
//! the end of its enclosing block or an explicit `drop(guard)`.

use crate::ast::{self, View};
use crate::lexer::Kind;
use crate::rules::{Rule, Violation};
use std::path::Path;

/// The declared global lock order: a lock may only be acquired while
/// holding locks that appear **earlier** in this list. The names are
/// the final path segment of the lock field (`self.units` → `units`).
pub const LOCK_ORDER: &[&str] = &["log", "failures", "units"];

/// Backend method names that perform storage I/O.
const IO_METHODS: &[&str] = &["get", "put", "delete", "list", "size_of", "total_bytes"];

/// Receiver path segments that identify a backend value.
const BACKEND_RECEIVERS: &[&str] = &["backend", "inner"];

/// One tracked guard binding. Shared with [`crate::callgraph`], which
/// lifts the same liveness model to workspace call edges.
pub(crate) struct Guard {
    /// Binding name (`_g`, `units`).
    pub(crate) name: String,
    /// Final segment of the locked path (`self.units` → `units`).
    pub(crate) lock: String,
    /// Significant-token index where liveness starts (just after the
    /// binding statement's `;`).
    pub(crate) from: usize,
    /// Exclusive end of liveness (enclosing block close or `drop`).
    pub(crate) until: usize,
    /// 1-based line of the binding.
    pub(crate) line: usize,
}

/// Scans every function body for guard-liveness and lock-order issues.
pub fn scan(file: &Path, view: View<'_>, ast: &ast::Ast, out: &mut Vec<Violation>) {
    for f in &ast.fns {
        let Some((start, end)) = f.body else {
            continue;
        };
        scan_body(file, view, start, end, out);
    }
}

fn scan_body(file: &Path, view: View<'_>, start: usize, end: usize, out: &mut Vec<Violation>) {
    let depths = brace_depths(view, start, end);
    let guards = collect_guards(view, start, end, &depths);

    for g in &guards {
        // I/O while the guard is live.
        for call in ast::calls_in(view, g.from, g.until) {
            if is_io_call(&call) {
                out.push(Violation {
                    rule: Rule::LockDiscipline,
                    file: file.to_path_buf(),
                    line: call.line,
                    message: format!(
                        "guard `{}` (lock `{}`, bound on line {}) is still live across the I/O \
                         call `{}` — drop it first or use a temporary guard",
                        g.name, g.lock, g.line, call.callee
                    ),
                });
            }
        }
        // Later acquisitions (bound or temporary) must respect the
        // declared order.
        let Some(held_rank) = rank(&g.lock) else {
            continue;
        };
        for j in g.from..g.until {
            let Some((lock, _)) = acquisition_at(view, start, j) else {
                continue;
            };
            if let Some(new_rank) = rank(&lock) {
                if new_rank < held_rank {
                    out.push(Violation {
                        rule: Rule::LockDiscipline,
                        file: file.to_path_buf(),
                        line: view.line(j),
                        message: format!(
                            "lock `{lock}` acquired while `{}` is held — declared order is {:?}",
                            g.lock, LOCK_ORDER
                        ),
                    });
                }
            }
        }
    }
}

pub(crate) fn rank(lock: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|&l| l == lock)
}

/// Brace depth *after* each token in `[start, end)`, relative to the
/// body (index 0 ↔ `start`).
pub(crate) fn brace_depths(view: View<'_>, start: usize, end: usize) -> Vec<i32> {
    let mut depths = Vec::with_capacity(end.saturating_sub(start));
    let mut d = 0i32;
    for j in start..end {
        match view.text(j) {
            Some("{") => d += 1,
            Some("}") => d -= 1,
            _ => {}
        }
        depths.push(d);
    }
    depths
}

/// Is token `j` the method name of an empty-argument `.lock()` /
/// `.read()` / `.write()` call? Returns the lock's final path segment
/// and the index just past the call.
pub(crate) fn acquisition_at(view: View<'_>, floor: usize, j: usize) -> Option<(String, usize)> {
    if view.kind(j) != Some(Kind::Ident)
        || !matches!(view.text(j), Some("lock" | "read" | "write"))
        || view.text(j + 1) != Some("(")
        || view.text(j + 2) != Some(")")
    {
        return None;
    }
    if j == floor || view.text(j - 1) != Some(".") {
        return None;
    }
    if j < floor + 2 || view.kind(j - 2) != Some(Kind::Ident) {
        return None;
    }
    Some((view.text(j - 2).unwrap_or_default().to_string(), j + 3))
}

/// Finds `let [mut] name = ….lock/read/write();` statements and
/// computes each guard's live range. A single trailing
/// `.unwrap_or_else(…)` after the acquisition is accepted too — the
/// poison-recovery idiom std-mutex code in `server`/`obs` uses.
pub(crate) fn collect_guards(
    view: View<'_>,
    start: usize,
    end: usize,
    depths: &[i32],
) -> Vec<Guard> {
    let mut guards = Vec::new();
    let mut j = start;
    while j < end {
        if !view.is_ident(j, "let") {
            j += 1;
            continue;
        }
        let mut n = j + 1;
        if view.is_ident(n, "mut") {
            n += 1;
        }
        let (Some(Kind::Ident), Some("=")) = (view.kind(n), view.text(n + 1)) else {
            j += 1;
            continue;
        };
        let name = view.text(n).unwrap_or_default().to_string();
        // Statement end: the `;` at the same nesting as the `let`.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        let mut semi = None;
        for k in n + 2..end {
            match view.text(k) {
                Some("(") => paren += 1,
                Some(")") => paren -= 1,
                Some("[") => bracket += 1,
                Some("]") => bracket -= 1,
                Some("{") => brace += 1,
                Some("}") => brace -= 1,
                Some(";") if paren == 0 && bracket == 0 && brace == 0 => {
                    semi = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let Some(semi) = semi else {
            j += 1;
            continue;
        };
        // The initialiser must *end* with the acquisition — a longer
        // chain (`.lock().clone()`) drops the guard inside the
        // statement — except for one trailing `.unwrap_or_else(…)`,
        // which recovers the guard from a poisoned std mutex.
        let acq_end = if view.text(semi.wrapping_sub(1)) == Some(")")
            && acquisition_at(view, start, semi - 3).is_none()
        {
            // Look for `….lock().unwrap_or_else( … );`: the closure
            // call's `(` must close right before the `;`.
            (n + 2..semi.saturating_sub(3))
                .find(|&k| {
                    view.is_ident(k, "unwrap_or_else")
                        && view.text(k.wrapping_sub(1)) == Some(".")
                        && view.text(k + 1) == Some("(")
                        && ast::matching_close(view, k + 1, semi + 1, "(", ")") == semi
                })
                .map(|k| k - 1)
        } else {
            Some(semi)
        };
        let lock = acq_end.filter(|_| name != "_").and_then(|e| {
            (e >= 4)
                .then(|| acquisition_at(view, start, e - 3))
                .flatten()
                .filter(|&(_, past)| past == e)
                .map(|(lock, _)| lock)
        });
        let Some(lock) = lock else {
            j = semi + 1;
            continue;
        };
        // Liveness: to the close of the enclosing block, or `drop(name)`.
        let let_depth = depths.get(j - start).copied().unwrap_or(0);
        let mut until = end;
        for k in semi + 1..end {
            if view.text(k) == Some("}") && depths.get(k - start).copied().unwrap_or(0) < let_depth
            {
                until = k;
                break;
            }
            if view.is_ident(k, "drop")
                && view.text(k + 1) == Some("(")
                && view.text(k + 2) == Some(name.as_str())
                && view.text(k + 3) == Some(")")
            {
                until = k;
                break;
            }
        }
        guards.push(Guard {
            name,
            lock,
            from: semi + 1,
            until,
            line: view.line(j),
        });
        j = semi + 1;
    }
    guards
}

pub(crate) fn is_io_call(call: &ast::Call) -> bool {
    if call.callee.starts_with("std::fs") || call.callee.starts_with("fs::") {
        return true;
    }
    if call.callee == "run_scan" || call.callee.ends_with("::run_scan") {
        return true;
    }
    if let Some(recv) = &call.receiver {
        if IO_METHODS.contains(&call.callee.as_str())
            && recv
                .split('.')
                .any(|seg| BACKEND_RECEIVERS.iter().any(|b| seg.contains(b)))
        {
            return true;
        }
    }
    false
}
