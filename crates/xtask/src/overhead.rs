//! The metrics-overhead guard: `cargo xtask metrics-overhead`.
//!
//! Builds and runs the `metrics_overhead` probe from `blot-bench`
//! twice — once with the observability layer compiled in (the
//! default) and once compiled down to no-ops (`--features obs-off`) —
//! and compares the minimum per-round wall time of the two runs. The
//! minimum is the right statistic here: it is the run least disturbed
//! by scheduler noise, so the ratio isolates what the instrumentation
//! itself costs on the query hot path.
//!
//! The probe drives `query_traced`, so the instrumented run pays the
//! full tracing path (spans + flight-recorder writes). Besides the
//! ratio budget, the guard checks the probe's `spans` count: positive
//! with tracing compiled in, exactly zero in the `off` build.

use std::path::Path;
use std::process::Command;

/// Budget for the instrumented/compiled-out minimum-round-time ratio.
pub const MAX_RATIO: f64 = 1.05;

/// Result of one guard run: both probe timings and their ratio.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Minimum round time with metrics compiled in, in milliseconds.
    pub enabled_min_ms: f64,
    /// Minimum round time with metrics compiled out, in milliseconds.
    pub disabled_min_ms: f64,
    /// `enabled_min_ms / disabled_min_ms`.
    pub ratio: f64,
    /// Spans the instrumented probe recorded in its flight recorder.
    pub enabled_spans: u64,
}

impl Probe {
    /// True when instrumentation stays within the [`MAX_RATIO`] budget.
    #[must_use]
    pub fn within_budget(&self) -> bool {
        self.ratio <= MAX_RATIO
    }
}

/// Runs the overhead probe in both feature modes and returns the pair
/// of timings.
///
/// # Errors
///
/// Returns a message when either probe build fails to run, exits
/// non-zero, or prints output the guard cannot parse.
pub fn check(root: &Path) -> Result<Probe, String> {
    let (enabled_min_ms, enabled_spans) = run_probe(root, false)?;
    let (disabled_min_ms, disabled_spans) = run_probe(root, true)?;
    if disabled_min_ms <= 0.0 {
        return Err(format!(
            "compiled-out probe reported a non-positive round time ({disabled_min_ms} ms)"
        ));
    }
    if enabled_spans == 0 {
        return Err(
            "instrumented probe recorded no spans — tracing is not reaching the hot path".into(),
        );
    }
    if disabled_spans != 0 {
        return Err(format!(
            "obs-off probe recorded {disabled_spans} spans — the off feature is not zero-cost"
        ));
    }
    Ok(Probe {
        enabled_min_ms,
        disabled_min_ms,
        ratio: enabled_min_ms / disabled_min_ms,
        enabled_spans,
    })
}

fn run_probe(root: &Path, obs_off: bool) -> Result<(f64, u64), String> {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root).args([
        "run",
        "--release",
        "-q",
        "-p",
        "blot-bench",
        "--bin",
        "metrics_overhead",
    ]);
    if obs_off {
        cmd.args(["--features", "obs-off"]);
    }
    let out = cmd
        .output()
        .map_err(|e| format!("cannot run the overhead probe: {e}"))?;
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        return Err(format!(
            "overhead probe (obs_off={obs_off}) failed: {}{}",
            stdout,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.contains("\"min_ms\""))
        .ok_or_else(|| format!("overhead probe printed no min_ms line:\n{stdout}"))?;
    let min_ms = field_f64(line, "min_ms")
        .ok_or_else(|| format!("cannot parse min_ms from probe output: {line}"))?;
    let spans = field_f64(line, "spans")
        .ok_or_else(|| format!("cannot parse spans from probe output: {line}"))?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok((min_ms, spans.max(0.0) as u64))
}

/// Extracts a numeric field from one line of flat JSON. The probe's
/// output is machine-generated and non-nested, so a key scan suffices —
/// no JSON parser dependency in the audit tooling.
fn field_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)?;
    let rest = json.get(at + pat.len()..)?;
    let end = rest.find([',', '}'])?;
    rest.get(..end)?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_handles_probe_output() {
        let line =
            r#"{"enabled":true,"rounds":12,"min_ms":98.078,"median_ms":100.66,"spans":3360}"#;
        assert_eq!(field_f64(line, "min_ms"), Some(98.078));
        assert_eq!(field_f64(line, "median_ms"), Some(100.66));
        assert_eq!(field_f64(line, "spans"), Some(3360.0));
        assert_eq!(field_f64(line, "max_ms"), None);
        assert_eq!(field_f64(line, "enabled"), None);
    }

    #[test]
    fn budget_compares_on_ratio() {
        let ok = Probe {
            enabled_min_ms: 103.0,
            disabled_min_ms: 100.0,
            ratio: 1.03,
            enabled_spans: 960,
        };
        assert!(ok.within_budget());
        let slow = Probe {
            enabled_min_ms: 110.0,
            disabled_min_ms: 100.0,
            ratio: 1.10,
            enabled_spans: 960,
        };
        assert!(!slow.within_budget());
    }
}
