//! The metrics-overhead guard: `cargo xtask metrics-overhead`.
//!
//! Builds and runs the `metrics_overhead` probe from `blot-bench`
//! twice — once with the observability layer compiled in (the
//! default) and once compiled down to no-ops (`--features obs-off`) —
//! and compares the minimum per-round wall time of the two runs. The
//! minimum is the right statistic here: it is the run least disturbed
//! by scheduler noise, so the ratio isolates what the instrumentation
//! itself costs on the query hot path.

use std::path::Path;
use std::process::Command;

/// Budget for the instrumented/compiled-out minimum-round-time ratio.
pub const MAX_RATIO: f64 = 1.05;

/// Result of one guard run: both probe timings and their ratio.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Minimum round time with metrics compiled in, in milliseconds.
    pub enabled_min_ms: f64,
    /// Minimum round time with metrics compiled out, in milliseconds.
    pub disabled_min_ms: f64,
    /// `enabled_min_ms / disabled_min_ms`.
    pub ratio: f64,
}

impl Probe {
    /// True when instrumentation stays within the [`MAX_RATIO`] budget.
    #[must_use]
    pub fn within_budget(&self) -> bool {
        self.ratio <= MAX_RATIO
    }
}

/// Runs the overhead probe in both feature modes and returns the pair
/// of timings.
///
/// # Errors
///
/// Returns a message when either probe build fails to run, exits
/// non-zero, or prints output the guard cannot parse.
pub fn check(root: &Path) -> Result<Probe, String> {
    let enabled_min_ms = run_probe(root, false)?;
    let disabled_min_ms = run_probe(root, true)?;
    if disabled_min_ms <= 0.0 {
        return Err(format!(
            "compiled-out probe reported a non-positive round time ({disabled_min_ms} ms)"
        ));
    }
    Ok(Probe {
        enabled_min_ms,
        disabled_min_ms,
        ratio: enabled_min_ms / disabled_min_ms,
    })
}

fn run_probe(root: &Path, obs_off: bool) -> Result<f64, String> {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root).args([
        "run",
        "--release",
        "-q",
        "-p",
        "blot-bench",
        "--bin",
        "metrics_overhead",
    ]);
    if obs_off {
        cmd.args(["--features", "obs-off"]);
    }
    let out = cmd
        .output()
        .map_err(|e| format!("cannot run the overhead probe: {e}"))?;
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        return Err(format!(
            "overhead probe (obs_off={obs_off}) failed: {}{}",
            stdout,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.contains("\"min_ms\""))
        .ok_or_else(|| format!("overhead probe printed no min_ms line:\n{stdout}"))?;
    field_f64(line, "min_ms")
        .ok_or_else(|| format!("cannot parse min_ms from probe output: {line}"))
}

/// Extracts a numeric field from one line of flat JSON. The probe's
/// output is machine-generated and non-nested, so a key scan suffices —
/// no JSON parser dependency in the audit tooling.
fn field_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)?;
    let rest = json.get(at + pat.len()..)?;
    let end = rest.find([',', '}'])?;
    rest.get(..end)?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_handles_probe_output() {
        let line = r#"{"enabled":true,"rounds":12,"min_ms":98.078,"median_ms":100.66}"#;
        assert_eq!(field_f64(line, "min_ms"), Some(98.078));
        assert_eq!(field_f64(line, "median_ms"), Some(100.66));
        assert_eq!(field_f64(line, "max_ms"), None);
        assert_eq!(field_f64(line, "enabled"), None);
    }

    #[test]
    fn budget_compares_on_ratio() {
        let ok = Probe {
            enabled_min_ms: 103.0,
            disabled_min_ms: 100.0,
            ratio: 1.03,
        };
        assert!(ok.within_budget());
        let slow = Probe {
            enabled_min_ms: 110.0,
            disabled_min_ms: 100.0,
            ratio: 1.10,
        };
        assert!(!slow.within_budget());
    }
}
