//! Rules `registry` and `wire-registry`: variant registries must be
//! complete.
//!
//! Every `codec::scheme::{Layout, Compression}` variant must resolve to
//! a full toolchain before it can ship: an encoder dispatch arm, a
//! decoder dispatch arm, a round-trip property test in
//! `codec/tests/properties.rs`, and a fuzz target. The expected names
//! are **derived from the parsed enum variants**, so adding a variant
//! without the rest of its toolchain fails `cargo xtask lint` the same
//! commit it lands.
//!
//! The same derivation covers the wire protocol: every
//! `server::wire::{Request, Response}` variant needs an encode arm, a
//! decode arm, client-side handling, and a test-corpus mention; every
//! `ErrorCode` variant needs a `from_u16` arm, a client-side
//! disposition, and a test-corpus mention. Deleting a match arm in
//! `wire.rs` or `client.rs` fails the lint the same commit.

use crate::ast::{self, View};
use crate::rules::{self, Rule, Violation};
use std::path::Path;

/// Checks scheme-registry completeness from source text.
///
/// `scheme_src` is `crates/codec/src/scheme.rs`, `props_src` is
/// `crates/codec/tests/properties.rs`, `fuzz_targets` the names the
/// fuzz registry compiles in. Pure so the fixture tests can feed it
/// known-bad sources.
#[must_use]
pub fn check_registry(
    scheme_file: &Path,
    scheme_src: &str,
    props_file: &Path,
    props_src: &str,
    fuzz_targets: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();

    let scheme_tokens = rules::lex_significant(scheme_src);
    let scheme_view = View::new(&scheme_tokens.0, &scheme_tokens.1);
    let scheme_ast = ast::parse(scheme_view);

    let props_tokens = rules::lex_significant(props_src);
    let props_view = View::new(&props_tokens.0, &props_tokens.1);
    let props_ast = ast::parse(props_view);

    let Some(layouts) = scheme_ast.enum_named("Layout").cloned() else {
        out.push(missing(scheme_file, "cannot find `enum Layout`"));
        return out;
    };
    let Some(comps) = scheme_ast.enum_named("Compression").cloned() else {
        out.push(missing(scheme_file, "cannot find `enum Compression`"));
        return out;
    };

    // 1. Dispatch arms: every variant must appear in the bodies of
    //    `EncodingScheme::{encode, decode}`.
    for method in ["encode", "decode"] {
        let Some(f) = scheme_ast
            .fns_named(method)
            .find(|f| f.owner.as_deref() == Some("EncodingScheme") && f.body.is_some())
        else {
            out.push(missing(
                scheme_file,
                &format!("cannot find `EncodingScheme::{method}`"),
            ));
            continue;
        };
        let (b0, b1) = f.body.unwrap_or_default();
        for (enum_name, decl) in [("Layout", &layouts), ("Compression", &comps)] {
            for v in &decl.variants {
                if !(b0..b1).any(|j| scheme_view.is_ident(j, v)) {
                    out.push(Violation {
                        rule: Rule::Registry,
                        file: scheme_file.to_path_buf(),
                        line: f.line,
                        message: format!(
                            "`{enum_name}::{v}` has no dispatch arm in `EncodingScheme::{method}`"
                        ),
                    });
                }
            }
        }
    }

    // 2. Round-trip property tests: `<variant>_roundtrips` for every
    //    real compressor, and the batch-level scheme round-trip that
    //    covers the layouts.
    for v in &comps.variants {
        if v == "Plain" {
            continue; // identity codec; covered by the scheme round-trip
        }
        let want = format!("{}_roundtrips", v.to_lowercase());
        if !props_ast.fns.iter().any(|f| f.name == want) {
            out.push(Violation {
                rule: Rule::Registry,
                file: props_file.to_path_buf(),
                line: 1,
                message: format!(
                    "`Compression::{v}` has no `{want}` property test in {}",
                    props_file.display()
                ),
            });
        }
    }
    if !props_ast
        .fns
        .iter()
        .any(|f| f.name.contains("schemes_roundtrip"))
    {
        out.push(Violation {
            rule: Rule::Registry,
            file: props_file.to_path_buf(),
            line: 1,
            message: "no `schemes_roundtrip*` property test covering the layout grid".to_string(),
        });
    }

    // 3. Fuzz targets: one per real compressor, one per (layout,
    //    compression) scheme decode, plus the tag-sniffing decoder.
    let mut want_targets: Vec<String> = vec!["decode_auto".to_string()];
    for c in &comps.variants {
        if c != "Plain" {
            want_targets.push(c.to_lowercase());
        }
        for l in &layouts.variants {
            want_targets.push(format!("decode_{}_{}", l.to_lowercase(), c.to_lowercase()));
        }
    }
    for want in want_targets {
        if !fuzz_targets.contains(&want.as_str()) {
            out.push(Violation {
                rule: Rule::Registry,
                file: scheme_file.to_path_buf(),
                line: comps.line,
                message: format!("no fuzz target `{want}` registered in xtask::fuzz"),
            });
        }
    }

    out
}

fn missing(file: &Path, what: &str) -> Violation {
    Violation {
        rule: Rule::Registry,
        file: file.to_path_buf(),
        line: 1,
        message: what.to_string(),
    }
}

/// Checks wire-protocol registry completeness from source text.
///
/// `wire_src` is `crates/server/src/wire.rs`, `client_src` is
/// `crates/server/src/client.rs`, `e2e_src` is
/// `crates/server/tests/e2e.rs`. The test corpus is `e2e_src` plus the
/// `#[cfg(test)]` tails of the two source files. Pure so the fixture
/// tests can feed it known-bad sources.
#[must_use]
pub fn check_wire_registry(
    wire_file: &Path,
    wire_src: &str,
    client_file: &Path,
    client_src: &str,
    e2e_src: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();

    let wire_tokens = rules::lex_significant(wire_src);
    let wire_view = View::new(&wire_tokens.0, &wire_tokens.1);
    let wire_ast = ast::parse(wire_view);

    let client_tokens = rules::lex_significant(client_src);
    let client_view = View::new(&client_tokens.0, &client_tokens.1);

    let corpus = format!(
        "{e2e_src}\n{}\n{}",
        test_tail(wire_src),
        test_tail(client_src)
    );

    let wire_missing = |what: &str| Violation {
        rule: Rule::WireRegistry,
        file: wire_file.to_path_buf(),
        line: 1,
        message: what.to_string(),
    };

    // 1. `Request` / `Response`: every variant needs an arm in the
    //    owner's `encode` and `decode`, client-side handling, and a
    //    test-corpus mention.
    for owner in ["Request", "Response"] {
        let Some(decl) = wire_ast.enum_named(owner).cloned() else {
            out.push(wire_missing(&format!("cannot find `enum {owner}`")));
            continue;
        };
        for method in ["encode", "decode"] {
            let Some(f) = wire_ast
                .fns_named(method)
                .find(|f| f.owner.as_deref() == Some(owner) && f.body.is_some())
            else {
                out.push(wire_missing(&format!("cannot find `{owner}::{method}`")));
                continue;
            };
            let (b0, b1) = f.body.unwrap_or_default();
            for v in &decl.variants {
                if !(b0..b1).any(|j| wire_view.is_ident(j, v)) {
                    out.push(Violation {
                        rule: Rule::WireRegistry,
                        file: wire_file.to_path_buf(),
                        line: f.line,
                        message: format!("`{owner}::{v}` has no arm in `{owner}::{method}`"),
                    });
                }
            }
        }
        check_client_and_corpus(
            &decl,
            owner,
            client_file,
            client_view,
            &corpus,
            wire_file,
            &mut out,
        );
    }

    // 2. Wire payload structs: every public field must appear in the
    //    test corpus. A field added to the wire format (a new counter
    //    in the query reply, a new filter knob) without any round-trip
    //    mention ships untested bytes; this closes the gap the variant
    //    check cannot see.
    for (name, line, fields) in pub_structs(wire_src) {
        for field in fields {
            if !corpus.contains(&field) {
                out.push(Violation {
                    rule: Rule::WireRegistry,
                    file: wire_file.to_path_buf(),
                    line,
                    message: format!(
                        "wire payload field `{name}.{field}` appears in no test \
                         (e2e or `#[cfg(test)]` module) — cover it or delete it"
                    ),
                });
            }
        }
    }

    // 3. `ErrorCode`: every variant needs a `from_u16` arm (`as_u16`
    //    is `self as u16` and has no arms to drop), a client-side
    //    disposition, and a test-corpus mention.
    match wire_ast.enum_named("ErrorCode").cloned() {
        None => out.push(wire_missing("cannot find `enum ErrorCode`")),
        Some(decl) => {
            match wire_ast
                .fns_named("from_u16")
                .find(|f| f.owner.as_deref() == Some("ErrorCode") && f.body.is_some())
            {
                None => out.push(wire_missing("cannot find `ErrorCode::from_u16`")),
                Some(f) => {
                    let (b0, b1) = f.body.unwrap_or_default();
                    for v in &decl.variants {
                        if !(b0..b1).any(|j| wire_view.is_ident(j, v)) {
                            out.push(Violation {
                                rule: Rule::WireRegistry,
                                file: wire_file.to_path_buf(),
                                line: f.line,
                                message: format!(
                                    "`ErrorCode::{v}` has no arm in `ErrorCode::from_u16`"
                                ),
                            });
                        }
                    }
                }
            }
            check_client_and_corpus(
                &decl,
                "ErrorCode",
                client_file,
                client_view,
                &corpus,
                wire_file,
                &mut out,
            );
        }
    }

    out
}

/// Client-handling and test-corpus checks shared by the three wire
/// enums.
fn check_client_and_corpus(
    decl: &ast::EnumDecl,
    owner: &str,
    client_file: &Path,
    client_view: View<'_>,
    corpus: &str,
    wire_file: &Path,
    out: &mut Vec<Violation>,
) {
    for v in &decl.variants {
        if !(0..client_view.len()).any(|j| client_view.is_ident(j, v)) {
            out.push(Violation {
                rule: Rule::WireRegistry,
                file: client_file.to_path_buf(),
                line: 1,
                message: format!(
                    "`{owner}::{v}` is never handled in {} — add a match arm or disposition",
                    client_file.display()
                ),
            });
        }
        if !corpus.contains(v) {
            out.push(Violation {
                rule: Rule::WireRegistry,
                file: wire_file.to_path_buf(),
                line: decl.line,
                message: format!(
                    "`{owner}::{v}` appears in no test (e2e or `#[cfg(test)]` module) — \
                     cover it or delete it"
                ),
            });
        }
    }
}

/// The `#[cfg(test)]` tail of a source file (empty when there is none).
fn test_tail(src: &str) -> &str {
    src.find("#[cfg(test)]").map_or("", |i| &src[i..])
}

/// Every `pub struct Name { … }` with named fields in `src`, as
/// `(name, declaration line, public field names)`.
///
/// Line-based on rustfmt layout: the declaration opens with
/// `pub struct Name {` at column 0 and the body ends at the first
/// column-0 `}`. Tuple and unit structs have no named fields and are
/// skipped; non-`pub` fields are wire-internal and exempt.
fn pub_structs(src: &str) -> Vec<(String, usize, Vec<String>)> {
    let mut out = Vec::new();
    let mut lines = src.lines().enumerate();
    while let Some((i, line)) = lines.next() {
        let Some(rest) = line.strip_prefix("pub struct ") else {
            continue;
        };
        let Some(name) = rest
            .split(['{', '<', ' '])
            .next()
            .filter(|n| !n.is_empty() && rest.trim_end().ends_with('{'))
        else {
            continue;
        };
        let mut fields = Vec::new();
        for (_, body) in lines.by_ref() {
            if body.starts_with('}') {
                break;
            }
            let Some(field) = body.trim_start().strip_prefix("pub ") else {
                continue;
            };
            if let Some((ident, _)) = field.split_once(':') {
                fields.push(ident.trim().to_string());
            }
        }
        out.push((name.to_string(), i + 1, fields));
    }
    out
}
