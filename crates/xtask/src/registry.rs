//! Rule `registry`: the codec scheme registry must be complete.
//!
//! Every `codec::scheme::{Layout, Compression}` variant must resolve to
//! a full toolchain before it can ship: an encoder dispatch arm, a
//! decoder dispatch arm, a round-trip property test in
//! `codec/tests/properties.rs`, and a fuzz target. The expected names
//! are **derived from the parsed enum variants**, so adding a variant
//! without the rest of its toolchain fails `cargo xtask lint` the same
//! commit it lands.

use crate::ast::{self, View};
use crate::rules::{self, Rule, Violation};
use std::path::Path;

/// Checks scheme-registry completeness from source text.
///
/// `scheme_src` is `crates/codec/src/scheme.rs`, `props_src` is
/// `crates/codec/tests/properties.rs`, `fuzz_targets` the names the
/// fuzz registry compiles in. Pure so the fixture tests can feed it
/// known-bad sources.
#[must_use]
pub fn check_registry(
    scheme_file: &Path,
    scheme_src: &str,
    props_file: &Path,
    props_src: &str,
    fuzz_targets: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();

    let scheme_tokens = rules::lex_significant(scheme_src);
    let scheme_view = View::new(&scheme_tokens.0, &scheme_tokens.1);
    let scheme_ast = ast::parse(scheme_view);

    let props_tokens = rules::lex_significant(props_src);
    let props_view = View::new(&props_tokens.0, &props_tokens.1);
    let props_ast = ast::parse(props_view);

    let Some(layouts) = scheme_ast.enum_named("Layout").cloned() else {
        out.push(missing(scheme_file, "cannot find `enum Layout`"));
        return out;
    };
    let Some(comps) = scheme_ast.enum_named("Compression").cloned() else {
        out.push(missing(scheme_file, "cannot find `enum Compression`"));
        return out;
    };

    // 1. Dispatch arms: every variant must appear in the bodies of
    //    `EncodingScheme::{encode, decode}`.
    for method in ["encode", "decode"] {
        let Some(f) = scheme_ast
            .fns_named(method)
            .find(|f| f.owner.as_deref() == Some("EncodingScheme") && f.body.is_some())
        else {
            out.push(missing(
                scheme_file,
                &format!("cannot find `EncodingScheme::{method}`"),
            ));
            continue;
        };
        let (b0, b1) = f.body.unwrap_or_default();
        for (enum_name, decl) in [("Layout", &layouts), ("Compression", &comps)] {
            for v in &decl.variants {
                if !(b0..b1).any(|j| scheme_view.is_ident(j, v)) {
                    out.push(Violation {
                        rule: Rule::Registry,
                        file: scheme_file.to_path_buf(),
                        line: f.line,
                        message: format!(
                            "`{enum_name}::{v}` has no dispatch arm in `EncodingScheme::{method}`"
                        ),
                    });
                }
            }
        }
    }

    // 2. Round-trip property tests: `<variant>_roundtrips` for every
    //    real compressor, and the batch-level scheme round-trip that
    //    covers the layouts.
    for v in &comps.variants {
        if v == "Plain" {
            continue; // identity codec; covered by the scheme round-trip
        }
        let want = format!("{}_roundtrips", v.to_lowercase());
        if !props_ast.fns.iter().any(|f| f.name == want) {
            out.push(Violation {
                rule: Rule::Registry,
                file: props_file.to_path_buf(),
                line: 1,
                message: format!(
                    "`Compression::{v}` has no `{want}` property test in {}",
                    props_file.display()
                ),
            });
        }
    }
    if !props_ast
        .fns
        .iter()
        .any(|f| f.name.contains("schemes_roundtrip"))
    {
        out.push(Violation {
            rule: Rule::Registry,
            file: props_file.to_path_buf(),
            line: 1,
            message: "no `schemes_roundtrip*` property test covering the layout grid".to_string(),
        });
    }

    // 3. Fuzz targets: one per real compressor, one per (layout,
    //    compression) scheme decode, plus the tag-sniffing decoder.
    let mut want_targets: Vec<String> = vec!["decode_auto".to_string()];
    for c in &comps.variants {
        if c != "Plain" {
            want_targets.push(c.to_lowercase());
        }
        for l in &layouts.variants {
            want_targets.push(format!("decode_{}_{}", l.to_lowercase(), c.to_lowercase()));
        }
    }
    for want in want_targets {
        if !fuzz_targets.contains(&want.as_str()) {
            out.push(Violation {
                rule: Rule::Registry,
                file: scheme_file.to_path_buf(),
                line: comps.line,
                message: format!("no fuzz target `{want}` registered in xtask::fuzz"),
            });
        }
    }

    out
}

fn missing(file: &Path, what: &str) -> Violation {
    Violation {
        rule: Rule::Registry,
        file: file.to_path_buf(),
        line: 1,
        message: what.to_string(),
    }
}
