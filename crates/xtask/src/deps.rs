//! Offline dependency audit over `cargo metadata`.
//!
//! No network access is assumed (or available): the audit inspects the
//! resolved metadata only — every package must declare a license, and
//! no two versions of the same package may differ in major version
//! (which would mean two copies compiled into the binaries).

use crate::rules::{Rule, Violation};
use blot_json::Json;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `cargo metadata` and audits the package graph.
///
/// # Errors
///
/// Returns a message if `cargo metadata` cannot be run or its output
/// cannot be parsed.
pub fn audit_dependencies(workspace_root: &Path) -> Result<Vec<Violation>, String> {
    let output = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(["metadata", "--format-version", "1", "--offline"])
        .current_dir(workspace_root)
        .output()
        .map_err(|e| format!("cannot run cargo metadata: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "cargo metadata failed: {}",
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    let text = String::from_utf8_lossy(&output.stdout);
    let tree = Json::parse(&text).map_err(|e| format!("cargo metadata output: {e}"))?;
    audit_metadata(&tree)
}

/// The metadata-level checks, separated out for testability.
///
/// # Errors
///
/// Returns a message if the JSON lacks the expected `packages` shape.
pub fn audit_metadata(tree: &Json) -> Result<Vec<Violation>, String> {
    let packages = tree
        .get("packages")
        .and_then(Json::as_array)
        .ok_or("metadata has no packages array")?;

    let mut violations = Vec::new();
    let mut versions: std::collections::HashMap<String, Vec<(String, PathBuf)>> =
        std::collections::HashMap::new();

    for p in packages {
        let name = p.get("name").and_then(Json::as_str).unwrap_or("?");
        let manifest = PathBuf::from(
            p.get("manifest_path")
                .and_then(Json::as_str)
                .unwrap_or("Cargo.toml"),
        );
        let license = p.get("license").and_then(Json::as_str).unwrap_or("");
        let license_file = p.get("license_file").and_then(Json::as_str).unwrap_or("");
        if license.is_empty() && license_file.is_empty() {
            violations.push(Violation {
                rule: Rule::Deps,
                file: manifest.clone(),
                line: 1,
                message: format!("package `{name}` declares no license"),
            });
        }
        let version = p.get("version").and_then(Json::as_str).unwrap_or("0.0.0");
        versions
            .entry(name.to_string())
            .or_default()
            .push((version.to_string(), manifest));
    }

    for (name, vs) in versions {
        let mut majors: Vec<String> = vs.iter().map(|(v, _)| major_of(v)).collect();
        majors.sort();
        majors.dedup();
        if majors.len() > 1 {
            if let Some((_, manifest)) = vs.first() {
                violations.push(Violation {
                    rule: Rule::Deps,
                    file: manifest.clone(),
                    line: 1,
                    message: format!(
                        "package `{name}` resolved at incompatible majors: {}",
                        majors.join(", ")
                    ),
                });
            }
        }
    }
    Ok(violations)
}

/// The semver-major key of a version: `1.2.3` → `1`, but `0.2.3` → `0.2`
/// (pre-1.0 minors are breaking).
fn major_of(version: &str) -> String {
    let mut parts = version.split('.');
    let major = parts.next().unwrap_or("0");
    if major == "0" {
        format!("0.{}", parts.next().unwrap_or("0"))
    } else {
        major.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_license_and_duplicate_majors_fire() {
        let meta = Json::parse(
            r#"{"packages": [
                {"name": "a", "version": "1.0.0", "license": "MIT", "manifest_path": "a/Cargo.toml"},
                {"name": "b", "version": "0.2.0", "license": null, "manifest_path": "b/Cargo.toml"},
                {"name": "c", "version": "0.2.0", "license": "MIT", "manifest_path": "c1/Cargo.toml"},
                {"name": "c", "version": "0.3.1", "license": "MIT", "manifest_path": "c2/Cargo.toml"}
            ]}"#,
        )
        .expect("parse");
        let v = audit_metadata(&meta).expect("audit");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .any(|x| x.message.contains("`b` declares no license")));
        assert!(v.iter().any(|x| x.message.contains("incompatible majors")));
    }

    #[test]
    fn major_keys() {
        assert_eq!(major_of("1.2.3"), "1");
        assert_eq!(major_of("0.2.3"), "0.2");
        assert_eq!(major_of("2.0.0"), "2");
    }
}
