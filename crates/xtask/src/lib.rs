//! blot-audit: the workspace's static-analysis gate.
//!
//! `cargo xtask lint` walks every workspace crate and enforces the
//! invariants the replica-selection hot paths rely on:
//!
//! * **panic** — no `.unwrap()` / `.expect(…)` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in the non-test
//!   library code of the audited crates (`core`, `storage`, `codec`,
//!   `mip`, `index`): a query must fail over to another replica, not
//!   abort the process;
//! * **indexing** — no `expr[…]` in the same scope (prefer `.get(…)`;
//!   structurally-safe dense loops carry a justification);
//! * **errors-doc** — every `pub fn` returning `Result` documents its
//!   `# Errors`;
//! * **error-traits** — every public error enum has an
//!   `std::error::Error` impl and a `require_error_traits::<…>`
//!   Send + Sync compile-time assertion;
//! * **deps** — offline `cargo metadata` audit: licenses declared,
//!   no duplicate semver-major versions.
//!
//! v2 adds semantic rule families on top, built on the parsed
//! workspace model in [`ast`]:
//!
//! * **lock-discipline** — no `storage::sync` guard held across
//!   backend I/O, and lock acquisitions follow the declared order; see
//!   [`locks`];
//! * **metrics-discipline** — no ad-hoc `static` atomics in the
//!   instrumented crates (`core`, `storage`): every global counter is
//!   a registered `blot-obs` instrument, so `metrics_snapshot()` and
//!   `blot stats` see all of them;
//! * **registry** — every `codec::scheme` variant resolves to an
//!   encoder, a decoder, a round-trip proptest, and a fuzz target; see
//!   [`registry`];
//!
//! v3 adds three *workspace-scoped* analyses that reason across crate
//! boundaries instead of file by file:
//!
//! * **panic-reachability** — no function in a panic-free crate may
//!   transitively reach a panic/unwrap/indexing site in another
//!   workspace crate; the workspace call graph closes the cross-crate
//!   escape hatch the lexical `panic` rule cannot see; see
//!   [`callgraph`];
//! * **deadlock** — held-guard sets propagate through call edges:
//!   transitive re-acquisition, lock-order inversion, blocking I/O or
//!   `ScanExecutor::execute_all` under a guard, and cycles in the
//!   workspace lock-acquisition graph all fail; see [`callgraph`];
//! * **wire-registry** — every `server::wire`
//!   `Request`/`Response`/`ErrorCode` variant needs encode + decode
//!   arms, client-side handling, and a test-corpus mention; see
//!   [`registry`];
//!
//! v4 adds the summary-based interprocedural dataflow engine in
//! [`dataflow`], with three rule families running to a deterministic
//! fixpoint over the whole workspace:
//!
//! * **unit-flow** — unit-family inference (ms / sec / bytes /
//!   partitions / records / ratio) for locals, params and returns,
//!   propagated through `let` bindings, `.get()`/`.0` escapes and call
//!   summaries; flags cross-family additive/comparison arithmetic and
//!   re-wrapping an escaped value into a different family (supersedes
//!   the old file-scoped lexical `unit-safety` rule);
//! * **result-discipline** — silently discarded fallible calls in the
//!   panic-free crates, plus the wire `ErrorCode`
//!   retryability-vs-emission cross-check;
//! * **cast-range** — interval propagation proving each narrowing `as`
//!   cast in the bit-level codec/wire files in-range, or flagging it
//!   (supersedes the old lexical `lossy-cast` rule);
//!
//! plus the **ratchet**: `crates/xtask/ratchet.toml` pins the
//! per-rule waiver counts, and the lint fails when the live ledger
//! drifts from the pin in either direction (see [`ratchet`]).
//!
//! Waivers are per-site `// audit: allow(rule, reason)` comments (or
//! `allow-file` for whole files); the lint prints the full ledger and
//! fails on waivers that no longer waive anything.

// Token-index arithmetic throughout this crate works on indices the
// scanners themselves produced; `.get()` chains would only obscure it.
// The audited product crates do NOT get this waiver.
#![allow(clippy::indexing_slicing)]

pub mod ast;
pub mod callgraph;
pub mod dataflow;
pub mod deps;
pub mod fuzz;
pub mod lexer;
pub mod locks;
pub mod overhead;
pub mod ratchet;
pub mod registry;
pub mod rules;
pub mod units;

use rules::{Allow, Rule, RuleSet, Violation};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Crates whose library code must be panic-free (rule `panic` and
/// `indexing`): these implement the query/repair hot paths and the
/// network serving layer (a panic there kills a connection handler).
pub const PANIC_FREE_CRATES: &[&str] = &[
    "core", "storage", "codec", "mip", "index", "server", "router",
];

/// `(crate, file)` pairs holding bit-level encode/decode state
/// machines, where every narrowing `as` cast must carry an interval
/// proof (rule `cast-range`).
pub const CAST_RANGE_FILES: &[(&str, &str)] = &[
    ("codec", "bitio.rs"),
    ("codec", "varint.rs"),
    ("codec", "gorilla.rs"),
    ("codec", "range.rs"),
    ("codec", "zonemap.rs"),
    ("server", "wire.rs"),
];

/// Crates whose code uses the `storage::sync` lock wrappers (rule
/// `lock-discipline`).
pub const LOCK_DISCIPLINE_CRATES: &[&str] = &["storage", "core"];

/// Crates that must run all parallel work on the shared scan-executor
/// pool instead of spawning ad-hoc OS threads (rule `thread-discipline`).
/// The pool's own implementation file is exempt, and `server`'s
/// long-lived accept/handler/batcher threads carry a waiver at their
/// single spawn site (`conn.rs::spawn_named`). `router`'s shard
/// connection workers are long-lived I/O threads, deliberately kept in
/// its `pool.rs` so they fall under the pool-file exemption.
pub const THREAD_DISCIPLINE_CRATES: &[&str] = &["storage", "core", "server", "router"];

/// The one file allowed to create OS threads: the pool itself.
pub const THREAD_DISCIPLINE_EXEMPT_FILE: &str = "pool.rs";

/// Crates whose global counters must be `blot-obs` registry
/// instruments rather than ad-hoc `static` atomics (rule
/// `metrics-discipline`). The `obs` crate itself — where the
/// instruments live — is exempt by omission.
pub const METRICS_DISCIPLINE_CRATES: &[&str] = &["core", "storage"];

/// Aggregated result of a workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations across all rules, in walk order.
    pub violations: Vec<Violation>,
    /// Every `audit: allow` comment found, with use counts.
    pub allows: Vec<Allow>,
    /// Waived sites per rule.
    pub waived: HashMap<Rule, usize>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Statistics from the interprocedural dataflow pass.
    pub dataflow: dataflow::Stats,
}

impl Report {
    /// True when the workspace passes the audit.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count for one rule.
    #[must_use]
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{v}");
        }
        let _ = writeln!(out, "---");
        let _ = writeln!(
            out,
            "blot-audit: {} file(s) scanned, {} violation(s)",
            self.files_scanned,
            self.violations.len()
        );
        let _ = writeln!(
            out,
            "dataflow: {} fn(s) summarised in {} round(s), {} cast proof(s), cache {} hit / {} \
             miss, extract {} ms",
            self.dataflow.functions,
            self.dataflow.rounds,
            self.dataflow.cast_proofs,
            self.dataflow.cache_hits,
            self.dataflow.cache_misses,
            self.dataflow.extract_ms
        );
        for &rule in Rule::ALL {
            let n = self.count(rule);
            let waived = self.waived.get(&rule).copied().unwrap_or(0);
            if n > 0 || waived > 0 {
                let _ = writeln!(out, "  {rule:<14} {n} violation(s), {waived} waived");
            }
        }
        let used: Vec<&Allow> = self.used_allows();
        if !used.is_empty() {
            let _ = writeln!(out, "allow ledger ({} entr{}):", used.len(), {
                if used.len() == 1 {
                    "y"
                } else {
                    "ies"
                }
            });
            for a in used {
                let _ = writeln!(
                    out,
                    "  {}:{}: {}({}) ×{} — {}",
                    a.file.display(),
                    a.line,
                    if a.file_wide { "allow-file" } else { "allow" },
                    a.rule,
                    a.used,
                    if a.reason.is_empty() {
                        "(no reason given)"
                    } else {
                        &a.reason
                    }
                );
            }
        }
        out
    }

    fn used_allows(&self) -> Vec<&Allow> {
        self.allows.iter().filter(|a| a.used > 0).collect()
    }

    /// Machine-readable report for `cargo xtask lint --json`: the
    /// verdict, every violation, and the live waiver ledger.
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // counts, far below 2^52
    pub fn to_json(&self) -> blot_json::Json {
        use blot_json::Json;
        let violations: Vec<Json> = self
            .violations
            .iter()
            .map(|v| {
                Json::obj([
                    ("rule", Json::Str(v.rule.name().to_string())),
                    ("file", Json::Str(v.file.display().to_string())),
                    ("line", Json::Num(v.line as f64)),
                    ("message", Json::Str(v.message.clone())),
                ])
            })
            .collect();
        let allows: Vec<Json> = self
            .used_allows()
            .into_iter()
            .map(|a| {
                Json::obj([
                    ("rule", Json::Str(a.rule.name().to_string())),
                    ("file", Json::Str(a.file.display().to_string())),
                    ("line", Json::Num(a.line as f64)),
                    ("file_wide", Json::Bool(a.file_wide)),
                    ("used", Json::Num(a.used as f64)),
                    ("reason", Json::Str(a.reason.clone())),
                ])
            })
            .collect();
        let dataflow = Json::obj([
            ("functions", Json::Num(self.dataflow.functions as f64)),
            ("rounds", Json::Num(self.dataflow.rounds as f64)),
            ("cast_proofs", Json::Num(self.dataflow.cast_proofs as f64)),
            ("cache_hits", Json::Num(self.dataflow.cache_hits as f64)),
            ("cache_misses", Json::Num(self.dataflow.cache_misses as f64)),
            ("extract_ms", Json::Num(self.dataflow.extract_ms as f64)),
        ]);
        Json::obj([
            ("clean", Json::Bool(self.is_clean())),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            ("violations", Json::Arr(violations)),
            ("allows", Json::Arr(allows)),
            ("dataflow", dataflow),
        ])
    }

    /// GitHub Actions workflow annotations, one `::error` line per
    /// violation — the CI lint lane emits these so findings surface
    /// inline on the pull request diff.
    #[must_use]
    pub fn github_annotations(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            // Annotation text must be single-line; %0A is the Actions
            // escape for a literal newline, commas/colons are fine.
            let message = v.message.replace('\n', "%0A");
            let _ = writeln!(
                out,
                "::error file={},line={},title=blot-audit {}::{message}",
                v.file.display(),
                v.line,
                v.rule
            );
        }
        out
    }
}

/// Lints the workspace rooted at `root`.
///
/// `with_deps` controls whether the `cargo metadata` dependency audit
/// runs (fixture tests skip it to stay hermetic).
///
/// # Errors
///
/// Returns a message when the workspace cannot be walked or the
/// dependency metadata cannot be obtained.
pub fn lint_workspace(root: &Path, with_deps: bool) -> Result<Report, String> {
    let mut report = Report::default();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut sources: Vec<callgraph::SourceFile> = Vec::new();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        lint_crate(root, &dir, &crate_name, &mut report, &mut sources)?;
    }
    // The facade crate's own sources.
    lint_crate(root, root, "blot", &mut report, &mut sources)?;

    if with_deps {
        report.violations.extend(deps::audit_dependencies(root)?);
    }

    // Workspace call-graph analyses: transitive panic-reachability and
    // deadlock detection across crate boundaries. Source vets consume
    // their allow entries inside `check_workspace`; frontier/call-site
    // waivers apply here like any per-site rule.
    let dep_graph = callgraph::crate_deps(root)?;
    let cg_violations =
        callgraph::check_workspace(&sources, &dep_graph, PANIC_FREE_CRATES, &mut report.allows);
    apply_allows(cg_violations, &mut report);

    // Interprocedural dataflow: unit-flow, result-discipline and
    // cast-range, sharing the call-resolution policy with the call
    // graph above. Extraction goes through the content-hash cache.
    let df = dataflow::check_workspace(
        &sources,
        &dep_graph,
        PANIC_FREE_CRATES,
        CAST_RANGE_FILES,
        Some(&root.join("target/xtask-cache")),
    );
    apply_allows(df.violations, &mut report);
    report.dataflow = df.stats;

    // Registry completeness: the codec scheme enums against their
    // encoder/decoder arms, property tests and fuzz targets.
    let scheme_file = Path::new("crates/codec/src/scheme.rs");
    let props_file = Path::new("crates/codec/tests/properties.rs");
    let scheme_src = std::fs::read_to_string(root.join(scheme_file))
        .map_err(|e| format!("cannot read {}: {e}", scheme_file.display()))?;
    let props_src = std::fs::read_to_string(root.join(props_file))
        .map_err(|e| format!("cannot read {}: {e}", props_file.display()))?;
    report.violations.extend(registry::check_registry(
        scheme_file,
        &scheme_src,
        props_file,
        &props_src,
        &fuzz::target_names(),
    ));

    // Wire-protocol registry: server request/response/error-code
    // variants against their encode/decode arms, client handling, and
    // test coverage.
    let wire_file = Path::new("crates/server/src/wire.rs");
    let client_file = Path::new("crates/server/src/client.rs");
    let e2e_file = Path::new("crates/server/tests/e2e.rs");
    let wire_src = std::fs::read_to_string(root.join(wire_file))
        .map_err(|e| format!("cannot read {}: {e}", wire_file.display()))?;
    let client_src = std::fs::read_to_string(root.join(client_file))
        .map_err(|e| format!("cannot read {}: {e}", client_file.display()))?;
    let e2e_src = std::fs::read_to_string(root.join(e2e_file))
        .map_err(|e| format!("cannot read {}: {e}", e2e_file.display()))?;
    report.violations.extend(registry::check_wire_registry(
        wire_file,
        &wire_src,
        client_file,
        &client_src,
        &e2e_src,
    ));

    // The waiver ratchet: live allow-comment counts against the pins.
    report
        .violations
        .extend(ratchet::check(root, &report.allows));

    // Stale allows are violations too — the ledger must stay honest.
    for a in &report.allows {
        if a.used == 0 {
            report.violations.push(Violation {
                rule: Rule::UnusedAllow,
                file: a.file.clone(),
                line: a.line,
                message: format!("allow({}) waives nothing — remove it", a.rule),
            });
        }
    }
    Ok(report)
}

/// Applies the site-waiver ledger to workspace-scoped violations (the
/// per-file rules do this inside [`rules::audit_file`]; workspace rules
/// arrive after the walk, so the match must compare files too).
fn apply_allows(raw: Vec<Violation>, report: &mut Report) {
    for v in raw {
        let allow = report.allows.iter_mut().find(|a| {
            a.rule == v.rule
                && a.file == v.file
                && (a.file_wide || a.line == v.line || a.line + 1 == v.line)
        });
        if let Some(a) = allow {
            a.used += 1;
            *report.waived.entry(v.rule).or_default() += 1;
        } else {
            report.violations.push(v);
        }
    }
}

fn lint_crate(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    report: &mut Report,
    sources: &mut Vec<callgraph::SourceFile>,
) -> Result<(), String> {
    let src = dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    collect_rs_files(&src, &mut files)?;
    files.sort();

    let panic_free = PANIC_FREE_CRATES.contains(&crate_name);
    let mut error_enums: Vec<(String, usize, PathBuf)> = Vec::new();
    let mut assertions: Vec<String> = Vec::new();
    let mut impls: Vec<String> = Vec::new();

    for file in &files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let file_name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let rules = RuleSet {
            panic: panic_free,
            indexing: panic_free,
            errors_doc: true,
            lock_discipline: LOCK_DISCIPLINE_CRATES.contains(&crate_name),
            thread_discipline: THREAD_DISCIPLINE_CRATES.contains(&crate_name)
                && file_name != THREAD_DISCIPLINE_EXEMPT_FILE,
            metrics_discipline: METRICS_DISCIPLINE_CRATES.contains(&crate_name),
        };
        let rel = file.strip_prefix(root).unwrap_or(file);
        sources.push(callgraph::SourceFile {
            crate_name: crate_name.to_string(),
            path: rel.to_path_buf(),
            source: source.clone(),
        });
        let fr = rules::audit_file(rel, &source, rules);
        report.files_scanned += 1;
        report.violations.extend(fr.violations);
        report.allows.extend(fr.allows);
        for (rule, n) in fr.waived {
            *report.waived.entry(rule).or_default() += n;
        }
        for (name, line) in fr.error_enums {
            error_enums.push((name, line, rel.to_path_buf()));
        }
        assertions.extend(fr.trait_assertions);
        impls.extend(fr.error_impls);
    }

    for (name, line, file) in error_enums {
        if !impls.iter().any(|i| i == &name) {
            report.violations.push(Violation {
                rule: Rule::ErrorTraits,
                file: file.clone(),
                line,
                message: format!("`{name}` has no `std::error::Error` impl in its crate"),
            });
        }
        if !assertions.iter().any(|a| a == &name) {
            report.violations.push(Violation {
                rule: Rule::ErrorTraits,
                file,
                line,
                message: format!(
                    "`{name}` has no `require_error_traits::<{name}>` Send + Sync assertion"
                ),
            });
        }
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
