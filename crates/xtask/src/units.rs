//! Rule `unit-safety`: no additive arithmetic across unit families.
//!
//! The cost model mixes four physical dimensions — milliseconds, bytes,
//! partition counts and record counts — and before the `core::units`
//! newtypes they were all bare `f64`s, so nothing stopped
//! `extra_ms + total_bytes` from compiling. The newtypes close that
//! hole where they are in scope, but `geo` and `mip` sit *below*
//! `core` in the dependency order and cannot import them; this lint
//! covers the gap with suffix-based unit inference on the modules that
//! carry dimensioned quantities.
//!
//! The check is deliberately conservative: it only fires on `+`, `-`,
//! `+=` and `-=` where **both** operands are simple identifier paths
//! (optionally ending in an empty `.get()`-style call) whose final
//! segment carries a recognisable unit suffix, and the two units
//! differ. Multiplicative expressions produce derived units and are
//! exempt, as are literals and anything structurally complex — a lint
//! that cries wolf on `slope * records + intercept_ms` would be
//! deleted within a week.

use crate::ast::{self, View};
use crate::lexer::Kind;
use crate::rules::{Rule, Violation};
use std::path::Path;

/// The unit families the suffix heuristics can recognise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Milliseconds (`_ms`, `ms_per_*`).
    Millis,
    /// Seconds (`_secs`, `_seconds`).
    Seconds,
    /// Bytes (`_bytes`, `bytes_per_*`, `storage`, `budget`).
    Bytes,
    /// Partition counts (`np`, `*partitions`).
    Partitions,
    /// Record counts (`records`, `*_records`).
    Records,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::Millis => "milliseconds",
            Family::Seconds => "seconds",
            Family::Bytes => "bytes",
            Family::Partitions => "partition-count",
            Family::Records => "record-count",
        }
    }
}

/// Infers the unit family of one identifier from its name.
#[must_use]
pub fn family_of(ident: &str) -> Option<Family> {
    if ident == "ms" || ident.ends_with("_ms") || ident.starts_with("ms_per") {
        return Some(Family::Millis);
    }
    if ident == "secs" || ident.ends_with("_secs") || ident.ends_with("_seconds") {
        return Some(Family::Seconds);
    }
    if ident == "bytes"
        || ident.ends_with("_bytes")
        || ident.starts_with("bytes_per")
        || ident == "storage"
        || ident == "budget"
    {
        return Some(Family::Bytes);
    }
    if ident == "np" || ident.ends_with("partitions") {
        return Some(Family::Partitions);
    }
    if ident == "records" || ident.ends_with("_records") {
        return Some(Family::Records);
    }
    None
}

/// Tokens that make the `+`/`-` before an operand a unary sign rather
/// than a binary operator.
const UNARY_CONTEXT: &[&str] = &[
    "(", "[", "{", ",", ";", "=", "+", "-", "*", "/", "%", "<", ">", "&", "|", "!", ":", "=>",
    "return", "if", "else", "match", "in", "while", "break",
];

/// Accessor methods that do not change an operand's unit.
const UNIT_PRESERVING_METHODS: &[&str] = &["get", "abs", "copied", "clone", "min", "max"];

/// Scans every function body for additive mixing of unit families.
pub fn scan(file: &Path, view: View<'_>, ast: &ast::Ast, out: &mut Vec<Violation>) {
    for f in &ast.fns {
        let Some((start, end)) = f.body else {
            continue;
        };
        scan_range(file, view, start, end, out);
    }
}

fn scan_range(file: &Path, view: View<'_>, start: usize, end: usize, out: &mut Vec<Violation>) {
    for j in start..end {
        let op = match view.text(j) {
            Some(t @ ("+" | "-")) if view.kind(j) == Some(Kind::Punct) => t.to_string(),
            _ => continue,
        };
        // `->` and `several-token` operators are not arithmetic.
        if op == "-" && view.text(j + 1) == Some(">") {
            continue;
        }
        // Unary sign: no left operand.
        if j == start || UNARY_CONTEXT.contains(&view.text(j - 1).unwrap_or_default()) {
            continue;
        }
        // Compound assignment (`+=` / `-=`) shifts the right operand.
        let rhs_at = if view.text(j + 1) == Some("=") {
            j + 2
        } else {
            j + 1
        };
        let Some((left, l_edge)) = left_operand(view, start, j) else {
            continue;
        };
        let Some((right, r_edge)) = right_operand(view, rhs_at, end) else {
            continue;
        };
        // A `*`/`/` on either flank makes the operand a derived unit.
        if l_edge > start && matches!(view.text(l_edge - 1), Some("*" | "/" | "%")) {
            continue;
        }
        if matches!(view.text(r_edge), Some("*" | "/" | "%")) {
            continue;
        }
        let (Some(lf), Some(rf)) = (
            family_of(&left_segment(&left)),
            family_of(&left_segment(&right)),
        ) else {
            continue;
        };
        if lf != rf {
            out.push(Violation {
                rule: Rule::UnitSafety,
                file: file.to_path_buf(),
                line: view.line(j),
                message: format!(
                    "`{left} {op} {right}` mixes {} and {} — use the `blot_core::units` newtypes \
                     or convert explicitly",
                    lf.name(),
                    rf.name()
                ),
            });
        }
    }
}

/// Final path segment (`p.extra_ms` → `extra_ms`).
fn left_segment(path: &str) -> String {
    path.rsplit('.').next().unwrap_or(path).to_string()
}

/// The simple path ending just before `op` (walking left), with the
/// index of its first token. `None` when the operand is structurally
/// complex.
fn left_operand(view: View<'_>, floor: usize, op: usize) -> Option<(String, usize)> {
    let mut k = op; // exclusive end
                    // Optional trailing unit-preserving empty call: `… .get()`.
    if k >= floor + 4
        && view.text(k - 1) == Some(")")
        && view.text(k - 2) == Some("(")
        && view.text(k - 4) == Some(".")
    {
        let m = view.text(k - 3).unwrap_or_default();
        if view.kind(k - 3) == Some(Kind::Ident) && UNIT_PRESERVING_METHODS.contains(&m) {
            k -= 4;
        } else {
            return None;
        }
    }
    // Now a dotted ident path, read right to left.
    if k == floor || view.kind(k - 1) != Some(Kind::Ident) {
        return None;
    }
    let mut parts = vec![view.text(k - 1).unwrap_or_default().to_string()];
    let mut p = k - 1;
    while p >= floor + 2 && view.text(p - 1) == Some(".") && view.kind(p - 2) == Some(Kind::Ident) {
        parts.push(view.text(p - 2).unwrap_or_default().to_string());
        p -= 2;
    }
    // A `.` or `::` still hanging off the left edge means the path is a
    // fragment of something more complex (`foo().x`, `Type::CONST`).
    if p > floor && matches!(view.text(p - 1), Some("." | ":")) {
        return None;
    }
    parts.reverse();
    Some((parts.join("."), p))
}

/// The simple path starting at `at` (walking right), with the index
/// just past its last token. `None` when the operand is complex.
fn right_operand(view: View<'_>, at: usize, end: usize) -> Option<(String, usize)> {
    if at >= end || view.kind(at) != Some(Kind::Ident) {
        return None;
    }
    let mut parts = vec![view.text(at).unwrap_or_default().to_string()];
    let mut p = at + 1;
    while p + 1 < end && view.text(p) == Some(".") && view.kind(p + 1) == Some(Kind::Ident) {
        // Stop the path before a unit-preserving empty call.
        if view.text(p + 2) == Some("(") {
            break;
        }
        parts.push(view.text(p + 1).unwrap_or_default().to_string());
        p += 2;
    }
    // Optional trailing `.get()`.
    if p + 3 < end
        && view.text(p) == Some(".")
        && view.kind(p + 1) == Some(Kind::Ident)
        && view.text(p + 2) == Some("(")
        && view.text(p + 3) == Some(")")
    {
        let m = view.text(p + 1).unwrap_or_default();
        if UNIT_PRESERVING_METHODS.contains(&m) {
            p += 4;
        } else {
            return None;
        }
    }
    // A call or index right after the path makes it complex.
    if matches!(view.text(p), Some("(" | "[" | "." | ":")) {
        return None;
    }
    Some((parts.join("."), p))
}
