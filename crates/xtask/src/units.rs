//! Unit vocabulary shared by the `unit-flow` dataflow analysis.
//!
//! The cost model mixes several physical dimensions — milliseconds,
//! seconds, bytes, partition counts, record counts and dimensionless
//! ratios — and before the `core::units` newtypes they were all bare
//! `f64`s, so nothing stopped `extra_ms + total_bytes` from compiling.
//! The newtypes close that hole where they are in scope, but `geo` and
//! `mip` sit *below* `core` in the dependency order and cannot import
//! them; the [`crate::dataflow`] unit-flow rule covers the gap with
//! workspace-wide inference seeded by the suffix heuristics here.
//!
//! This module holds only the vocabulary: the [`Family`] lattice
//! element, the suffix heuristics, and the conservative operand
//! extraction the arithmetic check uses. The propagation itself —
//! through `let` bindings, `.get()`/`.0` escapes and call summaries —
//! lives in [`crate::dataflow`].

use crate::ast::View;
use crate::lexer::Kind;

/// The unit families the analysis tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Milliseconds (`_ms`, `ms_per_*`).
    Millis,
    /// Seconds (`_secs`, `_seconds`).
    Seconds,
    /// Bytes (`_bytes`, `bytes_per_*`, `storage`, `budget`).
    Bytes,
    /// Partition counts (`np`, `*partitions`).
    Partitions,
    /// Record counts (`records`, `*_records`).
    Records,
    /// Dimensionless ratios (`_ratio`).
    Ratio,
}

impl Family {
    /// Human-readable name used in violation messages.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Family::Millis => "milliseconds",
            Family::Seconds => "seconds",
            Family::Bytes => "bytes",
            Family::Partitions => "partition-count",
            Family::Records => "record-count",
            Family::Ratio => "ratio",
        }
    }

    /// Stable short tag used by the analysis cache.
    pub(crate) fn tag(self) -> &'static str {
        match self {
            Family::Millis => "ms",
            Family::Seconds => "sec",
            Family::Bytes => "bytes",
            Family::Partitions => "np",
            Family::Records => "rec",
            Family::Ratio => "ratio",
        }
    }

    /// Inverse of [`Family::tag`].
    pub(crate) fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "ms" => Some(Family::Millis),
            "sec" => Some(Family::Seconds),
            "bytes" => Some(Family::Bytes),
            "np" => Some(Family::Partitions),
            "rec" => Some(Family::Records),
            "ratio" => Some(Family::Ratio),
            _ => None,
        }
    }

    /// The family wrapped by a `blot_core::units` newtype, by type name.
    pub(crate) fn of_newtype(type_name: &str) -> Option<Self> {
        match type_name {
            "Millis" => Some(Family::Millis),
            "Seconds" => Some(Family::Seconds),
            "Bytes" => Some(Family::Bytes),
            "PartitionCount" => Some(Family::Partitions),
            _ => None,
        }
    }
}

/// Infers the unit family of one identifier from its name.
#[must_use]
pub fn family_of(ident: &str) -> Option<Family> {
    if ident == "ms" || ident.ends_with("_ms") || ident.starts_with("ms_per") {
        return Some(Family::Millis);
    }
    if ident == "secs" || ident.ends_with("_secs") || ident.ends_with("_seconds") {
        return Some(Family::Seconds);
    }
    if ident == "bytes"
        || ident.ends_with("_bytes")
        || ident.starts_with("bytes_per")
        || ident == "storage"
        || ident == "budget"
    {
        return Some(Family::Bytes);
    }
    if ident == "np" || ident.ends_with("partitions") {
        return Some(Family::Partitions);
    }
    if ident == "records" || ident.ends_with("_records") {
        return Some(Family::Records);
    }
    if ident == "ratio" || ident.ends_with("_ratio") {
        return Some(Family::Ratio);
    }
    None
}

/// Tokens that make the `+`/`-` before an operand a unary sign rather
/// than a binary operator.
pub(crate) const UNARY_CONTEXT: &[&str] = &[
    "(", "[", "{", ",", ";", "=", "+", "-", "*", "/", "%", "<", ">", "&", "|", "!", ":", "=>",
    "return", "if", "else", "match", "in", "while", "break",
];

/// Accessor methods that do not change an operand's unit.
pub(crate) const UNIT_PRESERVING_METHODS: &[&str] =
    &["get", "abs", "copied", "clone", "min", "max"];

/// Final path segment (`p.extra_ms` → `extra_ms`).
pub(crate) fn last_segment(path: &str) -> &str {
    path.rsplit('.').next().unwrap_or(path)
}

/// The simple path ending just before `op` (walking left), with the
/// index of its first token. `None` when the operand is structurally
/// complex.
pub(crate) fn left_operand(view: View<'_>, floor: usize, op: usize) -> Option<(String, usize)> {
    let mut k = op; // exclusive end
                    // Optional trailing unit-preserving empty call: `… .get()`.
    if k >= floor + 4
        && view.text(k - 1) == Some(")")
        && view.text(k - 2) == Some("(")
        && view.text(k - 4) == Some(".")
    {
        let m = view.text(k - 3).unwrap_or_default();
        if view.kind(k - 3) == Some(Kind::Ident) && UNIT_PRESERVING_METHODS.contains(&m) {
            k -= 4;
        } else {
            return None;
        }
    }
    // Now a dotted ident path, read right to left.
    if k == floor || view.kind(k - 1) != Some(Kind::Ident) {
        return None;
    }
    let mut parts = vec![view.text(k - 1).unwrap_or_default().to_string()];
    let mut p = k - 1;
    while p >= floor + 2 && view.text(p - 1) == Some(".") && view.kind(p - 2) == Some(Kind::Ident) {
        parts.push(view.text(p - 2).unwrap_or_default().to_string());
        p -= 2;
    }
    // A `.` or `::` still hanging off the left edge means the path is a
    // fragment of something more complex (`foo().x`, `Type::CONST`).
    if p > floor && matches!(view.text(p - 1), Some("." | ":")) {
        return None;
    }
    parts.reverse();
    Some((parts.join("."), p))
}

/// The simple path starting at `at` (walking right), with the index
/// just past its last token. `None` when the operand is complex.
pub(crate) fn right_operand(view: View<'_>, at: usize, end: usize) -> Option<(String, usize)> {
    if at >= end || view.kind(at) != Some(Kind::Ident) {
        return None;
    }
    let mut parts = vec![view.text(at).unwrap_or_default().to_string()];
    let mut p = at + 1;
    while p + 1 < end && view.text(p) == Some(".") && view.kind(p + 1) == Some(Kind::Ident) {
        // Stop the path before a unit-preserving empty call.
        if view.text(p + 2) == Some("(") {
            break;
        }
        parts.push(view.text(p + 1).unwrap_or_default().to_string());
        p += 2;
    }
    // Optional trailing `.get()`.
    if p + 3 < end
        && view.text(p) == Some(".")
        && view.kind(p + 1) == Some(Kind::Ident)
        && view.text(p + 2) == Some("(")
        && view.text(p + 3) == Some(")")
    {
        let m = view.text(p + 1).unwrap_or_default();
        if UNIT_PRESERVING_METHODS.contains(&m) {
            p += 4;
        } else {
            return None;
        }
    }
    // A call or index right after the path makes it complex.
    if matches!(view.text(p), Some("(" | "[" | "." | ":")) {
        return None;
    }
    Some((parts.join("."), p))
}
