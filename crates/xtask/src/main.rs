//! `cargo xtask` — workspace maintenance commands.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: cargo xtask lint [--no-deps] [--update-ratchet] [--json] [--github] [--max-seconds N]\n       cargo xtask lint --explain RULE\n       cargo xtask fuzz [--target NAME] [--millis N]\n       cargo xtask metrics-overhead";

/// Parsed options of the `lint` subcommand.
#[derive(Debug, Default)]
struct LintOptions {
    with_deps: bool,
    update_ratchet: bool,
    json: bool,
    github: bool,
    max_seconds: Option<u64>,
    explain: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_lint_options(args.get(1..).unwrap_or(&[])) {
            Ok(options) => lint(&options),
            Err(e) => {
                eprintln!("{e}\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("fuzz") => fuzz(args.get(1..).unwrap_or(&[])),
        Some("metrics-overhead") => metrics_overhead(),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_lint_options(args: &[String]) -> Result<LintOptions, String> {
    let mut options = LintOptions {
        with_deps: true,
        ..LintOptions::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-deps" => options.with_deps = false,
            "--update-ratchet" => options.update_ratchet = true,
            "--json" => options.json = true,
            "--github" => options.github = true,
            "--max-seconds" => match it.next().map(|m| m.parse()) {
                Some(Ok(s)) => options.max_seconds = Some(s),
                _ => return Err("--max-seconds needs an integer wall-time budget".into()),
            },
            "--explain" => match it.next() {
                Some(rule) => options.explain = Some(rule.clone()),
                None => return Err(format!("--explain needs a rule name; one of: {}", rules())),
            },
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    Ok(options)
}

fn lint(options: &LintOptions) -> ExitCode {
    if let Some(rule_name) = &options.explain {
        return explain(rule_name);
    }
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if options.update_ratchet {
        // First pass only collects the ledger; ratchet mismatches in it
        // are exactly what the update is about to resolve.
        match xtask::lint_workspace(&root, false) {
            Ok(report) => match xtask::ratchet::update(&root, &report.allows) {
                Ok(path) => println!("ratchet updated: {}", path.display()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let started = Instant::now();
    match xtask::lint_workspace(&root, options.with_deps) {
        Ok(report) => {
            let elapsed = started.elapsed();
            if options.json {
                println!("{}", report.to_json().pretty());
            } else {
                print!("{}", report.render());
            }
            if options.github {
                print!("{}", report.github_annotations());
            }
            if let Some(budget) = options.max_seconds {
                if elapsed.as_secs() >= budget {
                    eprintln!(
                        "error: lint took {:.1} s, over the {budget} s wall-time budget",
                        elapsed.as_secs_f64()
                    );
                    return ExitCode::FAILURE;
                }
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints one rule's rationale and fix recipe.
fn explain(rule_name: &str) -> ExitCode {
    match xtask::rules::Rule::ALL
        .iter()
        .find(|r| r.name() == rule_name)
    {
        Some(rule) => {
            println!(
                "{rule}\n{}\n\n{}",
                "=".repeat(rule.name().len()),
                rule.explain()
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule `{rule_name}`; one of: {}", rules());
            ExitCode::from(2)
        }
    }
}

fn rules() -> String {
    xtask::rules::Rule::ALL
        .iter()
        .map(|r| r.name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn fuzz(args: &[String]) -> ExitCode {
    let mut target: Option<String> = None;
    let mut millis: u64 = 1000;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => match it.next() {
                Some(name) => target = Some(name.clone()),
                None => {
                    eprintln!("--target needs a name; registered: {}", names());
                    return ExitCode::from(2);
                }
            },
            "--millis" => match it.next().map(|m| m.parse()) {
                Some(Ok(m)) => millis = m,
                _ => {
                    eprintln!("--millis needs an integer millisecond budget per target");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown fuzz option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match xtask::fuzz::run(target.as_deref(), millis) {
        Ok(summaries) => {
            let mut failed = false;
            for s in &summaries {
                println!(
                    "fuzz {:<22} {:>9} execs, {} failure(s)",
                    s.name,
                    s.execs,
                    s.failures.len()
                );
                for f in &s.failures {
                    failed = true;
                    println!("  panic: {}", f.message);
                    println!("  input: {}", f.input_hex);
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn metrics_overhead() -> ExitCode {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::overhead::check(&root) {
        Ok(probe) => {
            println!(
                "metrics overhead: instrumented {:.2} ms vs compiled-out {:.2} ms \
                 (ratio {:.3}, budget {:.2}, {} spans recorded)",
                probe.enabled_min_ms,
                probe.disabled_min_ms,
                probe.ratio,
                xtask::overhead::MAX_RATIO,
                probe.enabled_spans
            );
            if probe.within_budget() {
                ExitCode::SUCCESS
            } else {
                eprintln!("error: instrumentation exceeds the overhead budget");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn names() -> String {
    xtask::fuzz::target_names().join(", ")
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> Result<PathBuf, String> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .ok_or_else(|| "cannot locate workspace root".into())
}
