//! `cargo xtask` — workspace maintenance commands.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask lint [--no-deps] [--update-ratchet]\n       cargo xtask fuzz [--target NAME] [--millis N]\n       cargo xtask metrics-overhead";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let with_deps = !args.iter().any(|a| a == "--no-deps");
            let update_ratchet = args.iter().any(|a| a == "--update-ratchet");
            lint(with_deps, update_ratchet)
        }
        Some("fuzz") => fuzz(args.get(1..).unwrap_or(&[])),
        Some("metrics-overhead") => metrics_overhead(),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(with_deps: bool, update_ratchet: bool) -> ExitCode {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if update_ratchet {
        // First pass only collects the ledger; ratchet mismatches in it
        // are exactly what the update is about to resolve.
        match xtask::lint_workspace(&root, false) {
            Ok(report) => match xtask::ratchet::update(&root, &report.allows) {
                Ok(path) => println!("ratchet updated: {}", path.display()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match xtask::lint_workspace(&root, with_deps) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fuzz(args: &[String]) -> ExitCode {
    let mut target: Option<String> = None;
    let mut millis: u64 = 1000;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => match it.next() {
                Some(name) => target = Some(name.clone()),
                None => {
                    eprintln!("--target needs a name; registered: {}", names());
                    return ExitCode::from(2);
                }
            },
            "--millis" => match it.next().map(|m| m.parse()) {
                Some(Ok(m)) => millis = m,
                _ => {
                    eprintln!("--millis needs an integer millisecond budget per target");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown fuzz option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match xtask::fuzz::run(target.as_deref(), millis) {
        Ok(summaries) => {
            let mut failed = false;
            for s in &summaries {
                println!(
                    "fuzz {:<22} {:>9} execs, {} failure(s)",
                    s.name,
                    s.execs,
                    s.failures.len()
                );
                for f in &s.failures {
                    failed = true;
                    println!("  panic: {}", f.message);
                    println!("  input: {}", f.input_hex);
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn metrics_overhead() -> ExitCode {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::overhead::check(&root) {
        Ok(probe) => {
            println!(
                "metrics overhead: instrumented {:.2} ms vs compiled-out {:.2} ms \
                 (ratio {:.3}, budget {:.2})",
                probe.enabled_min_ms,
                probe.disabled_min_ms,
                probe.ratio,
                xtask::overhead::MAX_RATIO
            );
            if probe.within_budget() {
                ExitCode::SUCCESS
            } else {
                eprintln!("error: instrumentation exceeds the overhead budget");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn names() -> String {
    xtask::fuzz::target_names().join(", ")
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> Result<PathBuf, String> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .ok_or_else(|| "cannot locate workspace root".into())
}
