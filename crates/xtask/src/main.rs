//! `cargo xtask` — workspace maintenance commands.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let with_deps = !args.iter().any(|a| a == "--no-deps");
            lint(with_deps)
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--no-deps]");
            ExitCode::from(2)
        }
    }
}

fn lint(with_deps: bool) -> ExitCode {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::lint_workspace(&root, with_deps) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> Result<PathBuf, String> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .ok_or_else(|| "cannot locate workspace root".into())
}
