//! Rule `ratchet`: the waiver count may only go down.
//!
//! `crates/xtask/ratchet.toml` pins the number of `// audit: allow`
//! comments per rule. A lint run counts the live allow comments and
//! fails when any rule's count differs from its pin **in either
//! direction**: an increase means a new waiver slipped in; a decrease
//! means the pin is stale and must be tightened (run
//! `cargo xtask lint --update-ratchet`) so the improvement cannot
//! silently regress later.
//!
//! On top of the exact per-rule pins, an optional `[ceiling]` section
//! pins `total = N`: the live grand total may never exceed it, and
//! `--update-ratchet` preserves the ceiling as-is (never raises it), so
//! trading one waiver for another cannot quietly grow the overall
//! surface either.
//!
//! The file is hand-parsed — a `[waivers]` section of `rule = count`
//! lines plus the optional `[ceiling]` — because the workspace has no
//! TOML crate and does not need one for this grammar.

use crate::rules::{Allow, Rule, Violation};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Workspace-relative path of the ratchet file.
pub const RATCHET_PATH: &str = "crates/xtask/ratchet.toml";

/// The pinned per-rule waiver counts.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// `rule name → pinned allow-comment count`, sorted by name.
    pub pins: BTreeMap<String, usize>,
    /// Optional cap on the grand-total waiver count (`[ceiling]`
    /// section, `total = N`), preserved verbatim by `--update-ratchet`.
    pub ceiling: Option<usize>,
}

impl Ratchet {
    /// Parses the ratchet file's text.
    ///
    /// # Errors
    ///
    /// Returns a message for lines that are not comments, blank lines,
    /// the `[waivers]` header, or `rule = count` pairs.
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut pins = BTreeMap::new();
        let mut ceiling = None;
        let mut section = String::new();
        for (i, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("{RATCHET_PATH}:{}: expected `rule = count`", i + 1));
            };
            let key = key.trim().to_string();
            let count: usize = value
                .trim()
                .parse()
                .map_err(|e| format!("{RATCHET_PATH}:{}: bad count: {e}", i + 1))?;
            match section.as_str() {
                "waivers" => {
                    if pins.insert(key.clone(), count).is_some() {
                        return Err(format!("{RATCHET_PATH}:{}: duplicate rule `{key}`", i + 1));
                    }
                }
                "ceiling" if key == "total" => {
                    if ceiling.replace(count).is_some() {
                        return Err(format!("{RATCHET_PATH}:{}: duplicate ceiling", i + 1));
                    }
                }
                "ceiling" => {
                    return Err(format!(
                        "{RATCHET_PATH}:{}: unknown ceiling key `{key}` (only `total`)",
                        i + 1
                    ));
                }
                _ => {
                    return Err(format!(
                        "{RATCHET_PATH}:{}: key outside the [waivers] section",
                        i + 1
                    ));
                }
            }
        }
        Ok(Self { pins, ceiling })
    }

    /// Renders the canonical file text for `pins`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# blot-audit waiver ratchet — `// audit: allow` comments per rule.\n\
             # Counts are exact pins: an increase means a new waiver slipped in;\n\
             # a decrease means this file is stale. Both fail `cargo xtask lint`.\n\
             # Regenerate with `cargo xtask lint --update-ratchet`.\n\n\
             [waivers]\n",
        );
        for (rule, count) in &self.pins {
            out.push_str(&format!("{rule} = {count}\n"));
        }
        if let Some(ceiling) = self.ceiling {
            out.push_str(&format!(
                "\n# Grand-total cap — never raised by --update-ratchet.\n\
                 [ceiling]\ntotal = {ceiling}\n"
            ));
        }
        out
    }

    /// Total pinned waivers across all rules.
    #[must_use]
    pub fn total(&self) -> usize {
        self.pins.values().sum()
    }
}

/// Live allow-comment counts per rule name (zero-count rules omitted).
#[must_use]
pub fn actual_counts(allows: &[Allow]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for a in allows {
        *counts.entry(a.rule.name().to_string()).or_insert(0) += 1;
    }
    counts
}

/// Compares the pinned counts against the live ledger.
#[must_use]
pub fn check(root: &Path, allows: &[Allow]) -> Vec<Violation> {
    let file = PathBuf::from(RATCHET_PATH);
    let violation = |message: String| Violation {
        rule: Rule::Ratchet,
        file: file.clone(),
        line: 1,
        message,
    };
    let src = match std::fs::read_to_string(root.join(RATCHET_PATH)) {
        Ok(s) => s,
        Err(_) => {
            return vec![violation(format!(
                "{RATCHET_PATH} is missing — run `cargo xtask lint --update-ratchet`"
            ))]
        }
    };
    let ratchet = match Ratchet::parse(&src) {
        Ok(r) => r,
        Err(e) => return vec![violation(e)],
    };
    let actual = actual_counts(allows);
    let mut out = Vec::new();
    let rules: std::collections::BTreeSet<&String> =
        ratchet.pins.keys().chain(actual.keys()).collect();
    for rule in rules {
        let pinned = ratchet.pins.get(rule).copied().unwrap_or(0);
        let live = actual.get(rule).copied().unwrap_or(0);
        if live > pinned {
            out.push(violation(format!(
                "waiver count for `{rule}` rose: {live} live allow comment(s) vs {pinned} \
                 pinned — remove the new waiver or justify updating the ratchet"
            )));
        } else if live < pinned {
            out.push(violation(format!(
                "ratchet for `{rule}` is stale: {live} live allow comment(s) vs {pinned} \
                 pinned — run `cargo xtask lint --update-ratchet` to lock in the improvement"
            )));
        }
    }
    if let Some(ceiling) = ratchet.ceiling {
        let live_total: usize = actual.values().sum();
        if live_total > ceiling {
            out.push(violation(format!(
                "total waiver count {live_total} exceeds the ceiling of {ceiling} — burn a \
                 waiver down before adding a new one"
            )));
        }
    }
    out
}

/// Rewrites the ratchet file from the live ledger; returns its path.
///
/// # Errors
///
/// Returns a message when the file cannot be written.
pub fn update(root: &Path, allows: &[Allow]) -> Result<PathBuf, String> {
    // Preserve an existing ceiling verbatim: updating the per-rule pins
    // must never loosen the grand-total cap.
    let ceiling = std::fs::read_to_string(root.join(RATCHET_PATH))
        .ok()
        .and_then(|src| Ratchet::parse(&src).ok())
        .and_then(|r| r.ceiling);
    let ratchet = Ratchet {
        pins: actual_counts(allows),
        ceiling,
    };
    let path = root.join(RATCHET_PATH);
    std::fs::write(&path, ratchet.render())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allow(rule: Rule) -> Allow {
        Allow {
            rule,
            reason: String::new(),
            file: PathBuf::from("x.rs"),
            line: 1,
            file_wide: false,
            used: 1,
        }
    }

    #[test]
    fn parse_render_roundtrip() {
        let r = Ratchet::parse("# hi\n[waivers]\nindexing = 3\npanic = 0\n").unwrap();
        assert_eq!(r.pins.get("indexing"), Some(&3));
        assert_eq!(r.total(), 3);
        let again = Ratchet::parse(&r.render()).unwrap();
        assert_eq!(again, r);
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(Ratchet::parse("indexing = 3\n").is_err()); // outside section
        assert!(Ratchet::parse("[waivers]\nindexing three\n").is_err());
        assert!(Ratchet::parse("[waivers]\na = 1\na = 2\n").is_err());
    }

    #[test]
    fn both_directions_fail() {
        let dir = std::env::temp_dir().join(format!("blot-ratchet-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("crates/xtask")).unwrap();
        std::fs::write(dir.join(RATCHET_PATH), "[waivers]\nindexing = 1\n").unwrap();
        // Exact match: clean.
        assert!(check(&dir, &[allow(Rule::Indexing)]).is_empty());
        // Rose: one violation.
        let rose = check(&dir, &[allow(Rule::Indexing), allow(Rule::Indexing)]);
        assert_eq!(rose.len(), 1);
        assert!(rose[0].message.contains("rose"));
        // Stale: one violation.
        let stale = check(&dir, &[]);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("stale"));
        // Unpinned rule appearing: rose.
        let unpinned = check(&dir, &[allow(Rule::Indexing), allow(Rule::Panic)]);
        assert_eq!(unpinned.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ceiling_caps_the_total_and_survives_update() {
        let dir = std::env::temp_dir().join(format!("blot-ratchet-ceil-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("crates/xtask")).unwrap();
        std::fs::write(
            dir.join(RATCHET_PATH),
            "[waivers]\nindexing = 2\n\n[ceiling]\ntotal = 1\n",
        )
        .unwrap();
        // Per-rule pin matches but the total exceeds the ceiling.
        let over = check(&dir, &[allow(Rule::Indexing), allow(Rule::Indexing)]);
        assert_eq!(over.len(), 1, "{over:?}");
        assert!(over[0].message.contains("ceiling"));
        // An update re-pins the rule counts but keeps the ceiling.
        update(&dir, &[allow(Rule::Panic)]).unwrap();
        let kept =
            Ratchet::parse(&std::fs::read_to_string(dir.join(RATCHET_PATH)).unwrap()).unwrap();
        assert_eq!(kept.ceiling, Some(1));
        assert_eq!(kept.pins.get("panic"), Some(&1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_writes_live_counts() {
        let dir = std::env::temp_dir().join(format!("blot-ratchet-up-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("crates/xtask")).unwrap();
        update(&dir, &[allow(Rule::Indexing)]).unwrap();
        assert!(check(&dir, &[allow(Rule::Indexing)]).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
