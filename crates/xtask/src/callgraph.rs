//! Whole-workspace call-graph analyses: rules `panic-reachability` and
//! `deadlock`.
//!
//! The per-file rules in [`crate::rules`] and [`crate::locks`] cannot
//! see across a call: a panic hidden behind a cross-crate helper, or a
//! lock acquired three frames below a held guard, escapes them
//! entirely. This module resolves every intra-workspace call into one
//! directed graph and propagates per-function facts through it:
//!
//! * does the function (transitively) reach a panic/unwrap/indexing
//!   site?
//! * which `storage::sync` locks can it (transitively) acquire?
//! * can it (transitively) perform blocking fs/backend I/O?
//! * can it (transitively) submit to `ScanExecutor::execute_all`?
//!
//! **Resolution policy (conservative over-approximation).** Calls are
//! resolved by name, filtered by the crate dependency graph (an edge
//! `core → xtask` is impossible and never created):
//!
//! * `Type::method` and `Self::method` paths match methods of that
//!   owner anywhere in the dependency closure;
//! * `self.method(…)` matches the enclosing impl's method first;
//! * other `.method(…)` calls fall back to *every* workspace method of
//!   that name (trait dispatch cannot be resolved without type
//!   information, so all candidates get an edge) — **except** names in
//!   [`PERVASIVE_METHODS`], which collide with `std` types so often
//!   that the fallback would be noise; those calls stay unresolved and
//!   are the documented under-approximation boundary (backend I/O via
//!   `.get(…)` is still caught by the receiver-based heuristic in
//!   [`crate::locks`]);
//! * `std::`/`core::`/`alloc::` paths are external and never resolve.
//!
//! **Waiver semantics.** A panic site in a non-panic-free crate can be
//! *vetted at the source* with `// audit: allow(panic-reachability,
//! reason)` on (or above) the panicking line: the site stops counting
//! for every caller at once. A frontier call can instead be waived at
//! the call site, which also stops propagation past it. `deadlock`
//! findings are waived at the reported call site. All waivers land in
//! the ledger and the `ratchet.toml` pin.

use crate::ast::{self, View};
use crate::lexer::Kind;
use crate::locks;
use crate::rules::{self, Allow, Rule, Violation};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::{Path, PathBuf};

/// One workspace source file, as collected by the lint walk.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Crate directory name (`core`, `geo`, …; `blot` for the facade).
    pub crate_name: String,
    /// Workspace-relative path (`crates/core/src/store.rs`).
    pub path: PathBuf,
    /// File contents.
    pub source: String,
}

/// Bare method names that collide with `std` collection/iterator/sync
/// APIs so often that name-based trait-dispatch fallback would drown
/// the graph in false edges. Calls to these stay unresolved unless the
/// receiver is `self` or the path names the owner explicitly.
pub const PERVASIVE_METHODS: &[&str] = &[
    "abs",
    "add",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chain",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "extend_from_slice",
    "fetch_add",
    "filter",
    "filter_map",
    "find",
    "finish",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "mul",
    "next",
    "not",
    "notify_all",
    "notify_one",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "pop",
    "pop_front",
    "position",
    "powf",
    "powi",
    "push",
    "push_back",
    "push_str",
    "read",
    "recv",
    "rem_euclid",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "splitn",
    "sqrt",
    "starts_with",
    "store",
    "sub",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "wait_timeout",
    "wait_while",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// Path roots that are external to the workspace.
const STD_ROOTS: &[&str] = &["std", "core", "alloc"];

/// One resolved call site.
#[derive(Debug, Clone)]
struct CallEdge {
    /// Called name (path or bare method name).
    callee: String,
    /// Dotted receiver path for method calls.
    receiver: Option<String>,
    /// 1-based line of the callee token.
    line: usize,
    /// Significant-token index of the callee token (for guard spans).
    pos: usize,
    /// Resolved target node indices (empty when unresolved).
    targets: Vec<usize>,
    /// The call itself is a direct I/O site per the lexical heuristic
    /// (already `lock-discipline`'s jurisdiction under a guard).
    direct_io: bool,
}

/// One guard's live range inside a function body.
#[derive(Debug, Clone)]
struct GuardSpan {
    /// Final path segment of the locked field.
    lock: String,
    /// 1-based line of the binding.
    line: usize,
    /// Indices into the node's `calls` that happen while it is live.
    calls: Vec<usize>,
    /// Direct lock acquisitions (bound or temporary) while it is live.
    inner_acquires: Vec<(String, usize)>,
}

/// Transitive facts of one function (fixpoint result). Witnesses are
/// formatted site descriptions; merging always keeps the minimum
/// string so the fixpoint is independent of iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    /// Reaches a panic/unwrap/indexing site (non-panic-free crates
    /// only).
    panic: Option<String>,
    /// Acquirable locks, each with a witness site.
    acquires: BTreeMap<String, String>,
    /// Reaches blocking fs/backend I/O.
    io: Option<String>,
    /// Reaches a `ScanExecutor::execute_all` submission.
    submit: Option<String>,
}

/// One function node.
#[derive(Debug, Clone)]
struct FnNode {
    crate_name: String,
    file: PathBuf,
    /// `crate::Owner::name` display form for messages.
    display: String,
    name: String,
    owner: Option<String>,
    calls: Vec<CallEdge>,
    guards: Vec<GuardSpan>,
    direct_panic: Option<String>,
    direct_acquires: BTreeMap<String, String>,
    direct_io: Option<String>,
    direct_submit: Option<String>,
    summary: Summary,
}

/// The resolved workspace call graph with computed transitive facts.
#[derive(Debug)]
pub struct Graph {
    nodes: Vec<FnNode>,
    panic_free: Vec<String>,
}

impl Graph {
    /// Number of function nodes in the graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Sorted `(caller, callee)` display-name pairs for every resolved
    /// edge — the unit tests' window into resolution.
    #[must_use]
    pub fn edge_names(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for n in &self.nodes {
            for c in &n.calls {
                for &t in &c.targets {
                    if let Some(tn) = self.nodes.get(t) {
                        out.push((n.display.clone(), tn.display.clone()));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Whether the function displayed as `display` transitively
    /// reaches a panic site.
    #[must_use]
    pub fn reaches_panic(&self, display: &str) -> bool {
        self.nodes
            .iter()
            .any(|n| n.display == display && n.summary.panic.is_some())
    }

    /// Locks transitively acquirable from the function displayed as
    /// `display`, sorted.
    #[must_use]
    pub fn acquires(&self, display: &str) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|n| n.display == display)
            .flat_map(|n| n.summary.acquires.keys().cloned())
            .collect()
    }
}

/// Parses the workspace crate dependency graph from the `Cargo.toml`
/// manifests: `crates/<dir>/Cargo.toml` for every crate directory plus
/// the root manifest for the `blot` facade. Only `blot-*` path
/// dependencies matter; the result maps each crate directory name to
/// the *transitive closure* of its workspace dependencies.
///
/// # Errors
///
/// Returns a message when a crate directory's manifest cannot be read.
pub fn crate_deps(root: &Path) -> Result<BTreeMap<String, BTreeSet<String>>, String> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let dir = entry.path();
        if !dir.is_dir() {
            continue;
        }
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let manifest = dir.join("Cargo.toml");
        let src = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
        direct.insert(name, manifest_deps(&src));
    }
    let facade = std::fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read root Cargo.toml: {e}"))?;
    direct.insert("blot".to_string(), manifest_deps(&facade));
    Ok(transitive_closure(&direct))
}

/// Workspace dependency directory names (`blot-core` → `core`) from
/// one manifest's `[dependencies]` / `[dev-dependencies]` sections.
fn manifest_deps(manifest: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = matches!(line, "[dependencies]" | "[dev-dependencies]");
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some((key, _)) = line.split_once('=') {
            let key = key.trim();
            if let Some(dep) = key.strip_prefix("blot-") {
                out.insert(dep.to_string());
            }
        }
    }
    out
}

fn transitive_closure(
    direct: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut closed = direct.clone();
    loop {
        let mut changed = false;
        let snapshot = closed.clone();
        for deps in closed.values_mut() {
            let mut add = BTreeSet::new();
            for d in deps.iter() {
                if let Some(dd) = snapshot.get(d) {
                    add.extend(dd.iter().cloned());
                }
            }
            for a in add {
                changed |= deps.insert(a);
            }
        }
        if !changed {
            return closed;
        }
    }
}

/// Builds the workspace call graph from parsed sources, resolves call
/// edges under the dependency graph, and runs the transitive-fact
/// fixpoint. `allows` is the live waiver ledger: panic sites vetted at
/// the source consume their `allow(panic-reachability, …)` entries
/// here.
#[must_use]
pub fn build(
    files: &[SourceFile],
    deps: &BTreeMap<String, BTreeSet<String>>,
    panic_free: &[&str],
    allows: &mut Vec<Allow>,
) -> Graph {
    let mut nodes: Vec<FnNode> = Vec::new();
    for file in files {
        let (tokens, sig) = rules::lex_significant(&file.source);
        let view = View::new(&tokens, &sig);
        let parsed = ast::parse(view);
        // A file that defines its own `fn expect` / `fn unwrap` (the
        // blot-json parser does) calls them as `self.expect(…)`; those
        // are not Option/Result panic methods.
        let local_panic_methods: BTreeSet<&str> = parsed
            .fns
            .iter()
            .filter(|f| matches!(f.name.as_str(), "expect" | "unwrap"))
            .map(|f| f.name.as_str())
            .collect();
        let is_panic_free = panic_free.contains(&file.crate_name.as_str());
        for f in &parsed.fns {
            let Some((b0, b1)) = f.body else {
                continue;
            };
            nodes.push(extract_fn(
                file,
                view,
                f,
                b0,
                b1,
                is_panic_free,
                &local_panic_methods,
                allows,
            ));
        }
    }
    resolve(&mut nodes, deps);
    fixpoint(&mut nodes, panic_free);
    Graph {
        nodes,
        panic_free: panic_free.iter().map(|s| (*s).to_string()).collect(),
    }
}

/// Runs both call-graph rule families and returns the raw violations
/// (the caller applies the site-waiver ledger).
#[must_use]
pub fn check_workspace(
    files: &[SourceFile],
    deps: &BTreeMap<String, BTreeSet<String>>,
    panic_free: &[&str],
    allows: &mut Vec<Allow>,
) -> Vec<Violation> {
    let graph = build(files, deps, panic_free, allows);
    let mut out = check_panic_reach(&graph);
    out.extend(check_deadlock(&graph));
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out.dedup_by(|a, b| {
        a.rule == b.rule && a.file == b.file && a.line == b.line && a.message == b.message
    });
    out
}

#[allow(clippy::too_many_arguments)]
fn extract_fn(
    file: &SourceFile,
    view: View<'_>,
    f: &ast::FnDecl,
    b0: usize,
    b1: usize,
    is_panic_free: bool,
    local_panic_methods: &BTreeSet<&str>,
    allows: &mut Vec<Allow>,
) -> FnNode {
    let display = match &f.owner {
        Some(o) => format!("{}::{o}::{}", file.crate_name, f.name),
        None => format!("{}::{}", file.crate_name, f.name),
    };
    let raw_calls = ast::calls_in(view, b0, b1);
    let mut calls = Vec::with_capacity(raw_calls.len());
    let mut direct_io: Option<String> = None;
    let mut direct_submit: Option<String> = None;
    for c in &raw_calls {
        let io = locks::is_io_call(c);
        if io {
            merge_min(
                &mut direct_io,
                format!("`{}` I/O at {}:{}", c.callee, file.path.display(), c.line),
            );
        }
        if c.callee == "execute_all" || c.callee.ends_with("::execute_all") {
            merge_min(
                &mut direct_submit,
                format!(
                    "`ScanExecutor::execute_all` submission at {}:{}",
                    file.path.display(),
                    c.line
                ),
            );
        }
        calls.push(CallEdge {
            callee: c.callee.clone(),
            receiver: c.receiver.clone(),
            line: c.line,
            pos: c.pos,
            targets: Vec::new(),
            direct_io: io,
        });
    }

    // Direct lock acquisitions (bound or temporary), for the lock graph
    // and the transitive-acquisition facts.
    let mut direct_acquires: BTreeMap<String, String> = BTreeMap::new();
    let mut acquire_sites: Vec<(String, usize)> = Vec::new();
    for j in b0..b1 {
        if let Some((lock, _)) = locks::acquisition_at(view, b0, j) {
            let line = view.line(j);
            acquire_sites.push((lock.clone(), line));
            let witness = format!("lock `{lock}` acquired at {}:{line}", file.path.display());
            match direct_acquires.entry(lock) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(witness);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if witness < *e.get() {
                        e.insert(witness);
                    }
                }
            }
        }
    }

    // Guard spans: which calls and which further acquisitions happen
    // while each bound guard is live.
    let depths = locks::brace_depths(view, b0, b1);
    let mut guards = Vec::new();
    for g in locks::collect_guards(view, b0, b1, &depths) {
        let call_idx: Vec<usize> = calls
            .iter()
            .enumerate()
            .filter(|(_, c)| c.pos >= g.from && c.pos < g.until)
            .map(|(i, _)| i)
            .collect();
        let inner_acquires: Vec<(String, usize)> = (g.from..g.until)
            .filter_map(|j| locks::acquisition_at(view, b0, j).map(|(l, _)| (l, view.line(j))))
            .collect();
        guards.push(GuardSpan {
            lock: g.lock,
            line: g.line,
            calls: call_idx,
            inner_acquires,
        });
    }

    // Panic/unwrap/indexing sites. Panic-free crates are the lexical
    // `panic` rule's jurisdiction (their sites are either violations
    // there or carry `allow(panic, …)` vets), so only other crates
    // seed reachability.
    let direct_panic = if is_panic_free {
        None
    } else {
        direct_panic_site(file, view, b0, b1, local_panic_methods, allows)
    };
    let _ = acquire_sites; // folded into direct_acquires above

    FnNode {
        crate_name: file.crate_name.clone(),
        file: file.path.clone(),
        display,
        name: f.name.clone(),
        owner: f.owner.clone(),
        calls,
        guards,
        direct_panic,
        direct_acquires,
        direct_io,
        direct_submit,
        summary: Summary::default(),
    }
}

/// The minimum unvetted panic-site description in `[b0, b1)`, if any.
/// Vetted sites consume their `allow(panic-reachability)` ledger entry.
fn direct_panic_site(
    file: &SourceFile,
    view: View<'_>,
    b0: usize,
    b1: usize,
    local_panic_methods: &BTreeSet<&str>,
    allows: &mut Vec<Allow>,
) -> Option<String> {
    let mut out: Option<String> = None;
    let mut site = |desc: String, line: usize, allows: &mut Vec<Allow>| {
        if !vetted(allows, &file.path, line) {
            merge_min(&mut out, desc);
        }
    };
    for j in b0..b1 {
        // `.unwrap()` / `.expect(`
        if view.text(j) == Some(".") {
            if let (Some(m), Some("(")) = (view.text(j + 1), view.text(j + 2)) {
                if matches!(m, "unwrap" | "expect") {
                    let own_method = local_panic_methods.contains(m)
                        && j > b0
                        && view.text(j - 1) == Some("self");
                    if !own_method {
                        let line = view.line(j + 1);
                        site(
                            format!("`.{m}(…)` at {}:{line}", file.path.display()),
                            line,
                            allows,
                        );
                    }
                }
            }
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        if let Some(m) = view.text(j) {
            if matches!(m, "panic" | "unreachable" | "todo" | "unimplemented")
                && view.text(j + 1) == Some("!")
            {
                let line = view.line(j);
                site(
                    format!("`{m}!` at {}:{line}", file.path.display()),
                    line,
                    allows,
                );
            }
        }
        // `expr[…]` indexing
        if view.text(j) == Some("[") && j > b0 {
            let is_index_base = match view.kind(j - 1) {
                Some(Kind::Ident) => {
                    let prev = view.text(j - 1).unwrap_or_default();
                    !rules::NON_VALUE_KEYWORDS.contains(&prev) && !prev.starts_with('\'')
                }
                Some(Kind::Punct) => matches!(view.text(j - 1), Some(")" | "]")),
                _ => false,
            };
            if is_index_base {
                let line = view.line(j);
                site(
                    format!("`[…]` indexing at {}:{line}", file.path.display()),
                    line,
                    allows,
                );
            }
        }
    }
    out
}

/// Marks a matching source-vet allow used, if present.
fn vetted(allows: &mut [Allow], file: &Path, line: usize) -> bool {
    if let Some(a) = allows.iter_mut().find(|a| {
        a.rule == Rule::PanicReach
            && a.file == file
            && (a.file_wide || a.line == line || a.line + 1 == line)
    }) {
        a.used += 1;
        return true;
    }
    false
}

pub(crate) fn merge_min(dst: &mut Option<String>, src: String) {
    match dst {
        Some(cur) if *cur <= src => {}
        _ => *dst = Some(src),
    }
}

/// Name-based call-target index, shared with [`crate::dataflow`] so
/// both workspace analyses resolve calls under the *same* policy:
/// owner-qualified paths by `(owner, name)`, `self.m()` into the own
/// impl first, pervasive method names never by fallback, `std` paths
/// never, and every candidate filtered by the crate dependency graph.
pub(crate) struct CallIndex {
    free_by_name: HashMap<String, Vec<usize>>,
    methods_by_name: HashMap<String, Vec<usize>>,
    by_owner: HashMap<(String, String), Vec<usize>>,
    crates: Vec<String>,
    owners: Vec<Option<String>>,
}

impl CallIndex {
    /// Builds the index from `(crate_name, owner, fn_name)` triples,
    /// indexed by position.
    pub(crate) fn new<'a>(
        items: impl Iterator<Item = (&'a str, Option<&'a str>, &'a str)>,
    ) -> Self {
        let mut index = Self {
            free_by_name: HashMap::new(),
            methods_by_name: HashMap::new(),
            by_owner: HashMap::new(),
            crates: Vec::new(),
            owners: Vec::new(),
        };
        for (i, (krate, owner, name)) in items.enumerate() {
            match owner {
                Some(o) => {
                    index
                        .methods_by_name
                        .entry(name.to_string())
                        .or_default()
                        .push(i);
                    index
                        .by_owner
                        .entry((o.to_string(), name.to_string()))
                        .or_default()
                        .push(i);
                }
                None => index
                    .free_by_name
                    .entry(name.to_string())
                    .or_default()
                    .push(i),
            }
            index.crates.push(krate.to_string());
            index.owners.push(owner.map(str::to_string));
        }
        index
    }

    /// Candidate targets of one call from function `caller`, filtered
    /// by the dependency graph.
    pub(crate) fn resolve(
        &self,
        caller: usize,
        callee: &str,
        receiver: Option<&str>,
        deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> Vec<usize> {
        let empty: Vec<usize> = Vec::new();
        let candidates: &Vec<usize> = if let Some((path, last)) = callee.rsplit_once("::") {
            let root = path.split("::").next().unwrap_or_default();
            if STD_ROOTS.contains(&root) {
                &empty
            } else {
                let qual = path.rsplit("::").next().unwrap_or_default();
                if qual == "Self" {
                    match self.owners.get(caller).and_then(Option::as_ref) {
                        Some(o) => self
                            .by_owner
                            .get(&(o.clone(), last.to_string()))
                            .unwrap_or(&empty),
                        None => &empty,
                    }
                } else if qual.chars().next().is_some_and(char::is_uppercase) {
                    self.by_owner
                        .get(&(qual.to_string(), last.to_string()))
                        .unwrap_or(&empty)
                } else {
                    self.free_by_name.get(last).unwrap_or(&empty)
                }
            }
        } else if receiver.is_some() {
            let own = self
                .owners
                .get(caller)
                .and_then(Option::as_ref)
                .and_then(|o| {
                    (receiver == Some("self"))
                        .then(|| self.by_owner.get(&(o.clone(), callee.to_string())))
                        .flatten()
                });
            match own {
                Some(ids) if !ids.is_empty() => ids,
                _ if PERVASIVE_METHODS.contains(&callee) => &empty,
                _ => self.methods_by_name.get(callee).unwrap_or(&empty),
            }
        } else {
            self.free_by_name.get(callee).unwrap_or(&empty)
        };
        let caller_crate = &self.crates[caller];
        let caller_deps = deps.get(caller_crate);
        candidates
            .iter()
            .copied()
            .filter(|&t| {
                self.crates[t] == *caller_crate
                    || caller_deps.is_some_and(|d| d.contains(&self.crates[t]))
            })
            .collect()
    }
}

/// Resolves every call to its candidate target nodes, filtered by the
/// crate dependency graph.
fn resolve(nodes: &mut [FnNode], deps: &BTreeMap<String, BTreeSet<String>>) {
    let index = CallIndex::new(
        nodes
            .iter()
            .map(|n| (n.crate_name.as_str(), n.owner.as_deref(), n.name.as_str())),
    );
    for (i, node) in nodes.iter_mut().enumerate() {
        for call in &mut node.calls {
            call.targets = index.resolve(i, &call.callee, call.receiver.as_deref(), deps);
        }
    }
}

/// Jacobi fixpoint over the transitive facts. Witness strings merge by
/// minimum, so the result is independent of node order.
fn fixpoint(nodes: &mut [FnNode], panic_free: &[&str]) {
    loop {
        let mut changed = false;
        let fresh: Vec<Summary> = nodes
            .iter()
            .map(|n| {
                let is_pf = panic_free.contains(&n.crate_name.as_str());
                let mut s = Summary {
                    panic: if is_pf { None } else { n.direct_panic.clone() },
                    acquires: n.direct_acquires.clone(),
                    io: n.direct_io.clone(),
                    submit: n.direct_submit.clone(),
                };
                for c in &n.calls {
                    for &t in &c.targets {
                        let Some(tn) = nodes.get(t) else { continue };
                        if !is_pf && !panic_free.contains(&tn.crate_name.as_str()) {
                            if let Some(p) = &tn.summary.panic {
                                merge_min(&mut s.panic, p.clone());
                            }
                        }
                        for (lock, w) in &tn.summary.acquires {
                            match s.acquires.get(lock) {
                                Some(cur) if cur <= w => {}
                                _ => {
                                    s.acquires.insert(lock.clone(), w.clone());
                                }
                            }
                        }
                        if let Some(w) = &tn.summary.io {
                            merge_min(&mut s.io, w.clone());
                        }
                        if let Some(w) = &tn.summary.submit {
                            merge_min(&mut s.submit, w.clone());
                        }
                    }
                }
                s
            })
            .collect();
        for (n, s) in nodes.iter_mut().zip(fresh) {
            if n.summary != s {
                n.summary = s;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Rule `panic-reachability`: report every *frontier* call — a call in
/// a panic-free crate whose target lives outside the panic-free set
/// and can transitively reach a panic site. Reporting the frontier
/// (not every transitive caller) yields one finding per escape hatch,
/// and a waiver there cuts propagation for every caller above it.
fn check_panic_reach(graph: &Graph) -> Vec<Violation> {
    let mut out = Vec::new();
    for n in &graph.nodes {
        if !graph.panic_free.contains(&n.crate_name) {
            continue;
        }
        for c in &n.calls {
            for &t in &c.targets {
                let Some(tn) = graph.nodes.get(t) else {
                    continue;
                };
                if graph.panic_free.contains(&tn.crate_name) {
                    continue;
                }
                if let Some(site) = &tn.summary.panic {
                    out.push(Violation {
                        rule: Rule::PanicReach,
                        file: n.file.clone(),
                        line: c.line,
                        message: format!(
                            "`{}` calls `{}` which can reach {site} — handle the failure \
                             or vet the site with `audit: allow(panic-reachability, …)`",
                            n.display, tn.display
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Rule `deadlock`: transitive hazards while a guard is held, plus
/// cycles in the workspace lock-acquisition graph.
fn check_deadlock(graph: &Graph) -> Vec<Violation> {
    let mut out = Vec::new();
    // Edges of the lock graph: held → acquired, with one witness each.
    let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
    let edge = |held: &str,
                acquired: &str,
                witness: String,
                edges: &mut BTreeMap<(String, String), String>| {
        let key = (held.to_string(), acquired.to_string());
        match edges.get(&key) {
            Some(cur) if *cur <= witness => {}
            _ => {
                edges.insert(key, witness);
            }
        }
    };
    for n in &graph.nodes {
        for g in &n.guards {
            for (l2, line) in &g.inner_acquires {
                let witness = format!(
                    "`{}` acquires `{l2}` at {}:{line} while `{}` is held",
                    n.display,
                    n.file.display(),
                    g.lock
                );
                if *l2 == g.lock {
                    out.push(Violation {
                        rule: Rule::Deadlock,
                        file: n.file.clone(),
                        line: *line,
                        message: format!(
                            "lock `{}` (guard bound on line {}) re-acquired in the same \
                             scope — self-deadlock",
                            g.lock, g.line
                        ),
                    });
                } else {
                    edge(&g.lock, l2, witness, &mut edges);
                }
            }
            for &ci in &g.calls {
                let Some(c) = n.calls.get(ci) else { continue };
                let direct_submit =
                    c.callee == "execute_all" || c.callee.ends_with("::execute_all");
                if direct_submit {
                    out.push(Violation {
                        rule: Rule::Deadlock,
                        file: n.file.clone(),
                        line: c.line,
                        message: format!(
                            "`ScanExecutor::execute_all` submitted while guard `{}` \
                             (bound on line {}) is held — the batch can need this \
                             thread's lock to finish",
                            g.lock, g.line
                        ),
                    });
                }
                for &t in &c.targets {
                    let Some(tn) = graph.nodes.get(t) else {
                        continue;
                    };
                    for (l2, w) in &tn.summary.acquires {
                        if *l2 == g.lock {
                            out.push(Violation {
                                rule: Rule::Deadlock,
                                file: n.file.clone(),
                                line: c.line,
                                message: format!(
                                    "calling `{}` while guard `{}` (bound on line {}) is \
                                     held re-acquires `{}` ({w})",
                                    tn.display, g.lock, g.line, g.lock
                                ),
                            });
                        } else {
                            if let (Some(ra), Some(rh)) = (locks::rank(l2), locks::rank(&g.lock)) {
                                if ra < rh {
                                    out.push(Violation {
                                        rule: Rule::Deadlock,
                                        file: n.file.clone(),
                                        line: c.line,
                                        message: format!(
                                            "calling `{}` while guard `{}` is held acquires \
                                             `{l2}` against the declared order {:?} ({w})",
                                            tn.display,
                                            g.lock,
                                            locks::LOCK_ORDER
                                        ),
                                    });
                                }
                            }
                            let witness = format!(
                                "`{}` calls `{}` at {}:{} which {w}",
                                n.display,
                                tn.display,
                                n.file.display(),
                                c.line
                            );
                            edge(&g.lock, l2, witness, &mut edges);
                        }
                    }
                    if !c.direct_io {
                        if let Some(w) = &tn.summary.io {
                            out.push(Violation {
                                rule: Rule::Deadlock,
                                file: n.file.clone(),
                                line: c.line,
                                message: format!(
                                    "calling `{}` while guard `{}` (bound on line {}) is \
                                     held reaches blocking I/O ({w})",
                                    tn.display, g.lock, g.line
                                ),
                            });
                        }
                    }
                    if !direct_submit {
                        if let Some(w) = &tn.summary.submit {
                            out.push(Violation {
                                rule: Rule::Deadlock,
                                file: n.file.clone(),
                                line: c.line,
                                message: format!(
                                    "calling `{}` while guard `{}` (bound on line {}) is \
                                     held reaches {w}",
                                    tn.display, g.lock, g.line
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    out.extend(lock_cycles(&edges));
    out
}

/// Cycle detection over the lock graph. Mutually-reachable lock sets
/// (size ≥ 2) are reported once each, at the witness of their
/// lexicographically first internal edge.
fn lock_cycles(edges: &BTreeMap<(String, String), String>) -> Vec<Violation> {
    let locks: BTreeSet<&str> = edges
        .keys()
        .flat_map(|(a, b)| [a.as_str(), b.as_str()])
        .collect();
    // Transitive closure by iteration (the graph has a handful of
    // nodes).
    let mut reach: BTreeMap<&str, BTreeSet<&str>> = locks
        .iter()
        .map(|&l| {
            (
                l,
                edges
                    .keys()
                    .filter(|(a, _)| a == l)
                    .map(|(_, b)| b.as_str())
                    .collect(),
            )
        })
        .collect();
    loop {
        let mut changed = false;
        let snapshot = reach.clone();
        for set in reach.values_mut() {
            let mut add = BTreeSet::new();
            for &m in set.iter() {
                if let Some(ms) = snapshot.get(m) {
                    add.extend(ms.iter().copied());
                }
            }
            for a in add {
                changed |= set.insert(a);
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<Vec<&str>> = BTreeSet::new();
    for &l in &locks {
        let mutual: Vec<&str> = locks
            .iter()
            .copied()
            .filter(|&m| {
                m != l
                    && reach.get(l).is_some_and(|s| s.contains(m))
                    && reach.get(m).is_some_and(|s| s.contains(l))
            })
            .collect();
        if mutual.is_empty() {
            continue;
        }
        let mut members: Vec<&str> = mutual;
        members.push(l);
        members.sort_unstable();
        if !seen.insert(members.clone()) {
            continue;
        }
        // Witness: the first edge between two members.
        let witness = edges
            .iter()
            .find(|((a, b), _)| members.contains(&a.as_str()) && members.contains(&b.as_str()))
            .map(|(_, w)| w.as_str())
            .unwrap_or_default();
        out.push(Violation {
            rule: Rule::Deadlock,
            file: PathBuf::from("workspace"),
            line: 1,
            message: format!(
                "lock-acquisition cycle between {}: {witness}",
                members
                    .iter()
                    .map(|m| format!("`{m}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, name: &str, source: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_string(),
            path: PathBuf::from(format!("crates/{crate_name}/src/{name}")),
            source: source.to_string(),
        }
    }

    fn deps(pairs: &[(&str, &[&str])]) -> BTreeMap<String, BTreeSet<String>> {
        pairs
            .iter()
            .map(|(c, ds)| {
                (
                    (*c).to_string(),
                    ds.iter().map(|d| (*d).to_string()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn cross_crate_edges_resolve_and_respect_the_dep_graph() {
        let files = [
            file(
                "core",
                "a.rs",
                "pub fn caller() { helper(); blot_geo::helper(); }\n",
            ),
            file("geo", "b.rs", "pub fn helper() { }\n"),
            file("xtask", "c.rs", "pub fn helper() { }\n"),
        ];
        let d = deps(&[("core", &["geo"]), ("geo", &[]), ("xtask", &[])]);
        let mut allows = Vec::new();
        let g = build(&files, &d, &["core"], &mut allows);
        let edges = g.edge_names();
        assert!(
            edges.contains(&("core::caller".to_string(), "geo::helper".to_string())),
            "edges: {edges:?}"
        );
        // `xtask` is not in core's dependency closure: no edge.
        assert!(
            !edges.iter().any(|(_, callee)| callee == "xtask::helper"),
            "edges: {edges:?}"
        );
    }

    #[test]
    fn method_dispatch_falls_back_to_every_owner_conservatively() {
        let files = [file(
            "core",
            "m.rs",
            "struct A; struct B;\n\
             impl A { fn scan_units(&self) {} }\n\
             impl B { fn scan_units(&self) {} }\n\
             pub fn driver(x: &A) { x.scan_units(); }\n",
        )];
        let d = deps(&[("core", &[])]);
        let mut allows = Vec::new();
        let g = build(&files, &d, &[], &mut allows);
        let edges = g.edge_names();
        assert!(
            edges.contains(&(
                "core::driver".to_string(),
                "core::A::scan_units".to_string()
            )) && edges.contains(&(
                "core::driver".to_string(),
                "core::B::scan_units".to_string()
            )),
            "trait-dispatch fallback must over-approximate: {edges:?}"
        );
    }

    #[test]
    fn pervasive_method_names_stay_unresolved() {
        let files = [file(
            "core",
            "p.rs",
            "struct Backend;\n\
             impl Backend { fn get(&self) { std::fs::read(\"x\"); } }\n\
             pub fn driver(m: &std::collections::HashMap<u32, u32>) { m.get(&1); }\n",
        )];
        let d = deps(&[("core", &[])]);
        let mut allows = Vec::new();
        let g = build(&files, &d, &[], &mut allows);
        assert!(
            g.edge_names().is_empty(),
            "`.get(…)` must not resolve by bare name: {:?}",
            g.edge_names()
        );
    }

    #[test]
    fn self_receiver_resolves_to_the_enclosing_impl_first() {
        let files = [file(
            "core",
            "s.rs",
            "struct S;\n\
             impl S { fn outer(&self) { self.helper_step(); } fn helper_step(&self) {} }\n",
        )];
        let d = deps(&[("core", &[])]);
        let mut allows = Vec::new();
        let g = build(&files, &d, &[], &mut allows);
        assert_eq!(
            g.edge_names(),
            vec![(
                "core::S::outer".to_string(),
                "core::S::helper_step".to_string()
            )]
        );
    }

    #[test]
    fn panic_facts_propagate_transitively_and_vets_cut_them() {
        let src_geo = "pub fn outer_helper() { middle_helper(); }\n\
                       fn middle_helper() { deepest(); }\n\
                       fn deepest() { panic!(\"boom\"); }\n\
                       pub fn vetted_helper() {\n\
                           // audit: allow(panic-reachability, unreachable by contract)\n\
                           panic!(\"never\");\n\
                       }\n";
        let files = [file("geo", "g.rs", src_geo)];
        let d = deps(&[("geo", &[])]);
        let mut allows = crate::rules::audit_file(
            Path::new("crates/geo/src/g.rs"),
            src_geo,
            crate::rules::RuleSet::default(),
        )
        .allows;
        let g = build(&files, &d, &[], &mut allows);
        assert!(g.reaches_panic("geo::outer_helper"));
        assert!(g.reaches_panic("geo::middle_helper"));
        assert!(!g.reaches_panic("geo::vetted_helper"));
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].used, 1, "the vet must be ledgered as used");
    }

    #[test]
    fn lock_facts_propagate_through_calls() {
        let files = [file(
            "storage",
            "l.rs",
            "fn low_level() { self_units().units.write().insert(1); }\n\
             pub fn high_level() { low_level(); }\n",
        )];
        let d = deps(&[("storage", &[])]);
        let mut allows = Vec::new();
        let g = build(&files, &d, &[], &mut allows);
        assert_eq!(g.acquires("storage::high_level"), vec!["units".to_string()]);
    }

    #[test]
    fn graph_construction_is_deterministic_across_file_orderings() {
        let a = file(
            "core",
            "a.rs",
            "pub fn f1() { g1(); }\npub fn g1() { blot_geo::boom(); }\n",
        );
        let b = file("geo", "b.rs", "pub fn boom() { panic!(\"x\"); }\n");
        let c = file(
            "storage",
            "c.rs",
            "pub fn hold() { let g = self_log().log.lock(); g1(); drop(g); }\n",
        );
        let d = deps(&[
            ("core", &["geo"]),
            ("geo", &[]),
            ("storage", &["core", "geo"]),
        ]);
        let orders: Vec<Vec<SourceFile>> = vec![
            vec![a.clone(), b.clone(), c.clone()],
            vec![c.clone(), a.clone(), b.clone()],
            vec![b, c, a],
        ];
        let mut reports = Vec::new();
        for files in orders {
            let mut allows = Vec::new();
            let v = check_workspace(&files, &d, &["core"], &mut allows);
            reports.push(
                v.iter()
                    .map(|x| format!("{x}"))
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
    }
}
