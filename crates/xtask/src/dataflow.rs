//! Summary-based interprocedural dataflow: the v4 analysis layer.
//!
//! Three rule families share one engine:
//!
//! * **`unit-flow`** — infers a unit family (ms / sec / bytes /
//!   partitions / records / ratio) for locals, params and returns from
//!   the `blot_core::units` newtype constructors, the suffix heuristics
//!   in [`crate::units`] and a seed table of known std APIs
//!   (`as_secs_f64` → seconds, …), propagates it through `let`
//!   bindings, `.get()`/`.0` escapes and call summaries, and flags
//!   cross-family additive/comparison arithmetic and re-wrapping of an
//!   escaped value into a different family — workspace-wide.
//! * **`result-discipline`** — flags silently discarded fallible calls
//!   (`let _ = …;` and bare `expr;` statements) in panic-free crates,
//!   where fallibility comes from the resolved callee's signature or a
//!   seed table of std socket/fs APIs, and cross-checks every wire
//!   `ErrorCode`'s retryability implied by `client::disposition()`
//!   against the server's retry-after emission sites.
//! * **`cast-range`** — forward constant/interval propagation so each
//!   narrowing `as` cast in the codec/wire bit-level files is either
//!   *proved* in range (counted as a proof, with the computed interval
//!   as witness) or flagged for a checked conversion.
//!
//! **Engine shape.** Extraction lifts each file into [`FileFacts`]:
//! flat, order-independent records per function (locals with abstract
//! initialisers, call sites, arithmetic sites, discard sites, cast
//! sites, error-code emissions). Calls resolve through the same
//! [`crate::callgraph::CallIndex`] policy as the panic-reachability
//! analysis. A Jacobi fixpoint then computes one [`Summary`] per
//! function — return-unit and return-interval — reading only the
//! previous round's snapshot, so the result cannot depend on node
//! order; the property test in `tests/dataflow_props.rs` pins this.
//!
//! **Lattices and termination.** Units live in the height-2 lattice
//! `Bot < Fam(f) < Top` (conflicting families join to `Top` =
//! unknown). Intervals live in `Bot < [lo, hi] < Top` with hull joins;
//! because hulls can widen forever through cycles, any interval still
//! changing after [`WIDEN_ROUND`] rounds is widened straight to `Top`,
//! after which every chain is finite. Checks run only after the
//! fixpoint and treat `Bot`/`Top` as "unknown" — the engine stays
//! conservative: it flags only when both sides of a fact are known.
//!
//! **Extraction cache.** Extraction (lex + parse + fact collection) is
//! the expensive stage and depends only on one file's bytes, so
//! [`FileFacts`] serialise to `target/xtask-cache/` keyed by an
//! FNV-1a content hash; warm runs skip re-parsing unchanged files.
//! The fixpoint is cross-file and always re-runs.

use crate::ast::{self, View};
use crate::callgraph::{self, SourceFile};
use crate::lexer::Kind;
use crate::rules::{self, Rule, Violation};
use crate::units::{self, Family};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::{Path, PathBuf};

/// Interval fixpoint rounds before a still-changing interval widens to
/// `Top`. Units need no widening (height-2 lattice).
const WIDEN_ROUND: usize = 8;

/// Cache format version: bump on any change to [`FileFacts`] or its
/// serialisation, which invalidates every cached entry at once.
const CACHE_VERSION: &str = "v2";

/// Std method names returning `Result` whose silent discard is a
/// `result-discipline` violation when the call does not resolve into
/// the workspace. Socket configuration and stream I/O: a failure here
/// means timeouts silently stop applying or bytes silently vanish.
const FALLIBLE_METHOD_SEEDS: &[&str] = &[
    "flush",
    "read",
    "read_exact",
    "read_to_end",
    "send",
    "set_nonblocking",
    "set_read_timeout",
    "set_write_timeout",
    "write",
    "write_all",
];

/// Best-effort calls whose failure has no actionable recovery;
/// discarding their `Result` is the documented idiom and never flagged
/// (`set_nodelay` only loses a latency optimisation, `shutdown` runs
/// on an already-dying connection).
const BEST_EFFORT_METHODS: &[&str] = &["set_nodelay", "shutdown"];

/// Free-call path prefixes that are always fallible (`io::Result`).
const FALLIBLE_PATH_PREFIXES: &[&str] = &["std::fs::", "fs::"];

/// Known std APIs with a fixed unit family for the value they return.
const API_UNIT_SEEDS: &[(&str, Family)] = &[
    ("as_millis", Family::Millis),
    ("as_secs", Family::Seconds),
    ("as_secs_f64", Family::Seconds),
    ("subsec_millis", Family::Millis),
];

/// Cast targets the `cast-range` rule examines (same set the old
/// lexical `lossy-cast` rule used).
const NARROW_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize", "f32",
];

// ---------------------------------------------------------------------
// Extracted facts (cacheable, per file).

/// Abstract initialiser of one `let` binding.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Init {
    /// `Millis::new(arg)` — a unit newtype constructor (also used for
    /// `let x: Millis = …` type ascriptions, with no argument).
    Ctor(Family, Option<String>),
    /// `path.get()` / `path.0` — the raw value escapes its newtype but
    /// keeps the origin family.
    Escape(String),
    /// A call, by index into [`FnFacts::calls`].
    Call(usize),
    /// An alias of another simple path.
    Alias(String),
    /// A value with a known constant interval (integer literal,
    /// `x & MASK`, or an integer-typed source).
    Range(i128, i128),
    /// A chain ending in a seeded std API with a known unit family.
    Api(Family),
    Unknown,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Local {
    name: String,
    init: Init,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct CallSite {
    /// `::`-joined path for free calls, bare name for method calls.
    callee: String,
    /// Dotted receiver path for method calls on simple receivers.
    receiver: Option<String>,
    line: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ArithSite {
    /// `+`, `-`, `+=`, `-=`, `<`, `>`, `<=`, `>=`.
    op: String,
    left: String,
    right: String,
    line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiscardKind {
    /// `let _ = call(…);`
    LetUnderscore,
    /// A bare `call(…);` expression statement.
    BareStatement,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct DiscardSite {
    call: usize,
    kind: DiscardKind,
    line: usize,
}

/// Source shape of a narrowing `as` cast.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CastSrc {
    Path(String),
    Call(usize),
    Lit(i128),
    /// `(x & MASK) as T` — in `[0, MASK]` regardless of `x`.
    Masked(i128),
    /// `self as T` inside an enum's impl block.
    SelfEnum,
    Complex,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct CastSite {
    target: String,
    src: CastSrc,
    line: usize,
}

/// Retry-after argument shape at an `ErrorCode` emission site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hint {
    Zero,
    NonZero,
    /// A non-literal expression (computed hint).
    Dynamic,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Emission {
    variant: String,
    hint: Hint,
    line: usize,
}

/// Everything the fixpoint and the checks need from one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct FnFacts {
    name: String,
    owner: Option<String>,
    line: usize,
    /// The signature returns `Result<…>` or `Option<…>`.
    fallible: bool,
    /// Head identifier of the return type (the payload head for
    /// `Result`/`Option`); empty when the fn returns nothing.
    ret_head: String,
    /// `true` when at least one return path is structurally opaque.
    ret_opaque: bool,
    params: Vec<(String, String)>,
    locals: Vec<Local>,
    calls: Vec<CallSite>,
    /// Newtype constructor applications: `(family, argument, line)`.
    ctors: Vec<(Family, Option<String>, usize)>,
    /// Return sources (tail expression and `return` statements),
    /// classified like `let` initialisers.
    rets: Vec<Init>,
    arith: Vec<ArithSite>,
    discards: Vec<DiscardSite>,
    casts: Vec<CastSite>,
    emissions: Vec<Emission>,
    /// `ErrorCode` variant → disposition, from `fn disposition` arms.
    dispositions: Vec<(String, String)>,
}

/// Cacheable extraction result for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileFacts {
    crate_name: String,
    path: PathBuf,
    /// `(enum name, max discriminant)` for `self as uN` proofs.
    enums: Vec<(String, i128)>,
    fns: Vec<FnFacts>,
}

// ---------------------------------------------------------------------
// Lattices and summaries.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitLat {
    Bot,
    Fam(Family),
    Top,
}

impl UnitLat {
    fn join(self, other: Self) -> Self {
        match (self, other) {
            (UnitLat::Bot, x) | (x, UnitLat::Bot) => x,
            (UnitLat::Fam(a), UnitLat::Fam(b)) if a == b => self,
            _ => UnitLat::Top,
        }
    }

    fn known(self) -> Option<Family> {
        match self {
            UnitLat::Fam(f) => Some(f),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntLat {
    Bot,
    Range(i128, i128),
    Top,
}

impl IntLat {
    fn join(self, other: Self) -> Self {
        match (self, other) {
            (IntLat::Bot, x) | (x, IntLat::Bot) => x,
            (IntLat::Range(a, b), IntLat::Range(c, d)) => IntLat::Range(a.min(c), b.max(d)),
            _ => IntLat::Top,
        }
    }
}

/// Per-function fixpoint state: facts about the returned value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Summary {
    unit: UnitLat,
    range: IntLat,
}

const BOTTOM: Summary = Summary {
    unit: UnitLat::Bot,
    range: IntLat::Bot,
};

/// Value range of an integer type read as a *source* (what values can
/// it hold): pointer-width types use the widest supported width.
fn source_range(ty: &str) -> Option<(i128, i128)> {
    Some(match ty {
        "u8" => (0, i128::from(u8::MAX)),
        "u16" => (0, i128::from(u16::MAX)),
        "u32" => (0, i128::from(u32::MAX)),
        "u64" | "usize" => (0, i128::from(u64::MAX)),
        "i8" => (i128::from(i8::MIN), i128::from(i8::MAX)),
        "i16" => (i128::from(i16::MIN), i128::from(i16::MAX)),
        "i32" => (i128::from(i32::MIN), i128::from(i32::MAX)),
        "i64" | "isize" => (i128::from(i64::MIN), i128::from(i64::MAX)),
        _ => return None,
    })
}

/// Value range of a cast *target* (what must the value fit into):
/// pointer-width types use the narrowest supported width (32-bit), so
/// a proof holds on every target the workspace builds for. `f32` is
/// bounded by its exact-integer range.
fn target_range(ty: &str) -> Option<(i128, i128)> {
    Some(match ty {
        "u8" => (0, i128::from(u8::MAX)),
        "u16" => (0, i128::from(u16::MAX)),
        "u32" | "usize" => (0, i128::from(u32::MAX)),
        "i8" => (i128::from(i8::MIN), i128::from(i8::MAX)),
        "i16" => (i128::from(i16::MIN), i128::from(i16::MAX)),
        "i32" | "isize" => (i128::from(i32::MIN), i128::from(i32::MAX)),
        "f32" => (-(1 << 24), 1 << 24),
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Public entry points.

/// Result of the dataflow pass: raw violations (the caller applies the
/// allow ledger) plus run statistics.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Raw findings, sorted by `(file, line, message)` and deduped.
    pub violations: Vec<Violation>,
    /// Run statistics for the report footer and the JSON output.
    pub stats: Stats,
}

/// Statistics of one dataflow run.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Functions summarised across the workspace.
    pub functions: usize,
    /// Files whose extraction came from the content-hash cache.
    pub cache_hits: usize,
    /// Files that were (re-)extracted this run.
    pub cache_misses: usize,
    /// Narrowing casts proved in range (each with an interval witness).
    pub cast_proofs: usize,
    /// Milliseconds spent in the extraction stage.
    pub extract_ms: u128,
    /// Fixpoint rounds until convergence.
    pub rounds: usize,
}

/// Runs the three dataflow rule families over the workspace.
///
/// `cast_files` scopes the `cast-range` rule to `(crate, file-name)`
/// pairs; `panic_free` scopes `result-discipline`. `cache_dir`, when
/// given, holds the extraction cache.
#[must_use]
pub fn check_workspace(
    files: &[SourceFile],
    deps: &BTreeMap<String, BTreeSet<String>>,
    panic_free: &[&str],
    cast_files: &[(&str, &str)],
    cache_dir: Option<&Path>,
) -> Analysis {
    check_workspace_seeded(files, deps, panic_free, cast_files, cache_dir, 0)
}

/// [`check_workspace`] with an explicit worklist-order seed: the
/// fixpoint evaluates nodes in a seed-permuted order each round. Any
/// seed must produce identical results (the Jacobi iteration reads
/// only the previous round's snapshot); the property tests call this
/// with arbitrary seeds to prove it.
#[must_use]
pub fn check_workspace_seeded(
    files: &[SourceFile],
    deps: &BTreeMap<String, BTreeSet<String>>,
    panic_free: &[&str],
    cast_files: &[(&str, &str)],
    cache_dir: Option<&Path>,
    seed: u64,
) -> Analysis {
    let started = std::time::Instant::now();
    let mut stats = Stats::default();
    let mut facts: Vec<FileFacts> = Vec::with_capacity(files.len());
    for sf in files {
        match cached_extract(sf, cache_dir) {
            (f, true) => {
                stats.cache_hits += 1;
                facts.push(f);
            }
            (f, false) => {
                stats.cache_misses += 1;
                facts.push(f);
            }
        }
    }
    stats.extract_ms = started.elapsed().as_millis();

    // Flatten to one node list; resolve calls under the shared policy.
    let mut nodes: Vec<(usize, usize)> = Vec::new();
    for (fi, f) in facts.iter().enumerate() {
        for ki in 0..f.fns.len() {
            nodes.push((fi, ki));
        }
    }
    stats.functions = nodes.len();
    let index = callgraph::CallIndex::new(nodes.iter().map(|&(fi, ki)| {
        let f = &facts[fi].fns[ki];
        (
            facts[fi].crate_name.as_str(),
            f.owner.as_deref(),
            f.name.as_str(),
        )
    }));
    let targets: Vec<Vec<Vec<usize>>> = nodes
        .iter()
        .enumerate()
        .map(|(i, &(fi, ki))| {
            facts[fi].fns[ki]
                .calls
                .iter()
                .map(|c| index.resolve(i, &c.callee, c.receiver.as_deref(), deps))
                .collect()
        })
        .collect();

    let summaries = fixpoint(&facts, &nodes, &targets, seed, &mut stats.rounds);

    let mut violations = Vec::new();
    for (i, &(fi, ki)) in nodes.iter().enumerate() {
        let file = &facts[fi];
        let f = &file.fns[ki];
        let env = build_env(f, &targets[i], &summaries);
        check_unit_flow(file, f, &env, &mut violations);
        if panic_free.contains(&file.crate_name.as_str()) {
            check_result_discipline(file, f, &targets[i], &facts, &nodes, &mut violations);
        }
        let scoped = cast_files.iter().any(|&(c, n)| {
            c == file.crate_name && file.path.file_name().and_then(|s| s.to_str()) == Some(n)
        });
        if scoped {
            check_cast_range(
                file,
                f,
                &env,
                &targets[i],
                &summaries,
                &mut violations,
                &mut stats,
            );
        }
    }
    check_dispositions(&facts, &mut violations);

    violations.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    violations.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    Analysis { violations, stats }
}

// ---------------------------------------------------------------------
// Fixpoint.

/// Jacobi iteration: every round computes all fresh summaries from the
/// previous round's snapshot, in a seed-permuted order that provably
/// cannot matter. Intervals still changing after [`WIDEN_ROUND`]
/// rounds widen to `Top`, which bounds every chain.
fn fixpoint(
    facts: &[FileFacts],
    nodes: &[(usize, usize)],
    targets: &[Vec<Vec<usize>>],
    seed: u64,
    rounds_out: &mut usize,
) -> Vec<Summary> {
    let mut summaries = vec![BOTTOM; nodes.len()];
    let order = permuted_order(nodes.len(), seed);
    let mut round = 0usize;
    loop {
        round += 1;
        let mut fresh = vec![BOTTOM; nodes.len()];
        for &i in &order {
            let (fi, ki) = nodes[i];
            fresh[i] = transfer(&facts[fi].fns[ki], &targets[i], &summaries);
        }
        if round > WIDEN_ROUND {
            for (f, old) in fresh.iter_mut().zip(&summaries) {
                if f.range != old.range {
                    f.range = IntLat::Top;
                }
            }
        }
        if fresh == summaries {
            break;
        }
        summaries = fresh;
    }
    *rounds_out = round;
    summaries
}

/// Deterministic pseudo-random order of `0..n` (split-mix driven
/// Fisher–Yates, the same generator the property tests use).
fn permuted_order(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        seed ^= seed >> 31;
        #[allow(clippy::cast_possible_truncation)]
        let j = (seed % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// One function's transfer: rebuild the local environment from the
/// current summary snapshot, then fold the return sources.
fn transfer(f: &FnFacts, targets: &[Vec<usize>], summaries: &[Summary]) -> Summary {
    // Signature facts dominate: a declared newtype return or a unit
    // suffix on the fn name is a contract, not an inference.
    let sig_unit = Family::of_newtype(&f.ret_head)
        .or_else(|| units::family_of(&f.name))
        .map(UnitLat::Fam);
    let sig_range = source_range(&f.ret_head).map(|(lo, hi)| IntLat::Range(lo, hi));
    if let (Some(unit), Some(range)) = (sig_unit, sig_range) {
        return Summary { unit, range };
    }

    let env = build_env(f, targets, summaries);
    let mut unit = UnitLat::Bot;
    let mut range = IntLat::Bot;
    for r in &f.rets {
        let (u, rg) = eval_init(r, &env, targets, summaries);
        unit = unit.join(u);
        range = range.join(rg);
    }
    if f.ret_opaque {
        unit = UnitLat::Top;
        range = IntLat::Top;
    }
    Summary {
        unit: sig_unit.unwrap_or(unit),
        range: sig_range.unwrap_or(range),
    }
}

/// Joined summary over all resolved targets of call `c`; unresolved
/// calls are unknown (`Top`).
fn call_summary(c: &usize, targets: &[Vec<usize>], summaries: &[Summary]) -> (UnitLat, IntLat) {
    let Some(ts) = targets.get(*c) else {
        return (UnitLat::Top, IntLat::Top);
    };
    if ts.is_empty() {
        return (UnitLat::Top, IntLat::Top);
    }
    let mut unit = UnitLat::Bot;
    let mut range = IntLat::Bot;
    for &t in ts {
        let s = summaries.get(t).copied().unwrap_or(BOTTOM);
        unit = unit.join(s.unit);
        range = range.join(s.range);
    }
    (unit, range)
}

/// The per-function environment: simple local/param name → lattice
/// values, built in binding order.
fn build_env(
    f: &FnFacts,
    targets: &[Vec<usize>],
    summaries: &[Summary],
) -> HashMap<String, (UnitLat, IntLat)> {
    let mut env: HashMap<String, (UnitLat, IntLat)> = HashMap::new();
    for (name, ty) in &f.params {
        let unit = Family::of_newtype(ty)
            .or_else(|| units::family_of(name))
            .map_or(UnitLat::Top, UnitLat::Fam);
        let range = source_range(ty).map_or(IntLat::Top, |(lo, hi)| IntLat::Range(lo, hi));
        env.insert(name.clone(), (unit, range));
    }
    for l in &f.locals {
        let value = eval_init(&l.init, &env, targets, summaries);
        env.insert(l.name.clone(), value);
    }
    env
}

/// Lattice value of an abstract initialiser under `env`.
fn eval_init(
    init: &Init,
    env: &HashMap<String, (UnitLat, IntLat)>,
    targets: &[Vec<usize>],
    summaries: &[Summary],
) -> (UnitLat, IntLat) {
    match init {
        Init::Ctor(fam, _) | Init::Api(fam) => (UnitLat::Fam(*fam), IntLat::Top),
        Init::Escape(p) | Init::Alias(p) => (path_unit(env, p), path_range(env, p)),
        Init::Call(c) => call_summary(c, targets, summaries),
        Init::Range(lo, hi) => (UnitLat::Top, IntLat::Range(*lo, *hi)),
        Init::Unknown => (UnitLat::Top, IntLat::Top),
    }
}

/// Unit of a simple dotted path under `env`: a flow-tracked binding
/// wins, then the suffix heuristic on the final segment.
fn path_unit(env: &HashMap<String, (UnitLat, IntLat)>, path: &str) -> UnitLat {
    if let Some(&(u, _)) = env.get(path) {
        if u != UnitLat::Top {
            return u;
        }
    }
    units::family_of(units::last_segment(path)).map_or(UnitLat::Top, UnitLat::Fam)
}

fn path_range(env: &HashMap<String, (UnitLat, IntLat)>, path: &str) -> IntLat {
    env.get(path).map_or(IntLat::Top, |&(_, r)| r)
}

// ---------------------------------------------------------------------
// Checks.

fn check_unit_flow(
    file: &FileFacts,
    f: &FnFacts,
    env: &HashMap<String, (UnitLat, IntLat)>,
    out: &mut Vec<Violation>,
) {
    for a in &f.arith {
        let (Some(lf), Some(rf)) = (
            path_unit(env, &a.left).known(),
            path_unit(env, &a.right).known(),
        ) else {
            continue;
        };
        if lf == rf {
            continue;
        }
        let verb = if matches!(a.op.as_str(), "<" | ">" | "<=" | ">=") {
            "compares"
        } else {
            "mixes"
        };
        out.push(Violation {
            rule: Rule::UnitFlow,
            file: file.path.clone(),
            line: a.line,
            message: format!(
                "`{} {} {}` {verb} {} and {} — use the `blot_core::units` newtypes or convert \
                 explicitly",
                a.left,
                a.op,
                a.right,
                lf.name(),
                rf.name()
            ),
        });
    }
    for (fam, arg, line) in &f.ctors {
        let Some(arg) = arg else { continue };
        let Some(af) = path_unit(env, arg).known() else {
            continue;
        };
        if af != *fam {
            out.push(Violation {
                rule: Rule::UnitFlow,
                file: file.path.clone(),
                line: *line,
                message: format!(
                    "`{arg}` carries {} but is re-wrapped as {} — an escaped `.get()`/`.0` value \
                     keeps its origin family",
                    af.name(),
                    fam.name()
                ),
            });
        }
    }
}

fn check_result_discipline(
    file: &FileFacts,
    f: &FnFacts,
    targets: &[Vec<usize>],
    facts: &[FileFacts],
    nodes: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for d in &f.discards {
        let Some(c) = f.calls.get(d.call) else {
            continue;
        };
        let dotted = c.callee.replace("::", ".");
        let name = units::last_segment(&dotted);
        if BEST_EFFORT_METHODS.contains(&name) {
            continue;
        }
        let resolved = targets.get(d.call).map_or(&[][..], Vec::as_slice);
        let fallible = if resolved.is_empty() {
            let seeded = c.receiver.is_some() && FALLIBLE_METHOD_SEEDS.contains(&c.callee.as_str());
            seeded
                || FALLIBLE_PATH_PREFIXES
                    .iter()
                    .any(|p| c.callee.starts_with(p))
        } else {
            resolved.iter().any(|&t| {
                let (fi, ki) = nodes[t];
                facts[fi].fns[ki].fallible
            })
        };
        if !fallible {
            continue;
        }
        let shape = match d.kind {
            DiscardKind::LetUnderscore => "`let _ =` silently discards",
            DiscardKind::BareStatement => "the bare `;` statement silently discards",
        };
        out.push(Violation {
            rule: Rule::ResultDiscipline,
            file: file.path.clone(),
            line: d.line,
            message: format!(
                "{shape} the fallible result of `{}` — handle it, `?` it, or vet the drop with \
                 audit: allow(result-discipline, …)",
                c.callee
            ),
        });
    }
}

/// Cross-checks `client::disposition()` retryability against the
/// server's retry-after emission sites.
fn check_dispositions(facts: &[FileFacts], out: &mut Vec<Violation>) {
    // variant → (disposition, file, line); last writer wins but the
    // workspace has exactly one `disposition` fn.
    let mut dispositions: BTreeMap<String, (String, PathBuf, usize)> = BTreeMap::new();
    let mut emissions: Vec<(String, Hint, PathBuf, usize)> = Vec::new();
    for file in facts {
        for f in &file.fns {
            for (variant, disp) in &f.dispositions {
                dispositions.insert(variant.clone(), (disp.clone(), file.path.clone(), f.line));
            }
            for e in &f.emissions {
                emissions.push((e.variant.clone(), e.hint, file.path.clone(), e.line));
            }
        }
    }
    if dispositions.is_empty() || emissions.is_empty() {
        return;
    }
    for (variant, hint, file, line) in &emissions {
        let Some((disp, _, _)) = dispositions.get(variant) else {
            continue;
        };
        if disp != "RetryAfterHint" && *hint != Hint::Zero {
            out.push(Violation {
                rule: Rule::ResultDiscipline,
                file: file.clone(),
                line: *line,
                message: format!(
                    "the server sets a retry-after hint on `ErrorCode::{variant}`, but \
                     `client::disposition` maps it to `{disp}` — the hint is dead on arrival"
                ),
            });
        }
    }
    for (variant, (disp, file, line)) in &dispositions {
        if disp != "RetryAfterHint" {
            continue;
        }
        let has_hint = emissions
            .iter()
            .any(|(v, h, _, _)| v == variant && *h != Hint::Zero);
        if !has_hint {
            out.push(Violation {
                rule: Rule::ResultDiscipline,
                file: file.clone(),
                line: *line,
                message: format!(
                    "`client::disposition` promises a retry-after hint for \
                     `ErrorCode::{variant}`, but no server emission site supplies a nonzero \
                     `retry_after_ms`"
                ),
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_cast_range(
    file: &FileFacts,
    f: &FnFacts,
    env: &HashMap<String, (UnitLat, IntLat)>,
    targets: &[Vec<usize>],
    summaries: &[Summary],
    out: &mut Vec<Violation>,
    stats: &mut Stats,
) {
    for cast in &f.casts {
        let Some((tmin, tmax)) = target_range(&cast.target) else {
            continue;
        };
        let interval = match &cast.src {
            CastSrc::Lit(v) => IntLat::Range(*v, *v),
            CastSrc::Masked(m) => IntLat::Range(0, *m),
            CastSrc::Path(p) => path_range(env, p),
            CastSrc::Call(c) => call_summary(c, targets, summaries).1,
            CastSrc::SelfEnum => f
                .owner
                .as_ref()
                .and_then(|o| file.enums.iter().find(|(n, _)| n == o))
                .map_or(IntLat::Top, |&(_, max)| IntLat::Range(0, max)),
            CastSrc::Complex => IntLat::Top,
        };
        match interval {
            IntLat::Range(lo, hi) if lo >= tmin && hi <= tmax => {
                // Proved: the computed interval is the witness.
                stats.cast_proofs += 1;
            }
            IntLat::Range(lo, hi) => out.push(Violation {
                rule: Rule::CastRange,
                file: file.path.clone(),
                line: cast.line,
                message: format!(
                    "cast to `{}` not provable: computed interval [{lo}, {hi}] exceeds \
                     [{tmin}, {tmax}] — use a checked conversion",
                    cast.target
                ),
            }),
            IntLat::Bot | IntLat::Top => out.push(Violation {
                rule: Rule::CastRange,
                file: file.path.clone(),
                line: cast.line,
                message: format!(
                    "cast to `{}` not provable: the source value's interval is unknown — use \
                     `try_from` or vet with audit: allow(cast-range, …)",
                    cast.target
                ),
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Extraction.

/// Extracts facts, going through the content-hash cache when a cache
/// directory is configured. Returns `(facts, was_cache_hit)`.
fn cached_extract(sf: &SourceFile, cache_dir: Option<&Path>) -> (FileFacts, bool) {
    let Some(dir) = cache_dir else {
        return (extract_file(sf), false);
    };
    let key = cache_key(sf);
    let path = dir.join(key);
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Some(facts) = deserialize(&text) {
            return (facts, true);
        }
    }
    let facts = extract_file(sf);
    // Cache writes are best-effort: a read-only target dir only costs
    // warm-run speed, never correctness.
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(&path, serialize(&facts));
    }
    (facts, false)
}

/// Cache file name: crate, file stem, and an FNV-1a hash of the
/// content plus the format version.
fn cache_key(sf: &SourceFile) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in CACHE_VERSION
        .as_bytes()
        .iter()
        .chain(sf.path.to_string_lossy().as_bytes())
        .chain(sf.source.as_bytes())
    {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    let stem = sf
        .path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("file");
    format!("{}__{stem}__{hash:016x}.facts", sf.crate_name)
}

fn extract_file(sf: &SourceFile) -> FileFacts {
    let (tokens, sig) = rules::lex_significant(&sf.source);
    let view = View::new(&tokens, &sig);
    let parsed = ast::parse(view);
    let enums = parsed
        .enums
        .iter()
        .map(|e| (e.name.clone(), e.max_discriminant))
        .collect();
    let fns = parsed
        .fns
        .iter()
        .filter_map(|f| f.body.map(|body| extract_fn(view, f, body)))
        .collect();
    FileFacts {
        crate_name: sf.crate_name.clone(),
        path: sf.path.clone(),
        enums,
        fns,
    }
}

fn extract_fn(view: View<'_>, decl: &ast::FnDecl, (b0, b1): (usize, usize)) -> FnFacts {
    let mut f = FnFacts {
        name: decl.name.clone(),
        owner: decl.owner.clone(),
        line: decl.line,
        ..FnFacts::default()
    };
    parse_signature(view, decl.sig, &mut f);

    // Call sites, with each call's close position for covering tests.
    let raw_calls = ast::calls_in(view, b0, b1);
    let closes: Vec<usize> = raw_calls
        .iter()
        .map(|c| ast::matching_close(view, c.pos + 1, b1, "(", ")"))
        .collect();
    for c in &raw_calls {
        f.calls.push(CallSite {
            callee: c.callee.clone(),
            receiver: c.receiver.clone(),
            line: c.line,
        });
    }

    extract_statements(view, b0, b1, &raw_calls, &closes, &mut f);
    extract_arith(view, b0, b1, &mut f);
    extract_casts(view, b0, b1, &raw_calls, &closes, &mut f);
    extract_ctors(view, &raw_calls, &closes, b1, &mut f);
    extract_emissions(view, &raw_calls, &closes, b0, b1, &mut f);
    if f.name == "disposition" {
        extract_dispositions(view, b0, b1, &mut f);
    }
    f
}

/// Parses the parameter list and return type out of the signature
/// token range.
fn parse_signature(view: View<'_>, (s0, s1): (usize, usize), f: &mut FnFacts) {
    // Parameters: the first paren group.
    let mut j = s0;
    while j < s1 && view.text(j) != Some("(") {
        j += 1;
    }
    if j < s1 {
        let close = ast::matching_close(view, j, s1, "(", ")").saturating_sub(1);
        let mut k = j + 1;
        while k < close {
            let (name, next) = parse_param(view, k, close);
            if let Some((name, ty)) = name {
                f.params.push((name, ty));
            }
            k = next;
        }
        j = close + 1;
    }
    // Return type: after `->`.
    while j + 1 < s1 {
        if view.text(j) == Some("-") && view.text(j + 1) == Some(">") {
            let head_at = type_head(view, j + 2, s1);
            let Some(h) = head_at else { return };
            let head = view.text(h).unwrap_or_default().to_string();
            if head == "Result" || head == "Option" {
                f.fallible = true;
                // Payload head: the first type ident inside the `<…>`;
                // a bare alias (`io::Result` with no generics) keeps
                // the payload unknown.
                if view.text(h + 1) == Some("<") {
                    if let Some(p) = type_head(view, h + 2, s1) {
                        f.ret_head = view.text(p).unwrap_or_default().to_string();
                    }
                }
            } else {
                f.ret_head = head;
            }
            return;
        }
        j += 1;
    }
}

/// One parameter at `k`: returns `((name, type-head), index past the
/// top-level comma)`.
fn parse_param(view: View<'_>, k: usize, end: usize) -> (Option<(String, String)>, usize) {
    // Find the top-level comma bounding this parameter.
    let mut depth = 0i32;
    let mut stop = end;
    for j in k..end {
        match view.text(j) {
            Some("(" | "[" | "<") => depth += 1,
            Some(")" | "]" | ">") => depth -= 1,
            Some(",") if depth == 0 => {
                stop = j;
                break;
            }
            _ => {}
        }
    }
    // `self` receivers (`&self`, `&mut self`, `self`) carry no name.
    let mut j = k;
    while j < stop && matches!(view.text(j), Some("&" | "mut")) {
        j += 1;
    }
    if view.text(j) == Some("'") {
        j += 2;
        while j < stop && matches!(view.text(j), Some("mut")) {
            j += 1;
        }
    }
    if view.is_ident(j, "self") || view.kind(j) != Some(Kind::Ident) {
        return (None, stop + 1);
    }
    let name = view.text(j).unwrap_or_default().to_string();
    if view.text(j + 1) != Some(":") {
        return (None, stop + 1);
    }
    let ty = type_head(view, j + 2, stop)
        .and_then(|h| view.text(h))
        .unwrap_or_default()
        .to_string();
    (Some((name, ty)), stop + 1)
}

/// Index of the head identifier of a type starting at `j`: skips
/// references, lifetimes, `mut`/`dyn`/`impl`, and path qualifiers
/// (`std::io::Result` → the `Result` token).
fn type_head(view: View<'_>, mut j: usize, end: usize) -> Option<usize> {
    while j < end {
        match view.text(j) {
            Some("&" | "(" | "mut" | "dyn" | "impl") => j += 1,
            Some("'") => j += 2,
            _ => break,
        }
    }
    if view.kind(j) != Some(Kind::Ident) {
        return None;
    }
    // Follow `a::b::C` to the last segment.
    let mut head = j;
    while view.text(head + 1) == Some(":")
        && view.text(head + 2) == Some(":")
        && view.kind(head + 3) == Some(Kind::Ident)
    {
        head += 3;
    }
    Some(head)
}

/// Statement walk: `let` bindings (locals + `let _ =` discards), bare
/// call statements, and return sources.
fn extract_statements(
    view: View<'_>,
    b0: usize,
    b1: usize,
    calls: &[ast::Call],
    closes: &[usize],
    f: &mut FnFacts,
) {
    let mut j = b0;
    while j < b1 {
        if view.is_ident(j, "let") {
            j = extract_let(view, j, b1, calls, closes, f);
            continue;
        }
        if view.is_ident(j, "return") {
            let semi = statement_end(view, j + 1, b1);
            if semi > j + 1 {
                match classify_init(view, j + 1, semi, calls, closes) {
                    Init::Unknown => f.ret_opaque = true,
                    src => f.rets.push(src),
                }
            }
            j = semi + 1;
            continue;
        }
        // Bare statement discard: a call covering boundary→`;` exactly.
        let at_boundary = j == b0 || matches!(view.text(j - 1), Some(";" | "{" | "}"));
        if at_boundary && view.kind(j) == Some(Kind::Ident) {
            let semi = statement_end(view, j, b1);
            if semi < b1 && view.text(semi) == Some(";") {
                if let Some(ci) = covering_call(view, j, semi, calls, closes) {
                    // `call()?;` propagates the error — consumed.
                    if view.text(closes[ci]) != Some("?") {
                        f.discards.push(DiscardSite {
                            call: ci,
                            kind: DiscardKind::BareStatement,
                            line: calls[ci].line,
                        });
                    }
                    j = semi + 1;
                    continue;
                }
            }
        }
        j += 1;
    }
    // Tail expression: after the last top-level `;` (or the whole
    // body), a covering path/call is a return source.
    extract_tail(view, b0, b1, calls, closes, f);
}

/// The `;` ending the statement starting at `j`, at zero bracket
/// depth; `b1` when the statement runs to the end of the body.
fn statement_end(view: View<'_>, j: usize, b1: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    for k in j..b1 {
        match view.text(k) {
            Some("(") => paren += 1,
            Some(")") => paren -= 1,
            Some("[") => bracket += 1,
            Some("]") => bracket -= 1,
            Some("{") => brace += 1,
            Some("}") => brace -= 1,
            Some(";") if paren == 0 && bracket == 0 && brace == 0 => return k,
            _ => {}
        }
        if brace < 0 {
            return k;
        }
    }
    b1
}

/// Handles one `let` statement starting at `j`; returns the index past
/// its `;`.
fn extract_let(
    view: View<'_>,
    j: usize,
    b1: usize,
    calls: &[ast::Call],
    closes: &[usize],
    f: &mut FnFacts,
) -> usize {
    let mut n = j + 1;
    if view.is_ident(n, "mut") {
        n += 1;
    }
    let name = match view.kind(n) {
        Some(Kind::Ident) => view.text(n).unwrap_or_default().to_string(),
        Some(Kind::Punct) if view.text(n) == Some("_") => "_".to_string(),
        _ => return j + 1, // destructuring / `let (a, b) =` — skip.
    };
    // Optional `: Type` ascription.
    let mut ty = None;
    let mut eq = n + 1;
    if view.text(eq) == Some(":") {
        ty = type_head(view, eq + 1, b1)
            .and_then(|h| view.text(h))
            .map(str::to_string);
        while eq < b1 && !matches!(view.text(eq), Some("=" | ";")) {
            eq += 1;
        }
    }
    if view.text(eq) != Some("=") {
        return eq + 1; // `let x;` or `let x: T;`
    }
    let semi = statement_end(view, eq + 1, b1);
    let expr = (eq + 1, semi);

    if name == "_" {
        if let Some(ci) = covering_call(view, expr.0, expr.1, calls, closes) {
            if view.text(closes[ci]) != Some("?") {
                f.discards.push(DiscardSite {
                    call: ci,
                    kind: DiscardKind::LetUnderscore,
                    line: calls[ci].line,
                });
            }
        }
        return eq + 1;
    }

    let mut init = classify_init(view, expr.0, expr.1, calls, closes);
    // A type ascription refines an otherwise unknown initialiser: an
    // integer type bounds the value, a unit newtype fixes the family.
    if let Some(ty) = ty {
        if init == Init::Unknown || matches!(init, Init::Call(_) | Init::Alias(_)) {
            if let Some((lo, hi)) = source_range(&ty) {
                init = Init::Range(lo, hi);
            } else if let Some(fam) = Family::of_newtype(&ty) {
                init = Init::Ctor(fam, None);
            }
        }
    }
    f.locals.push(Local { name, init });
    // Resume INSIDE the initialiser rather than past the `;`: a match
    // or closure initialiser (`let cal = Table::build(|s| { … });`)
    // contains whole statement trees of its own, and skipping them
    // would hide every nested `let` binding and discard.
    eq + 1
}

/// The call whose text covers `[lo, hi)` exactly (its close paren — or
/// trailing `?` — lands at `hi`, and its leading receiver/path starts
/// at `lo`). Chain tails (`a().b()`) are accepted with an unverified
/// start, which is safe: misclassified chains resolve to unknown.
fn covering_call(
    view: View<'_>,
    lo: usize,
    hi: usize,
    calls: &[ast::Call],
    closes: &[usize],
) -> Option<usize> {
    for (i, c) in calls.iter().enumerate() {
        if c.pos < lo || c.pos >= hi {
            continue;
        }
        let close = closes[i];
        let end = if view.text(close) == Some("?") {
            close + 1
        } else {
            close
        };
        if end != hi {
            continue;
        }
        // Verify the call starts the expression where the shape is
        // simple enough to check.
        // A receiver segment is `ident .` (2 tokens); a path segment is
        // `ident : :` (3 tokens — `::` lexes as two `:` puncts).
        let start = if let Some(recv) = &c.receiver {
            c.pos - 2 * recv.split('.').count()
        } else {
            c.pos - 3 * (c.callee.split("::").count() - 1)
        };
        if start == lo || c.receiver.is_none() && view.text(c.pos.wrapping_sub(1)) == Some(".") {
            return Some(i);
        }
    }
    None
}

/// Classifies a `let` initialiser expression.
fn classify_init(
    view: View<'_>,
    lo: usize,
    hi: usize,
    calls: &[ast::Call],
    closes: &[usize],
) -> Init {
    if lo >= hi {
        return Init::Unknown;
    }
    // Single integer literal.
    if hi == lo + 1 && view.kind(lo) == Some(Kind::Literal) {
        if let Some(v) = view.text(lo).and_then(ast::parse_int) {
            return Init::Range(v, v);
        }
        return Init::Unknown;
    }
    // A covering call.
    if let Some(ci) = covering_call(view, lo, hi, calls, closes) {
        let c = &calls[ci];
        if let Some((fam, arg)) = ctor_of(view, c, closes[ci]) {
            return Init::Ctor(fam, arg);
        }
        // `path.get()` — the newtype escape: the raw value keeps the
        // receiver's family.
        if c.callee == "get" && closes[ci] == c.pos + 3 {
            if let Some(recv) = &c.receiver {
                return Init::Escape(recv.clone());
            }
        }
        // `u32::from_be_bytes(…)` and friends: full type range.
        if let Some((ty, _)) = c.callee.split_once("::") {
            if let Some((lo, hi)) = source_range(ty) {
                return Init::Range(lo, hi);
            }
        }
        if let Some(&(_, fam)) = API_UNIT_SEEDS.iter().find(|&&(n, _)| n == c.callee) {
            return Init::Api(fam);
        }
        return Init::Call(ci);
    }
    // `path.get()` escape.
    if hi >= lo + 4
        && view.text(hi - 1) == Some(")")
        && view.text(hi - 2) == Some("(")
        && view.is_ident(hi - 3, "get")
        && view.text(hi - 4) == Some(".")
    {
        if let Some(p) = simple_path(view, lo, hi - 4) {
            return Init::Escape(p);
        }
    }
    // `path.0` escape.
    if hi >= lo + 3
        && view.kind(hi - 1) == Some(Kind::Literal)
        && view.text(hi - 1) == Some("0")
        && view.text(hi - 2) == Some(".")
    {
        if let Some(p) = simple_path(view, lo, hi - 2) {
            return Init::Escape(p);
        }
    }
    // `x & MASK` (or `MASK & x`): the mask bounds the value whatever
    // `x` is, for a non-negative mask.
    if let Some(m) = mask_pattern(view, lo, hi) {
        return Init::Range(0, m);
    }
    // A plain simple path.
    if let Some(p) = simple_path(view, lo, hi) {
        return Init::Alias(p);
    }
    Init::Unknown
}

/// Recognises `Millis::new(arg)`-shaped newtype constructor calls.
/// Returns the family and the simple-path first argument when present.
fn ctor_of(view: View<'_>, c: &ast::Call, close: usize) -> Option<(Family, Option<String>)> {
    let mut segs: Vec<&str> = c.callee.split("::").collect();
    let method = segs.pop()?;
    if !matches!(method, "new" | "of") {
        return None;
    }
    let fam = Family::of_newtype(segs.last()?)?;
    // First argument: a simple path (possibly `.get()`-suffixed),
    // bounded by a `,` or the close paren.
    let open = c.pos + 1;
    let arg = units::right_operand(view, open + 1, close)
        .filter(|&(_, edge)| matches!(view.text(edge), Some("," | ")")))
        .map(|(p, _)| p);
    Some((fam, arg))
}

/// The dotted simple path covering `[lo, hi)` exactly, if any.
fn simple_path(view: View<'_>, lo: usize, hi: usize) -> Option<String> {
    units::right_operand(view, lo, hi).and_then(|(p, edge)| (edge == hi).then_some(p))
}

/// `[path, &, lit]` / `[lit, &, path]` mask patterns.
fn mask_pattern(view: View<'_>, lo: usize, hi: usize) -> Option<i128> {
    let amp = (lo..hi).find(|&j| view.text(j) == Some("&") && view.text(j + 1) != Some("&"))?;
    if amp == lo || amp + 1 >= hi {
        return None; // leading `&expr` reference, or trailing garbage
    }
    let lit_right = view.kind(amp + 1) == Some(Kind::Literal);
    let (lit_at, path_lo, path_hi) = if lit_right {
        (amp + 1, lo, amp)
    } else if view.kind(hi - 1) == Some(Kind::Literal) {
        // not a simple `lit & path` — require the literal adjacent
        (hi - 1, amp + 1, hi - 1)
    } else {
        return None;
    };
    if lit_right && amp + 2 != hi {
        return None;
    }
    if !lit_right && (view.kind(lo) != Some(Kind::Literal) || lo + 1 != amp) {
        return None;
    }
    simple_path(view, path_lo, path_hi)?;
    let m = view.text(lit_at).and_then(ast::parse_int)?;
    (m >= 0).then_some(m)
}

/// Classifies the body's tail expression (after the last top-level
/// `;`/`}`) as a return source.
fn extract_tail(
    view: View<'_>,
    b0: usize,
    b1: usize,
    calls: &[ast::Call],
    closes: &[usize],
    f: &mut FnFacts,
) {
    // Find the start of the trailing expression: walk statements.
    let mut tail = b0;
    let mut j = b0;
    let mut depth = 0i32;
    while j < b1 {
        match view.text(j) {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                if depth == 0 {
                    tail = j + 1;
                }
            }
            Some("(") => {
                j = ast::matching_close(view, j, b1, "(", ")");
                continue;
            }
            Some(";") if depth == 0 => tail = j + 1,
            _ => {}
        }
        j += 1;
    }
    if tail >= b1 {
        return;
    }
    match classify_init(view, tail, b1, calls, closes) {
        // A structurally opaque tail (an `if`/`match` value, an
        // arithmetic expression) makes the return unknown — except a
        // lone literal, which simply has no unit.
        Init::Unknown => {
            if !(b1 == tail + 1 && view.kind(tail) == Some(Kind::Literal)) {
                f.ret_opaque = true;
            }
        }
        src => f.rets.push(src),
    }
}

/// Additive and comparison arithmetic sites (the conservative operand
/// model from the old lexical rule, kept verbatim).
fn extract_arith(view: View<'_>, b0: usize, b1: usize, f: &mut FnFacts) {
    for j in b0..b1 {
        if view.kind(j) != Some(Kind::Punct) {
            continue;
        }
        let t = view.text(j).unwrap_or_default();
        let (op, rhs_at) = match t {
            "+" | "-" => {
                if t == "-" && view.text(j + 1) == Some(">") {
                    continue;
                }
                if view.text(j + 1) == Some("=") {
                    (format!("{t}="), j + 2)
                } else {
                    (t.to_string(), j + 1)
                }
            }
            "<" | ">" => {
                // Skip `<<`/`>>`, `->`/`=>` tails and generics-ish
                // `::<`; comparisons against *unit-typed* operands are
                // what we're after.
                if view.text(j + 1) == Some(t)
                    || matches!(view.text(j - 1), Some("-" | "=" | "<" | ">" | ":"))
                {
                    continue;
                }
                if view.text(j + 1) == Some("=") {
                    (format!("{t}="), j + 2)
                } else {
                    (t.to_string(), j + 1)
                }
            }
            _ => continue,
        };
        // Unary sign: no left operand.
        if j == b0 || units::UNARY_CONTEXT.contains(&view.text(j - 1).unwrap_or_default()) {
            continue;
        }
        let Some((left, l_edge)) = units::left_operand(view, b0, j) else {
            continue;
        };
        let Some((right, r_edge)) = units::right_operand(view, rhs_at, b1) else {
            continue;
        };
        // A `*`/`/`/`%` on either flank makes the operand a derived
        // unit — exempt.
        if l_edge > b0 && matches!(view.text(l_edge - 1), Some("*" | "/" | "%")) {
            continue;
        }
        if matches!(view.text(r_edge), Some("*" | "/" | "%")) {
            continue;
        }
        f.arith.push(ArithSite {
            op,
            left,
            right,
            line: view.line(j),
        });
    }
}

/// Narrowing `as` casts with their abstract source shape.
fn extract_casts(
    view: View<'_>,
    b0: usize,
    b1: usize,
    calls: &[ast::Call],
    closes: &[usize],
    f: &mut FnFacts,
) {
    for j in b0..b1 {
        if !view.is_ident(j, "as") {
            continue;
        }
        let Some(target) = view.text(j + 1) else {
            continue;
        };
        if !NARROW_TARGETS.contains(&target) {
            continue;
        }
        let target = target.to_string();
        let line = view.line(j);
        let src = cast_source(view, b0, j, calls, closes);
        f.casts.push(CastSite { target, src, line });
    }
}

/// The abstract source of the cast whose `as` sits at `j`.
fn cast_source(
    view: View<'_>,
    b0: usize,
    j: usize,
    calls: &[ast::Call],
    closes: &[usize],
) -> CastSrc {
    if j == b0 {
        return CastSrc::Complex;
    }
    let prev = view.text(j - 1).unwrap_or_default();
    // Literal source.
    if view.kind(j - 1) == Some(Kind::Literal) {
        return ast::parse_int(prev).map_or(CastSrc::Complex, CastSrc::Lit);
    }
    // `self as T` in an enum impl.
    if view.is_ident(j - 1, "self") && view.text(j.wrapping_sub(2)) != Some(".") {
        return CastSrc::SelfEnum;
    }
    // `call()? as T` / `call() as T`.
    let close = if prev == "?" { j - 1 } else { j };
    if let Some(ci) = (0..calls.len()).find(|&i| closes[i] == close) {
        return CastSrc::Call(ci);
    }
    // `(x & MASK) as T`.
    if prev == ")" {
        // Walk back to the matching open paren.
        let mut depth = 0i32;
        let mut open = None;
        for k in (b0..j).rev() {
            match view.text(k) {
                Some(")") => depth += 1,
                Some("(") => {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(o) = open {
            if let Some(m) = mask_pattern(view, o + 1, j - 1) {
                return CastSrc::Masked(m);
            }
        }
        return CastSrc::Complex;
    }
    // A simple path.
    units::left_operand(view, b0, j).map_or(CastSrc::Complex, |(p, _)| CastSrc::Path(p))
}

/// All newtype-constructor call sites (for the re-wrap check), not
/// just `let`-bound ones.
fn extract_ctors(
    view: View<'_>,
    calls: &[ast::Call],
    closes: &[usize],
    _b1: usize,
    f: &mut FnFacts,
) {
    for (i, c) in calls.iter().enumerate() {
        if let Some((fam, arg)) = ctor_of(view, c, closes[i]) {
            f.ctors.push((fam, arg, c.line));
        }
    }
}

/// `ErrorCode` emission sites: `error_response(ErrorCode::X, hint, …)`
/// calls and `WireError { code: ErrorCode::X, retry_after_ms: … }`
/// struct literals.
fn extract_emissions(
    view: View<'_>,
    calls: &[ast::Call],
    closes: &[usize],
    b0: usize,
    b1: usize,
    f: &mut FnFacts,
) {
    for (i, c) in calls.iter().enumerate() {
        if units::last_segment(&c.callee.replace("::", ".")) != "error_response" {
            continue;
        }
        let open = c.pos + 1;
        let close = closes[i].saturating_sub(1);
        // First argument must be a literal `ErrorCode::X` path.
        if !(view.is_ident(open + 1, "ErrorCode")
            && view.text(open + 2) == Some(":")
            && view.text(open + 3) == Some(":")
            && view.kind(open + 4) == Some(Kind::Ident)
            && view.text(open + 5) == Some(","))
        {
            continue;
        }
        let variant = view.text(open + 4).unwrap_or_default().to_string();
        // The hint argument runs to the next top-level comma (or the
        // close paren for a two-argument call).
        let mut depth = 0i32;
        let stop = (open + 6..close)
            .find(|&g| match view.text(g) {
                Some("(" | "[" | "{") => {
                    depth += 1;
                    false
                }
                Some(")" | "]" | "}") => {
                    depth -= 1;
                    false
                }
                Some(",") => depth == 0,
                _ => false,
            })
            .unwrap_or(close);
        let hint = hint_of(view, open + 6, stop);
        f.emissions.push(Emission {
            variant,
            hint,
            line: c.line,
        });
    }
    // Struct-literal emissions.
    for j in b0..b1 {
        if !view.is_ident(j, "WireError") || view.text(j + 1) != Some("{") {
            continue;
        }
        let close = ast::matching_close(view, j + 1, b1, "{", "}").saturating_sub(1);
        let mut variant = None;
        let mut hint = Hint::Zero;
        for k in j + 2..close {
            if view.is_ident(k, "code")
                && view.text(k + 1) == Some(":")
                && view.is_ident(k + 2, "ErrorCode")
                && view.text(k + 5).is_some()
            {
                variant = view.text(k + 5).map(str::to_string);
            }
            if view.is_ident(k, "retry_after_ms") && view.text(k + 1) == Some(":") {
                let stop = (k + 2..close)
                    .find(|&g| view.text(g) == Some(","))
                    .unwrap_or(close);
                hint = hint_of(view, k + 2, stop);
            }
        }
        if let Some(variant) = variant {
            f.emissions.push(Emission {
                variant,
                hint,
                line: view.line(j),
            });
        }
    }
}

/// Classifies a retry-after argument in `[at, stop)`.
fn hint_of(view: View<'_>, at: usize, stop: usize) -> Hint {
    if at < stop && at + 1 >= stop && view.kind(at) == Some(Kind::Literal) {
        return match ast::parse_int(view.text(at).unwrap_or_default()) {
            Some(0) => Hint::Zero,
            Some(_) => Hint::NonZero,
            None => Hint::Dynamic,
        };
    }
    Hint::Dynamic
}

/// Arms of `fn disposition`: `ErrorCode::A | ErrorCode::B => D::X`.
fn extract_dispositions(view: View<'_>, b0: usize, b1: usize, f: &mut FnFacts) {
    let mut pending: Vec<String> = Vec::new();
    let mut j = b0;
    while j < b1 {
        if view.is_ident(j, "ErrorCode")
            && view.text(j + 1) == Some(":")
            && view.text(j + 2) == Some(":")
            && view.kind(j + 3) == Some(Kind::Ident)
        {
            pending.push(view.text(j + 3).unwrap_or_default().to_string());
            j += 4;
            continue;
        }
        if view.text(j) == Some("=") && view.text(j + 1) == Some(">") {
            // The arm value: the last ident before the arm-ending `,`.
            let stop = statement_arm_end(view, j + 2, b1);
            let disp = (j + 2..stop)
                .rev()
                .find(|&g| view.kind(g) == Some(Kind::Ident))
                .and_then(|g| view.text(g))
                .unwrap_or_default()
                .to_string();
            if !disp.is_empty() {
                for v in pending.drain(..) {
                    f.dispositions.push((v, disp.clone()));
                }
            }
            pending.clear();
            j = stop + 1;
            continue;
        }
        j += 1;
    }
}

/// End of a match arm value starting at `j`: the `,` (or closing `}`)
/// at zero depth.
fn statement_arm_end(view: View<'_>, j: usize, b1: usize) -> usize {
    let mut depth = 0i32;
    for k in j..b1 {
        match view.text(k) {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]") => depth -= 1,
            Some("}") => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            Some(",") if depth == 0 => return k,
            _ => {}
        }
    }
    b1
}

// ---------------------------------------------------------------------
// Cache serialisation: a line-based text format. Identifiers and paths
// never contain spaces, so space-separated fields round-trip exactly;
// any malformed line fails the whole parse and falls back to
// re-extraction.

fn serialize(facts: &FileFacts) -> String {
    use std::fmt::Write as _;
    let mut out = format!("blot-dataflow-cache {CACHE_VERSION}\n");
    let _ = writeln!(out, "crate {}", facts.crate_name);
    let _ = writeln!(out, "path {}", facts.path.display());
    for (name, max) in &facts.enums {
        let _ = writeln!(out, "enum {name} {max}");
    }
    for f in &facts.fns {
        let _ = writeln!(
            out,
            "fn {} {} {} {} {} {}",
            f.name,
            f.owner.as_deref().unwrap_or("-"),
            f.line,
            u8::from(f.fallible),
            if f.ret_head.is_empty() {
                "-"
            } else {
                &f.ret_head
            },
            u8::from(f.ret_opaque),
        );
        for (n, t) in &f.params {
            let _ = writeln!(out, "param {n} {}", if t.is_empty() { "-" } else { t });
        }
        for c in &f.calls {
            let _ = writeln!(
                out,
                "call {} {} {}",
                c.callee,
                c.receiver.as_deref().unwrap_or("-"),
                c.line
            );
        }
        for l in &f.locals {
            let _ = writeln!(out, "local {} {}", l.name, init_tag(&l.init));
        }
        for (fam, arg, line) in &f.ctors {
            let _ = writeln!(
                out,
                "ctor {} {} {line}",
                fam.tag(),
                arg.as_deref().unwrap_or("-")
            );
        }
        for r in &f.rets {
            let _ = writeln!(out, "ret {}", init_tag(r));
        }
        for a in &f.arith {
            let _ = writeln!(out, "arith {} {} {} {}", a.op, a.left, a.right, a.line);
        }
        for d in &f.discards {
            let kind = match d.kind {
                DiscardKind::LetUnderscore => "let",
                DiscardKind::BareStatement => "bare",
            };
            let _ = writeln!(out, "discard {} {kind} {}", d.call, d.line);
        }
        for c in &f.casts {
            let src = match &c.src {
                CastSrc::Path(p) => format!("path {p}"),
                CastSrc::Call(i) => format!("call {i}"),
                CastSrc::Lit(v) => format!("lit {v}"),
                CastSrc::Masked(m) => format!("mask {m}"),
                CastSrc::SelfEnum => "selfenum".to_string(),
                CastSrc::Complex => "complex".to_string(),
            };
            let _ = writeln!(out, "cast {} {} {src}", c.target, c.line);
        }
        for e in &f.emissions {
            let hint = match e.hint {
                Hint::Zero => "zero",
                Hint::NonZero => "nonzero",
                Hint::Dynamic => "dynamic",
            };
            let _ = writeln!(out, "emit {} {hint} {}", e.variant, e.line);
        }
        for (v, d) in &f.dispositions {
            let _ = writeln!(out, "disp {v} {d}");
        }
    }
    out
}

fn init_tag(init: &Init) -> String {
    match init {
        Init::Ctor(fam, arg) => format!("ctor {} {}", fam.tag(), arg.as_deref().unwrap_or("-")),
        Init::Escape(p) => format!("escape {p}"),
        Init::Call(i) => format!("call {i}"),
        Init::Alias(p) => format!("alias {p}"),
        Init::Range(lo, hi) => format!("range {lo} {hi}"),
        Init::Api(fam) => format!("api {}", fam.tag()),
        Init::Unknown => "unknown".to_string(),
    }
}

fn deserialize(text: &str) -> Option<FileFacts> {
    let mut lines = text.lines();
    if lines.next()? != format!("blot-dataflow-cache {CACHE_VERSION}") {
        return None;
    }
    let crate_name = lines.next()?.strip_prefix("crate ")?.to_string();
    let path = PathBuf::from(lines.next()?.strip_prefix("path ")?);
    let mut facts = FileFacts {
        crate_name,
        path,
        enums: Vec::new(),
        fns: Vec::new(),
    };
    for line in lines {
        let mut it = line.split(' ');
        let tag = it.next()?;
        let mut next = || it.next();
        match tag {
            "enum" => {
                let name = next()?.to_string();
                facts.enums.push((name, next()?.parse().ok()?));
            }
            "fn" => {
                let mut f = FnFacts {
                    name: next()?.to_string(),
                    owner: opt(next()?),
                    ..FnFacts::default()
                };
                f.line = next()?.parse().ok()?;
                f.fallible = next()? == "1";
                f.ret_head = opt(next()?).unwrap_or_default();
                f.ret_opaque = next()? == "1";
                facts.fns.push(f);
            }
            _ => {
                let f = facts.fns.last_mut()?;
                match tag {
                    "param" => {
                        let n = next()?.to_string();
                        f.params.push((n, opt(next()?).unwrap_or_default()));
                    }
                    "call" => {
                        let callee = next()?.to_string();
                        let receiver = opt(next()?);
                        f.calls.push(CallSite {
                            callee,
                            receiver,
                            line: next()?.parse().ok()?,
                        });
                    }
                    "local" => {
                        let name = next()?.to_string();
                        let init = parse_init(&mut it)?;
                        f.locals.push(Local { name, init });
                    }
                    "ctor" => {
                        let fam = Family::from_tag(next()?)?;
                        let arg = opt(next()?);
                        f.ctors.push((fam, arg, next()?.parse().ok()?));
                    }
                    "ret" => f.rets.push(parse_init(&mut it)?),
                    "arith" => {
                        let op = next()?.to_string();
                        let left = next()?.to_string();
                        let right = next()?.to_string();
                        f.arith.push(ArithSite {
                            op,
                            left,
                            right,
                            line: next()?.parse().ok()?,
                        });
                    }
                    "discard" => {
                        let call = next()?.parse().ok()?;
                        let kind = match next()? {
                            "let" => DiscardKind::LetUnderscore,
                            "bare" => DiscardKind::BareStatement,
                            _ => return None,
                        };
                        f.discards.push(DiscardSite {
                            call,
                            kind,
                            line: next()?.parse().ok()?,
                        });
                    }
                    "cast" => {
                        let target = next()?.to_string();
                        let line = next()?.parse().ok()?;
                        let src = match next()? {
                            "path" => CastSrc::Path(next()?.to_string()),
                            "call" => CastSrc::Call(next()?.parse().ok()?),
                            "lit" => CastSrc::Lit(next()?.parse().ok()?),
                            "mask" => CastSrc::Masked(next()?.parse().ok()?),
                            "selfenum" => CastSrc::SelfEnum,
                            "complex" => CastSrc::Complex,
                            _ => return None,
                        };
                        f.casts.push(CastSite { target, src, line });
                    }
                    "emit" => {
                        let variant = next()?.to_string();
                        let hint = match next()? {
                            "zero" => Hint::Zero,
                            "nonzero" => Hint::NonZero,
                            "dynamic" => Hint::Dynamic,
                            _ => return None,
                        };
                        f.emissions.push(Emission {
                            variant,
                            hint,
                            line: next()?.parse().ok()?,
                        });
                    }
                    "disp" => {
                        let v = next()?.to_string();
                        f.dispositions.push((v, next()?.to_string()));
                    }
                    "" => {}
                    _ => return None,
                }
            }
        }
    }
    Some(facts)
}

fn parse_init<'a>(it: &mut impl Iterator<Item = &'a str>) -> Option<Init> {
    Some(match it.next()? {
        "ctor" => {
            let fam = Family::from_tag(it.next()?)?;
            Init::Ctor(fam, opt(it.next()?))
        }
        "escape" => Init::Escape(it.next()?.to_string()),
        "call" => Init::Call(it.next()?.parse().ok()?),
        "alias" => Init::Alias(it.next()?.to_string()),
        "range" => {
            let lo = it.next()?.parse().ok()?;
            Init::Range(lo, it.next()?.parse().ok()?)
        }
        "api" => Init::Api(Family::from_tag(it.next()?)?),
        "unknown" => Init::Unknown,
        _ => return None,
    })
}

fn opt(s: &str) -> Option<String> {
    (s != "-").then(|| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(krate: &str, name: &str, src: &str) -> SourceFile {
        SourceFile {
            crate_name: krate.to_string(),
            path: PathBuf::from(format!("crates/{krate}/src/{name}")),
            source: src.to_string(),
        }
    }

    fn deps() -> BTreeMap<String, BTreeSet<String>> {
        let mut m = BTreeMap::new();
        m.insert("core".to_string(), BTreeSet::new());
        m
    }

    fn run(files: &[SourceFile]) -> Vec<Violation> {
        check_workspace(files, &deps(), &["core"], &[("core", "wire.rs")], None).violations
    }

    #[test]
    fn extraction_round_trips_through_the_cache_format() {
        let sf = file(
            "core",
            "wire.rs",
            "pub fn f(len_bytes: u32) -> Result<u32, E> {\n\
                 let wait = start.elapsed().as_secs_f64();\n\
                 let m = Millis::new(wait);\n\
                 let raw = m.get();\n\
                 let masked = raw_bits & 0x3F;\n\
                 let _ = sock.set_read_timeout(None);\n\
                 if wait + len_bytes > 0.0 { return helper(); }\n\
                 Ok(masked as u32)\n\
             }\n",
        );
        let facts = extract_file(&sf);
        let round = deserialize(&serialize(&facts)).expect("cache text parses");
        assert_eq!(facts, round);
        let f = &facts.fns[0];
        assert!(f.fallible);
        assert_eq!(f.ret_head, "u32");
        assert!(f
            .locals
            .iter()
            .any(|l| l.init == Init::Api(Family::Seconds)));
        assert!(f
            .locals
            .iter()
            .any(|l| matches!(l.init, Init::Ctor(Family::Millis, Some(_)))));
        assert!(f.locals.iter().any(|l| l.init == Init::Escape("m".into())));
        assert!(f.locals.iter().any(|l| l.init == Init::Range(0, 0x3F)));
        assert_eq!(f.discards.len(), 1);
    }

    #[test]
    fn interprocedural_unit_flow_catches_suffixless_mixing() {
        // `t` has no unit suffix; its family arrives through the call
        // summary of `scan_cost`, which itself flows from a seeded API.
        let files = [
            file(
                "core",
                "a.rs",
                "pub fn scan_cost() -> f64 { elapsed_secs_probe() }\n\
                 fn elapsed_secs_probe() -> f64 { now.elapsed().as_secs_f64() }\n",
            ),
            file(
                "core",
                "b.rs",
                "pub fn total(batch_bytes: f64) -> f64 {\n\
                     let t = scan_cost();\n\
                     t + batch_bytes\n\
                 }\n",
            ),
        ];
        let v = run(&files);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnitFlow);
        assert!(v[0].message.contains("seconds"), "{}", v[0].message);
        assert!(v[0].message.contains("bytes"), "{}", v[0].message);
    }

    #[test]
    fn escaped_values_keep_their_family_through_rewrap() {
        let files = [file(
            "core",
            "a.rs",
            "pub fn launder(window: Millis) -> Bytes {\n\
                 let raw = window.get();\n\
                 Bytes::new(raw)\n\
             }\n\
             pub fn fine(window: Millis) -> Millis {\n\
                 let raw = window.get();\n\
                 Millis::new(raw)\n\
             }\n",
        )];
        let v = run(&files);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("re-wrapped"), "{}", v[0].message);
    }

    #[test]
    fn result_discipline_flags_discards_only_in_panic_free_crates() {
        let src = "pub fn f(sock: &S) {\n\
                       let _ = sock.set_read_timeout(None);\n\
                       let _ = sock.set_nodelay(true);\n\
                   }\n";
        let flagged = run(&[file("core", "a.rs", src)]);
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert!(flagged[0].message.contains("set_read_timeout"));
        // `cli` is not panic-free: nothing fires.
        let spared = run(&[file("cli", "a.rs", src)]);
        assert!(spared.is_empty(), "{spared:?}");
    }

    #[test]
    fn workspace_fallibility_flows_through_call_resolution() {
        let files = [file(
            "core",
            "a.rs",
            "pub fn fallible() -> Result<(), E> { Ok(()) }\n\
             pub fn infallible() -> u32 { 1 }\n\
             pub fn caller() {\n\
                 let _ = fallible();\n\
                 let _ = infallible();\n\
                 fallible();\n\
             }\n",
        )];
        let v = run(&files);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("bare `;`")));
    }

    #[test]
    fn disposition_cross_check_fires_in_both_directions() {
        let files = [
            file(
                "core",
                "client.rs",
                "pub fn disposition(code: ErrorCode) -> Disposition {\n\
                     match code {\n\
                         ErrorCode::Overloaded => Disposition::RetryAfterHint,\n\
                         ErrorCode::Slow => Disposition::RetryAfterHint,\n\
                         ErrorCode::Malformed | ErrorCode::Internal => Disposition::Fatal,\n\
                     }\n\
                 }\n",
            ),
            file(
                "core",
                "conn.rs",
                "pub fn reply(q: &Q) -> Response {\n\
                     let hinted = error_response(ErrorCode::Overloaded, 100, msg());\n\
                     let dead = error_response(ErrorCode::Malformed, 250, msg());\n\
                     let fine = error_response(ErrorCode::Internal, 0, msg());\n\
                     pick(hinted, dead, fine)\n\
                 }\n",
            ),
        ];
        let v = run(&files);
        // `Malformed` gets a hint the client throws away; `Slow` promises
        // a hint no server site supplies.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("dead on arrival")));
        assert!(v.iter().any(|x| x.message.contains("no server emission")));
    }

    #[test]
    fn cast_range_proves_and_flags() {
        let files = [file(
            "core",
            "wire.rs",
            "impl ErrorCode { pub fn as_u16(self) -> u16 { self as u16 } }\n\
             pub enum ErrorCode { A = 1, B = 9 }\n\
             pub fn read_len(c: &mut Cur) -> Result<usize, E> {\n\
                 let len = c.u32()?;\n\
                 Ok(len as usize)\n\
             }\n\
             impl Cur { pub fn u32(&mut self) -> Result<u32, E> { Ok(0) } }\n\
             pub fn bad(total: f64) -> u16 {\n\
                 let masked = big & 0xFFFF;\n\
                 let ok = masked as u16;\n\
                 total as u16\n\
             }\n",
        )];
        let analysis = check_workspace(&files, &deps(), &[], &[("core", "wire.rs")], None);
        let v = analysis.violations;
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("unknown"), "{}", v[0].message);
        assert_eq!(analysis.stats.cast_proofs, 3, "enum, u32→usize, mask");
    }

    #[test]
    fn cache_hits_on_identical_content_and_misses_on_change() {
        let dir = std::env::temp_dir().join(format!("xtask-dataflow-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let files = [file("core", "a.rs", "pub fn f() -> u32 { 1 }\n")];
        let cold = check_workspace(&files, &deps(), &[], &[], Some(&dir));
        assert_eq!((cold.stats.cache_hits, cold.stats.cache_misses), (0, 1));
        let warm = check_workspace(&files, &deps(), &[], &[], Some(&dir));
        assert_eq!((warm.stats.cache_hits, warm.stats.cache_misses), (1, 0));
        let changed = [file("core", "a.rs", "pub fn f() -> u32 { 2 }\n")];
        let miss = check_workspace(&changed, &deps(), &[], &[], Some(&dir));
        assert_eq!((miss.stats.cache_hits, miss.stats.cache_misses), (0, 1));
        // A corrupt cache entry falls back to extraction.
        for entry in std::fs::read_dir(&dir).expect("cache dir") {
            let p = entry.expect("entry").path();
            std::fs::write(&p, "garbage").expect("corrupt");
        }
        let healed = check_workspace(&files, &deps(), &[], &[], Some(&dir));
        assert_eq!(healed.stats.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_family_arithmetic_and_derived_units_stay_quiet() {
        let files = [file(
            "core",
            "a.rs",
            "pub fn f(a_ms: f64, b_ms: f64, n_records: f64, slope: f64) -> f64 {\n\
                 let total = a_ms + b_ms;\n\
                 total + slope * n_records\n\
             }\n",
        )];
        let v = run(&files);
        assert!(v.is_empty(), "{v:?}");
    }
}
