//! A small Rust lexer: enough token structure for the audit rules.
//!
//! This is not a full Rust grammar — it tokenises identifiers,
//! punctuation, literals and comments with line numbers, and it gets
//! the hard cases right that would otherwise break a regex-based scan:
//! nested block comments, raw strings (`r#"…"#`), byte strings, char
//! literals vs. lifetimes, and doc comments vs. plain comments.

/// What a token is, at the granularity the audit rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct,
    /// String / char / numeric literal (content not preserved for
    /// strings — only that a literal occupies the position).
    Literal,
    /// `//` or `/* */` comment that is not a doc comment.
    Comment,
    /// `///`, `//!`, `/** */` or `/*! */` doc comment.
    Doc,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// Source text (for comments and idents; literals keep a marker).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// Lexes `source`, never failing: unterminated constructs consume the
/// rest of the input as a single token.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: Kind, text: String, line: usize) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                _ if c == 'r' || c == 'b' => self.ident_or_prefixed_literal(line),
                _ if c.is_alphabetic() || c == '_' => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(Kind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let kind =
            if (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!") {
                Kind::Doc
            } else {
                Kind::Comment
            };
        self.push(kind, text, line);
    }

    fn block_comment(&mut self, line: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let kind = if (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
            || text.starts_with("/*!")
        {
            Kind::Doc
        } else {
            Kind::Comment
        };
        self.push(kind, text, line);
    }

    fn string(&mut self, line: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(Kind::Literal, "\"…\"".into(), line);
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: usize) {
        self.bump(); // the quote
        let is_lifetime = match (self.peek(0), self.peek(1)) {
            // `'a'` is a char; `'a` followed by anything but `'` is a
            // lifetime (labels lex the same way, which is fine here).
            (Some(c), Some('\'')) if c != '\\' => false,
            (Some(c), _) if c.is_alphabetic() || c == '_' => true,
            _ => false,
        };
        if is_lifetime {
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(Kind::Ident, text, line);
            return;
        }
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(Kind::Literal, "'…'".into(), line);
    }

    /// Identifiers starting `r`/`b` may instead open raw or byte
    /// literals (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`).
    fn ident_or_prefixed_literal(&mut self, line: usize) {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1, c2) {
            (Some('b'), Some('\''), _) => {
                self.bump();
                self.char_or_lifetime(line);
            }
            (Some('b'), Some('"'), _) => {
                self.bump();
                self.string(line);
            }
            (Some('r'), Some('"' | '#'), _)
                if c1 == Some('"') || c2 == Some('"') || c2 == Some('#') =>
            {
                self.bump();
                self.raw_string(line);
            }
            (Some('b'), Some('r'), Some('"' | '#')) => {
                self.bump();
                self.bump();
                self.raw_string(line);
            }
            _ => self.ident(line),
        }
    }

    fn raw_string(&mut self, line: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#ident` (raw identifier): lex the identifier itself.
            self.ident(line);
            return;
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Kind::Literal, "r\"…\"".into(), line);
    }

    fn ident(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() {
            // Defensive: only reachable on stray non-ident bytes.
            if let Some(c) = self.bump() {
                self.push(Kind::Punct, c.to_string(), line);
            }
            return;
        }
        self.push(Kind::Ident, text, line);
    }

    fn number(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Digits, hex letters, suffixes and `_`; `.` is left to
            // punct so ranges (`0..10`) lex cleanly.
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Kind::Literal, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_docs_are_distinguished() {
        let toks = kinds("// plain\n/// doc\n//! inner\n/* block */\n/** docblock */");
        assert_eq!(toks[0].0, Kind::Comment);
        assert_eq!(toks[1].0, Kind::Doc);
        assert_eq!(toks[2].0, Kind::Doc);
        assert_eq!(toks[3].0, Kind::Comment);
        assert_eq!(toks[4].0, Kind::Doc);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "a.unwrap() // not a comment";"#);
        assert!(toks.iter().all(|(_, t)| !t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"embedded "quotes" here"#; x"###);
        assert_eq!(toks.last().map(|(k, _)| *k), Some(Kind::Ident));
        let n_literals = toks.iter().filter(|(k, _)| *k == Kind::Literal).count();
        assert_eq!(n_literals, 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = toks.iter().filter(|(_, t)| t == "'a").count();
        assert_eq!(lifetimes, 2);
        let chars = toks.iter().filter(|(k, _)| *k == Kind::Literal).count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].0, Kind::Ident);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
