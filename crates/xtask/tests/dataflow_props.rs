//! Property test: the interprocedural dataflow fixpoint is
//! deterministic — the findings and proof counts depend neither on the
//! order the source files are fed in nor on the order the worklist
//! evaluates nodes within a round (the Jacobi iteration reads only the
//! previous round's snapshot).

// Test code: panicking on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use proptest::prelude::*;
use xtask::callgraph::SourceFile;
use xtask::dataflow;

/// A small workspace exercising all three rule families across crate
/// boundaries: a unit family carried only by a call summary, a
/// fallibility fact resolved cross-crate, and casts both provable and
/// not.
fn corpus() -> Vec<SourceFile> {
    let specs: [(&str, &str, &str); 4] = [
        (
            "core",
            "flow.rs",
            "pub fn mix(total_bytes: f64) -> f64 {\n\
                 let w = blot_geo::grace(1.0);\n\
                 w + total_bytes\n\
             }\n\
             pub fn drop_it(flag: bool) {\n\
                 let _ = blot_geo::fail(flag);\n\
             }\n",
        ),
        (
            "geo",
            "grace.rs",
            "pub fn grace(anchor_ms: f64) -> f64 { anchor_ms }\n",
        ),
        (
            "geo",
            "fail.rs",
            "pub fn fail(flag: bool) -> Result<u32, String> {\n\
                 if flag { Ok(1) } else { Err(\"no\".to_owned()) }\n\
             }\n",
        ),
        (
            "codec",
            "bits.rs",
            "pub fn low(word: u64) -> u8 { (word & 0xFF) as u8 }\n\
             pub fn wild(len: u64) -> u8 { len as u8 }\n",
        ),
    ];
    specs
        .iter()
        .map(|(krate, name, src)| SourceFile {
            crate_name: (*krate).to_string(),
            path: PathBuf::from(format!("crates/{krate}/src/{name}")),
            source: (*src).to_string(),
        })
        .collect()
}

fn dep_graph() -> BTreeMap<String, BTreeSet<String>> {
    let pairs: [(&str, &[&str]); 3] = [("core", &["geo"]), ("geo", &[]), ("codec", &[])];
    pairs
        .iter()
        .map(|(c, ds)| {
            (
                (*c).to_string(),
                ds.iter().map(|d| (*d).to_string()).collect(),
            )
        })
        .collect()
}

/// Formats the full observable output of one seeded run.
fn run(files: &[SourceFile], seed: u64) -> String {
    let analysis = dataflow::check_workspace_seeded(
        files,
        &dep_graph(),
        &["core"],
        &[("codec", "bits.rs")],
        None,
        seed,
    );
    let mut out = String::new();
    for v in &analysis.violations {
        out.push_str(&format!("{}:{}: {}\n", v.file.display(), v.line, v.message));
    }
    out.push_str(&format!("proofs {}\n", analysis.stats.cast_proofs));
    out
}

/// Fisher–Yates driven by a simple split-mix step, so each proptest
/// case permutes the corpus differently but reproducibly.
fn permute(files: &mut [SourceFile], mut seed: u64) {
    for i in (1..files.len()).rev() {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        seed ^= seed >> 31;
        #[allow(clippy::cast_possible_truncation)]
        let j = (seed % (i as u64 + 1)) as usize;
        files.swap(i, j);
    }
}

proptest! {
    #[test]
    fn findings_are_identical_across_file_and_worklist_orderings(
        file_seed in any::<u64>(),
        worklist_seed in any::<u64>(),
    ) {
        let canonical = run(&corpus(), 0);
        prop_assert!(
            canonical.contains("milliseconds") && canonical.contains("discards"),
            "the corpus must produce unit-flow and result-discipline findings: {canonical}"
        );
        prop_assert!(canonical.contains("proofs 1"), "one cast must prove: {canonical}");
        let mut shuffled = corpus();
        permute(&mut shuffled, file_seed);
        prop_assert_eq!(&run(&shuffled, worklist_seed), &canonical);
    }
}
