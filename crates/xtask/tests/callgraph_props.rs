//! Property test: call-graph construction and the workspace checks
//! built on it are deterministic — the reported violations do not
//! depend on the order the source files are fed in.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use proptest::prelude::*;
use xtask::callgraph::{self, SourceFile};

/// A small workspace exercising every fact the analysis propagates:
/// cross-crate panic reachability, lock acquisition through calls,
/// blocking I/O under a guard, and a lock-graph edge.
fn corpus() -> Vec<SourceFile> {
    let specs: [(&str, &str, &str); 6] = [
        (
            "core",
            "entry.rs",
            "pub fn entry() { step_one(); }\n\
             pub fn other_entry() { blot_geo::boom_helper(); }\n",
        ),
        (
            "core",
            "steps.rs",
            "pub fn step_one() { step_two(); }\n\
             pub fn step_two() { blot_geo::boom_helper(); }\n",
        ),
        (
            "geo",
            "boom.rs",
            "pub fn boom_helper() { maybe().unwrap(); }\n\
             fn maybe() -> Option<u32> { None }\n",
        ),
        (
            "storage",
            "guarded.rs",
            "pub fn hold_and_call(state: &State) {\n\
                 let g = state.log.lock();\n\
                 reacquire(state);\n\
                 drop(g);\n\
             }\n\
             pub fn reacquire(state: &State) { state.log.lock().push(1); }\n",
        ),
        (
            "storage",
            "io.rs",
            "pub fn hold_and_read(state: &State) {\n\
                 let g = state.failures.lock();\n\
                 slurp();\n\
                 drop(g);\n\
             }\n\
             fn slurp() { let _ = std::fs::read(\"x\"); }\n",
        ),
        (
            "server",
            "cross.rs",
            "pub fn ordered(state: &State) {\n\
                 let g = state.units.lock();\n\
                 blot_storage::reacquire(state);\n\
                 drop(g);\n\
             }\n",
        ),
    ];
    specs
        .iter()
        .map(|(krate, name, src)| SourceFile {
            crate_name: (*krate).to_string(),
            path: PathBuf::from(format!("crates/{krate}/src/{name}")),
            source: (*src).to_string(),
        })
        .collect()
}

fn dep_graph() -> BTreeMap<String, BTreeSet<String>> {
    let pairs: [(&str, &[&str]); 4] = [
        ("core", &["geo"]),
        ("geo", &[]),
        ("storage", &["geo"]),
        ("server", &["core", "geo", "storage"]),
    ];
    pairs
        .iter()
        .map(|(c, ds)| {
            (
                (*c).to_string(),
                ds.iter().map(|d| (*d).to_string()).collect(),
            )
        })
        .collect()
}

/// Formats the full observable output of a run: edges, then findings.
fn run(files: &[SourceFile]) -> String {
    let deps = dep_graph();
    let mut allows = Vec::new();
    let graph = callgraph::build(files, &deps, &["core"], &mut allows);
    let mut out = String::new();
    for (from, to) in graph.edge_names() {
        out.push_str(&format!("{from} -> {to}\n"));
    }
    let mut allows = Vec::new();
    for v in callgraph::check_workspace(files, &deps, &["core"], &mut allows) {
        out.push_str(&format!("{}:{}: {}\n", v.file.display(), v.line, v.message));
    }
    out
}

/// Fisher–Yates driven by a simple split-mix step, so each proptest
/// case permutes the corpus differently but reproducibly.
fn permute(files: &mut [SourceFile], mut seed: u64) {
    for i in (1..files.len()).rev() {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        seed ^= seed >> 31;
        #[allow(clippy::cast_possible_truncation)]
        let j = (seed % (i as u64 + 1)) as usize;
        files.swap(i, j);
    }
}

proptest! {
    #[test]
    fn violations_are_identical_across_file_orderings(seed in any::<u64>()) {
        let canonical = run(&corpus());
        prop_assert!(!canonical.is_empty(), "the corpus must produce findings");
        let mut shuffled = corpus();
        permute(&mut shuffled, seed);
        prop_assert_eq!(&run(&shuffled), &canonical);
    }
}
