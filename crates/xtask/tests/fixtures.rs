//! blot-audit acceptance tests: every rule must fire on its known-bad
//! fixture, waivers must ledger correctly, and the real workspace must
//! pass clean.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use xtask::rules::{audit_file, FileReport, Rule, RuleSet};

/// The v1 lexer rules; the semantic rules get their own targeted sets
/// so the older fixtures stay focused on what they prove.
const LEXER_RULES: RuleSet = RuleSet {
    panic: true,
    indexing: true,
    lossy_cast: true,
    errors_doc: true,
    unit_safety: false,
    lock_discipline: false,
    thread_discipline: false,
    metrics_discipline: false,
};

const UNIT_RULES: RuleSet = RuleSet {
    panic: false,
    indexing: false,
    lossy_cast: false,
    errors_doc: false,
    unit_safety: true,
    lock_discipline: false,
    thread_discipline: false,
    metrics_discipline: false,
};

const LOCK_RULES: RuleSet = RuleSet {
    panic: false,
    indexing: false,
    lossy_cast: false,
    errors_doc: false,
    unit_safety: false,
    lock_discipline: true,
    thread_discipline: false,
    metrics_discipline: false,
};

const THREAD_RULES: RuleSet = RuleSet {
    panic: false,
    indexing: false,
    lossy_cast: false,
    errors_doc: false,
    unit_safety: false,
    lock_discipline: false,
    thread_discipline: true,
    metrics_discipline: false,
};

const METRICS_RULES: RuleSet = RuleSet {
    panic: false,
    indexing: false,
    lossy_cast: false,
    errors_doc: false,
    unit_safety: false,
    lock_discipline: false,
    thread_discipline: false,
    metrics_discipline: true,
};

fn audit_fixture(name: &str, rules: RuleSet) -> FileReport {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    audit_file(Path::new(name), &source, rules)
}

fn count(report: &FileReport, rule: Rule) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn panic_rule_fires_on_every_macro_and_method() {
    let r = audit_fixture("panic_sites.rs", LEXER_RULES);
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented!
    assert_eq!(count(&r, Rule::Panic), 6, "violations: {:?}", r.violations);
}

#[test]
fn panic_rule_skips_test_modules() {
    let r = audit_fixture("panic_sites.rs", LEXER_RULES);
    assert!(
        !r.violations
            .iter()
            .any(|v| v.message.contains("unwrap") && v.line > 19),
        "the #[cfg(test)] unwrap must not be flagged: {:?}",
        r.violations
    );
}

#[test]
fn indexing_rule_fires_on_index_and_slice_only() {
    let r = audit_fixture("indexing.rs", LEXER_RULES);
    // `v[i]` and `&v[1..3]`; `.get()` and slice patterns stay quiet.
    assert_eq!(
        count(&r, Rule::Indexing),
        2,
        "violations: {:?}",
        r.violations
    );
}

#[test]
fn lossy_cast_rule_fires_on_narrowing_only() {
    let r = audit_fixture("lossy_cast.rs", LEXER_RULES);
    // `as u8` and `as u16`; the widening `as u64` stays quiet.
    assert_eq!(
        count(&r, Rule::LossyCast),
        2,
        "violations: {:?}",
        r.violations
    );
}

#[test]
fn lossy_cast_rule_is_opt_in_per_file() {
    let rules = RuleSet {
        lossy_cast: false,
        ..LEXER_RULES
    };
    let r = audit_fixture("lossy_cast.rs", rules);
    assert_eq!(count(&r, Rule::LossyCast), 0);
}

#[test]
fn errors_doc_rule_fires_on_undocumented_pub_fn_only() {
    let r = audit_fixture("errors_doc.rs", LEXER_RULES);
    assert_eq!(
        count(&r, Rule::ErrorsDoc),
        1,
        "violations: {:?}",
        r.violations
    );
    assert!(r.violations[0].message.contains("undocumented"));
}

#[test]
fn error_enums_are_reported_for_crate_level_aggregation() {
    let r = audit_fixture("error_enum.rs", LEXER_RULES);
    assert_eq!(r.error_enums.len(), 1);
    assert_eq!(r.error_enums[0].0, "BadError");
    assert!(r.trait_assertions.is_empty());
    assert!(r.error_impls.is_empty());
}

#[test]
fn allow_comments_waive_and_stale_allows_are_ledgered() {
    let r = audit_fixture("allowed.rs", LEXER_RULES);
    assert_eq!(
        count(&r, Rule::Indexing),
        0,
        "the waived site must not be reported: {:?}",
        r.violations
    );
    let used: Vec<_> = r.allows.iter().filter(|a| a.used > 0).collect();
    let stale: Vec<_> = r.allows.iter().filter(|a| a.used == 0).collect();
    assert_eq!(used.len(), 1, "allows: {:?}", r.allows);
    assert_eq!(used[0].rule, Rule::Indexing);
    assert_eq!(stale.len(), 1, "allows: {:?}", r.allows);
    assert_eq!(stale[0].rule, Rule::Panic);
}

#[test]
fn unit_safety_rule_fires_on_mixed_families_only() {
    let r = audit_fixture("unit_mixing.rs", UNIT_RULES);
    // elapsed_ms + total_bytes, p.extra_ms - np, total_ms += dataset_records;
    // the derived product, same-family sums and the waived site stay quiet.
    assert_eq!(
        count(&r, Rule::UnitSafety),
        3,
        "violations: {:?}",
        r.violations
    );
    assert!(
        r.violations
            .iter()
            .all(|v| v.message.contains("blot_core::units")),
        "messages must point at the newtypes: {:?}",
        r.violations
    );
    let used: Vec<_> = r.allows.iter().filter(|a| a.used > 0).collect();
    assert_eq!(used.len(), 1, "allows: {:?}", r.allows);
    assert_eq!(used[0].rule, Rule::UnitSafety);
}

#[test]
fn lock_discipline_rule_fires_on_guards_held_across_io() {
    let r = audit_fixture("guard_io.rs", LOCK_RULES);
    // backend.get, std::fs::read, run_scan + backend.list; the dropped,
    // temporary and scoped guards stay quiet.
    assert_eq!(
        count(&r, Rule::LockDiscipline),
        4,
        "violations: {:?}",
        r.violations
    );
    assert!(
        !r.violations.iter().any(|v| v.line >= 30),
        "the ok_* methods must stay quiet: {:?}",
        r.violations
    );
}

#[test]
fn lock_discipline_rule_fires_on_order_inversions() {
    let r = audit_fixture("lock_order.rs", LOCK_RULES);
    // units→failures twice (let-bound and temporary); the correctly
    // ordered pairs and the full chain stay quiet.
    assert_eq!(
        count(&r, Rule::LockDiscipline),
        2,
        "violations: {:?}",
        r.violations
    );
    assert!(
        r.violations.iter().all(|v| v.line < 24),
        "ordered acquisitions must stay quiet: {:?}",
        r.violations
    );
}

#[test]
fn thread_discipline_rule_fires_on_creation_only() {
    let r = audit_fixture("thread_spawn.rs", THREAD_RULES);
    // thread::spawn, thread::scope, thread::Builder; sleep,
    // available_parallelism and the #[cfg(test)] spawn stay quiet.
    assert_eq!(
        count(&r, Rule::ThreadDiscipline),
        3,
        "violations: {:?}",
        r.violations
    );
    assert!(
        !r.violations.iter().any(|v| v.line >= 20),
        "thread queries and test code must stay quiet: {:?}",
        r.violations
    );
}

#[test]
fn metrics_discipline_rule_fires_on_static_atomics_only() {
    let r = audit_fixture("static_atomic.rs", METRICS_RULES);
    // The two ad-hoc globals; instance fields, `'static` lifetimes,
    // non-atomic statics and the #[cfg(test)] static stay quiet.
    assert_eq!(
        count(&r, Rule::MetricsDiscipline),
        2,
        "violations: {:?}",
        r.violations
    );
    assert!(
        !r.violations.iter().any(|v| v.line >= 14),
        "only the two globals at the top may fire: {:?}",
        r.violations
    );
    assert!(
        r.violations.iter().all(|v| v.message.contains("blot_obs")),
        "messages must point at the registry: {:?}",
        r.violations
    );
}

#[test]
fn registry_rule_fires_on_every_gap_of_a_new_variant() {
    let read = |name: &str| {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
    };
    let scheme = read("registry_gap_scheme.rs");
    let props = read("registry_gap_properties.rs");
    let violations = xtask::registry::check_registry(
        Path::new("registry_gap_scheme.rs"),
        &scheme,
        Path::new("registry_gap_properties.rs"),
        &props,
        &xtask::fuzz::target_names(),
    );
    // The fixture's Zstd variant has an encode arm but nothing else:
    // missing decode arm, missing zstd_roundtrips, and three missing
    // fuzz targets (zstd, decode_row_zstd, decode_column_zstd).
    assert_eq!(violations.len(), 5, "violations: {violations:?}");
    let messages: Vec<_> = violations.iter().map(|v| v.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("Zstd") && m.contains("decode")),
        "missing decode arm must be reported: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("zstd_roundtrips")),
        "missing property test must be reported: {messages:?}"
    );
    assert_eq!(
        messages
            .iter()
            .filter(|m| m.contains("no fuzz target"))
            .count(),
        3,
        "missing fuzz targets must be reported: {messages:?}"
    );
}

/// The ratchet pins must track the live ledger (enforced in full by
/// `real_workspace_is_clean`) and stay strictly below the six waivers
/// the burn-down started from.
#[test]
fn ratchet_total_stays_below_the_burn_down_baseline() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("ratchet.toml");
    let src = std::fs::read_to_string(&path).expect("ratchet.toml exists");
    let ratchet = xtask::ratchet::Ratchet::parse(&src).expect("ratchet.toml parses");
    assert!(
        ratchet.total() < 6,
        "waiver total {} regressed past the pre-burn-down baseline",
        ratchet.total()
    );
}

/// The acceptance gate: the real workspace passes the full audit with
/// zero violations (dep audit skipped to stay hermetic — it shells out
/// to `cargo metadata`). This also exercises the registry and ratchet
/// rules against the live codec and waiver ledger.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = xtask::lint_workspace(&root, false).expect("lint runs");
    assert!(
        report.is_clean(),
        "workspace audit found violations:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
