//! blot-audit acceptance tests: every rule must fire on its known-bad
//! fixture, waivers must ledger correctly, and the real workspace must
//! pass clean.

// Test code: panicking on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use xtask::callgraph::{self, SourceFile};
use xtask::dataflow;
use xtask::rules::{apply_site_allows, audit_file, Allow, FileReport, Rule, RuleSet, Violation};

/// The v1 lexer rules; the semantic rules get their own targeted sets
/// so the older fixtures stay focused on what they prove.
const LEXER_RULES: RuleSet = RuleSet {
    panic: true,
    indexing: true,
    errors_doc: true,
    lock_discipline: false,
    thread_discipline: false,
    metrics_discipline: false,
};

const LOCK_RULES: RuleSet = RuleSet {
    panic: false,
    indexing: false,
    errors_doc: false,
    lock_discipline: true,
    thread_discipline: false,
    metrics_discipline: false,
};

const THREAD_RULES: RuleSet = RuleSet {
    panic: false,
    indexing: false,
    errors_doc: false,
    lock_discipline: false,
    thread_discipline: true,
    metrics_discipline: false,
};

const METRICS_RULES: RuleSet = RuleSet {
    panic: false,
    indexing: false,
    errors_doc: false,
    lock_discipline: false,
    thread_discipline: false,
    metrics_discipline: true,
};

fn fixture_source(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn audit_fixture(name: &str, rules: RuleSet) -> FileReport {
    audit_file(Path::new(name), &fixture_source(name), rules)
}

fn count(report: &FileReport, rule: Rule) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

/// Drives one fixture through the dataflow engine as a one-file
/// workspace, applying its own allow comments like the real lint does.
fn dataflow_fixture(
    krate: &str,
    name: &str,
    panic_free: &[&str],
    cast_files: &[(&str, &str)],
) -> (Vec<Violation>, Vec<Allow>, dataflow::Stats) {
    let path = PathBuf::from(format!("crates/{krate}/src/{name}"));
    let source = fixture_source(name);
    let mut allows = audit_file(&path, &source, RuleSet::default()).allows;
    let files = vec![SourceFile {
        crate_name: krate.to_string(),
        path,
        source,
    }];
    let deps: BTreeMap<String, BTreeSet<String>> =
        std::iter::once((krate.to_string(), BTreeSet::new())).collect();
    let analysis = dataflow::check_workspace(&files, &deps, panic_free, cast_files, None);
    let violations = apply_site_allows(analysis.violations, &mut allows);
    (violations, allows, analysis.stats)
}

#[test]
fn panic_rule_fires_on_every_macro_and_method() {
    let r = audit_fixture("panic_sites.rs", LEXER_RULES);
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented!
    assert_eq!(count(&r, Rule::Panic), 6, "violations: {:?}", r.violations);
}

#[test]
fn panic_rule_skips_test_modules() {
    let r = audit_fixture("panic_sites.rs", LEXER_RULES);
    assert!(
        !r.violations
            .iter()
            .any(|v| v.message.contains("unwrap") && v.line > 19),
        "the #[cfg(test)] unwrap must not be flagged: {:?}",
        r.violations
    );
}

#[test]
fn indexing_rule_fires_on_index_and_slice_only() {
    let r = audit_fixture("indexing.rs", LEXER_RULES);
    // `v[i]` and `&v[1..3]`; `.get()` and slice patterns stay quiet.
    assert_eq!(
        count(&r, Rule::Indexing),
        2,
        "violations: {:?}",
        r.violations
    );
}

#[test]
fn errors_doc_rule_fires_on_undocumented_pub_fn_only() {
    let r = audit_fixture("errors_doc.rs", LEXER_RULES);
    assert_eq!(
        count(&r, Rule::ErrorsDoc),
        1,
        "violations: {:?}",
        r.violations
    );
    assert!(r.violations[0].message.contains("undocumented"));
}

#[test]
fn error_enums_are_reported_for_crate_level_aggregation() {
    let r = audit_fixture("error_enum.rs", LEXER_RULES);
    assert_eq!(r.error_enums.len(), 1);
    assert_eq!(r.error_enums[0].0, "BadError");
    assert!(r.trait_assertions.is_empty());
    assert!(r.error_impls.is_empty());
}

#[test]
fn allow_comments_waive_and_stale_allows_are_ledgered() {
    let r = audit_fixture("allowed.rs", LEXER_RULES);
    assert_eq!(
        count(&r, Rule::Indexing),
        0,
        "the waived site must not be reported: {:?}",
        r.violations
    );
    let used: Vec<_> = r.allows.iter().filter(|a| a.used > 0).collect();
    let stale: Vec<_> = r.allows.iter().filter(|a| a.used == 0).collect();
    assert_eq!(used.len(), 1, "allows: {:?}", r.allows);
    assert_eq!(used[0].rule, Rule::Indexing);
    assert_eq!(stale.len(), 1, "allows: {:?}", r.allows);
    assert_eq!(stale[0].rule, Rule::Panic);
}

#[test]
fn unit_flow_rule_fires_on_mixed_families_only() {
    let (violations, allows, _) = dataflow_fixture("geo", "unit_mixing.rs", &[], &[]);
    // elapsed_ms + total_bytes, p.extra_ms - np, total_ms += dataset_records,
    // and w + total_bytes through grace's summary; the derived product,
    // same-family sums and the waived site stay quiet.
    let fired: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::UnitFlow)
        .collect();
    assert_eq!(fired.len(), 4, "violations: {violations:?}");
    assert!(
        fired
            .iter()
            .any(|v| v.message.contains("milliseconds") && v.message.contains("bytes")),
        "messages must name both families: {fired:?}"
    );
    let used: Vec<_> = allows.iter().filter(|a| a.used > 0).collect();
    assert_eq!(used.len(), 1, "allows: {allows:?}");
    assert_eq!(used[0].rule, Rule::UnitFlow);
}

#[test]
fn result_discipline_fires_only_in_panic_free_crates() {
    let (violations, allows, _) = dataflow_fixture("core", "discards.rs", &["core"], &[]);
    // The let-underscore drop, the bare-statement drop and the seeded
    // std method; the propagated, bound, best-effort and vetted drops
    // stay quiet.
    let fired: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::ResultDiscipline)
        .collect();
    assert_eq!(fired.len(), 3, "violations: {violations:?}");
    assert!(
        allows
            .iter()
            .any(|a| a.rule == Rule::ResultDiscipline && a.used == 1),
        "the fixture vet must be ledgered as used: {allows:?}"
    );
    // The same file outside the panic-free set is entirely quiet.
    let (quiet, _, _) = dataflow_fixture("core", "discards.rs", &[], &[]);
    assert!(quiet.is_empty(), "violations: {quiet:?}");
}

#[test]
fn cast_range_proves_in_range_and_flags_the_rest() {
    let (violations, allows, stats) =
        dataflow_fixture("codec", "cast_flow.rs", &[], &[("codec", "cast_flow.rs")]);
    // Masked, widening-source and call-summary casts prove; the u64
    // parameter cast fires; the vetted cast is waived.
    let fired: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::CastRange)
        .collect();
    assert_eq!(fired.len(), 1, "violations: {violations:?}");
    assert!(
        fired[0].message.contains("u8"),
        "the unprovable cast targets u8: {}",
        fired[0].message
    );
    assert_eq!(stats.cast_proofs, 3, "stats: {stats:?}");
    assert!(
        allows
            .iter()
            .any(|a| a.rule == Rule::CastRange && a.used == 1),
        "the fixture vet must be ledgered as used: {allows:?}"
    );
}

#[test]
fn lock_discipline_rule_fires_on_guards_held_across_io() {
    let r = audit_fixture("guard_io.rs", LOCK_RULES);
    // backend.get, std::fs::read, run_scan + backend.list; the dropped,
    // temporary and scoped guards stay quiet.
    assert_eq!(
        count(&r, Rule::LockDiscipline),
        4,
        "violations: {:?}",
        r.violations
    );
    assert!(
        !r.violations.iter().any(|v| v.line >= 30),
        "the ok_* methods must stay quiet: {:?}",
        r.violations
    );
}

#[test]
fn lock_discipline_rule_fires_on_order_inversions() {
    let r = audit_fixture("lock_order.rs", LOCK_RULES);
    // units→failures twice (let-bound and temporary); the correctly
    // ordered pairs and the full chain stay quiet.
    assert_eq!(
        count(&r, Rule::LockDiscipline),
        2,
        "violations: {:?}",
        r.violations
    );
    assert!(
        r.violations.iter().all(|v| v.line < 24),
        "ordered acquisitions must stay quiet: {:?}",
        r.violations
    );
}

#[test]
fn thread_discipline_rule_fires_on_creation_only() {
    let r = audit_fixture("thread_spawn.rs", THREAD_RULES);
    // thread::spawn, thread::scope, thread::Builder; sleep,
    // available_parallelism and the #[cfg(test)] spawn stay quiet.
    assert_eq!(
        count(&r, Rule::ThreadDiscipline),
        3,
        "violations: {:?}",
        r.violations
    );
    assert!(
        !r.violations.iter().any(|v| v.line >= 20),
        "thread queries and test code must stay quiet: {:?}",
        r.violations
    );
}

#[test]
fn metrics_discipline_rule_fires_on_static_atomics_only() {
    let r = audit_fixture("static_atomic.rs", METRICS_RULES);
    // The two ad-hoc globals; instance fields, `'static` lifetimes,
    // non-atomic statics and the #[cfg(test)] static stay quiet.
    assert_eq!(
        count(&r, Rule::MetricsDiscipline),
        2,
        "violations: {:?}",
        r.violations
    );
    assert!(
        !r.violations.iter().any(|v| v.line >= 14),
        "only the two globals at the top may fire: {:?}",
        r.violations
    );
    assert!(
        r.violations.iter().all(|v| v.message.contains("blot_obs")),
        "messages must point at the registry: {:?}",
        r.violations
    );
}

#[test]
fn registry_rule_fires_on_every_gap_of_a_new_variant() {
    let read = |name: &str| {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
    };
    let scheme = read("registry_gap_scheme.rs");
    let props = read("registry_gap_properties.rs");
    let violations = xtask::registry::check_registry(
        Path::new("registry_gap_scheme.rs"),
        &scheme,
        Path::new("registry_gap_properties.rs"),
        &props,
        &xtask::fuzz::target_names(),
    );
    // The fixture's Zstd variant has an encode arm but nothing else:
    // missing decode arm, missing zstd_roundtrips, and three missing
    // fuzz targets (zstd, decode_row_zstd, decode_column_zstd).
    assert_eq!(violations.len(), 5, "violations: {violations:?}");
    let messages: Vec<_> = violations.iter().map(|v| v.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("Zstd") && m.contains("decode")),
        "missing decode arm must be reported: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("zstd_roundtrips")),
        "missing property test must be reported: {messages:?}"
    );
    assert_eq!(
        messages
            .iter()
            .filter(|m| m.contains("no fuzz target"))
            .count(),
        3,
        "missing fuzz targets must be reported: {messages:?}"
    );
}

/// The `panic-reachability` fixture pair: a panic-free crate calling
/// across the crate boundary into a helper crate whose panics are
/// invisible to the lexical rule. The unvetted chain must fire exactly
/// once, at the frontier call in the panic-free crate; the vetted and
/// clean chains must stay quiet and the vet must be ledgered as used.
#[test]
fn panic_reachability_fires_across_crates_and_vets_cut_it() {
    let helper_src = fixture_source("reach_helper.rs");
    let files = vec![
        SourceFile {
            crate_name: "core".to_string(),
            path: PathBuf::from("crates/core/src/reach_free.rs"),
            source: fixture_source("reach_free.rs"),
        },
        SourceFile {
            crate_name: "geo".to_string(),
            path: PathBuf::from("crates/geo/src/reach_helper.rs"),
            source: helper_src.clone(),
        },
    ];
    let deps: BTreeMap<String, BTreeSet<String>> = [
        (
            "core".to_string(),
            std::iter::once("geo".to_string()).collect(),
        ),
        ("geo".to_string(), BTreeSet::new()),
    ]
    .into_iter()
    .collect();
    let mut allows = audit_file(
        Path::new("crates/geo/src/reach_helper.rs"),
        &helper_src,
        RuleSet::default(),
    )
    .allows;
    let violations = callgraph::check_workspace(&files, &deps, &["core"], &mut allows);
    let panics: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::PanicReach)
        .collect();
    assert_eq!(panics.len(), 1, "violations: {violations:?}");
    let v = panics[0];
    assert!(
        v.file.ends_with("reach_free.rs"),
        "the frontier call in the panic-free crate must be blamed: {v:?}"
    );
    assert!(
        v.message.contains("helper_boom") && v.message.contains("unwrap"),
        "the message must name the callee and the panic site: {}",
        v.message
    );
    let vet = allows
        .iter()
        .find(|a| a.rule == Rule::PanicReach)
        .expect("the fixture vet is ledgered");
    assert_eq!(vet.used, 1, "the source vet must be marked used");
}

/// The `deadlock` fixture: every hazard is hidden behind a call edge,
/// so only the transitive analysis can see it. All five sub-families
/// must fire — re-acquisition, order inversion, lock-graph cycle,
/// blocking I/O under a guard, and batch submission under a guard.
#[test]
fn deadlock_rules_fire_on_transitive_hazards() {
    let files = vec![SourceFile {
        crate_name: "storage".to_string(),
        path: PathBuf::from("crates/storage/src/deadlock_chain.rs"),
        source: fixture_source("deadlock_chain.rs"),
    }];
    let deps: BTreeMap<String, BTreeSet<String>> = [("storage".to_string(), BTreeSet::new())]
        .into_iter()
        .collect();
    let mut allows = Vec::new();
    let violations = callgraph::check_workspace(&files, &deps, &[], &mut allows);
    let dl: Vec<&str> = violations
        .iter()
        .filter(|v| v.rule == Rule::Deadlock)
        .map(|v| v.message.as_str())
        .collect();
    assert_eq!(dl.len(), 5, "violations: {dl:?}");
    assert!(
        dl.iter().any(|m| m.contains("re-acquires `log`")),
        "transitive re-acquisition must fire: {dl:?}"
    );
    assert!(
        dl.iter().any(|m| m.contains("against the declared order")),
        "order inversion through a call must fire: {dl:?}"
    );
    assert!(
        dl.iter().any(|m| m.contains("lock-acquisition cycle")),
        "the `log <-> units` cycle must fire: {dl:?}"
    );
    assert!(
        dl.iter().any(|m| m.contains("reaches blocking I/O")),
        "transitive I/O under a guard must fire: {dl:?}"
    );
    assert!(
        dl.iter().any(|m| m.contains("execute_all` submitted")),
        "batch submission under a guard must fire: {dl:?}"
    );
}

/// The `wire-registry` fixture pair: one dropped decode arm, one
/// dropped encode arm, one dropped `from_u16` arm, and two variants
/// the client and the test corpus never mention.
#[test]
fn wire_registry_rule_fires_on_every_gap() {
    let wire = fixture_source("wire_gap_wire.rs");
    let client = fixture_source("wire_gap_client.rs");
    let violations = xtask::registry::check_wire_registry(
        Path::new("wire_gap_wire.rs"),
        &wire,
        Path::new("wire_gap_client.rs"),
        &client,
        "",
    );
    assert_eq!(violations.len(), 7, "violations: {violations:?}");
    let messages: Vec<_> = violations.iter().map(|v| v.message.as_str()).collect();
    for expected in [
        "`Request::Echo` has no arm in `Request::decode`",
        "`Response::Pong` has no arm in `Response::encode`",
        "`ErrorCode::Overloaded` has no arm in `ErrorCode::from_u16`",
        "`Request::Echo` is never handled",
        "`ErrorCode::Overloaded` is never handled",
    ] {
        assert!(
            messages.iter().any(|m| m.contains(expected)),
            "missing `{expected}` in {messages:?}"
        );
    }
    assert_eq!(
        messages
            .iter()
            .filter(|m| m.contains("appears in no test"))
            .count(),
        2,
        "Echo and Overloaded are uncovered by any test: {messages:?}"
    );
}

/// The ISSUE acceptance criterion, proven by mutation on the real
/// sources: the live wire protocol is clean, and deleting any single
/// match arm — a `from_u16` arm, a client disposition arm, or a whole
/// codec variant — makes `wire-registry` fire.
#[test]
fn deleting_a_wire_arm_fails_the_lint() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let read = |rel: &str| {
        std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("cannot read {rel}: {e}"))
    };
    let wire_src = read("crates/server/src/wire.rs");
    let client_src = read("crates/server/src/client.rs");
    let e2e_src = read("crates/server/tests/e2e.rs");
    let check = |wire: &str, client: &str| {
        xtask::registry::check_wire_registry(
            Path::new("crates/server/src/wire.rs"),
            wire,
            Path::new("crates/server/src/client.rs"),
            client,
            &e2e_src,
        )
    };
    assert!(
        check(&wire_src, &client_src).is_empty(),
        "the live wire protocol must be registry-clean"
    );

    // Drop `ErrorCode::BadVersion`'s decode arm in `from_u16`.
    let mutated = wire_src.replace("2 => Self::BadVersion,", "2 => Self::Internal,");
    assert_ne!(mutated, wire_src, "mutation target must exist in wire.rs");
    let v = check(&mutated, &client_src);
    assert!(
        v.iter().any(|x| x
            .message
            .contains("`ErrorCode::BadVersion` has no arm in `ErrorCode::from_u16`")),
        "dropping a from_u16 arm must fail lint: {v:?}"
    );

    // Drop the client's disposition arm for `ErrorCode::NoSuchReplica`
    // (its first occurrence in client.rs; the test-module mentions
    // keep the corpus satisfied so exactly this gap is reported).
    let mutated = client_src.replacen("ErrorCode::NoSuchReplica", "ErrorCode::Internal", 1);
    assert_ne!(
        mutated, client_src,
        "mutation target must exist in client.rs"
    );
    let v = check(&wire_src, &mutated);
    assert!(
        v.iter().any(|x| x
            .message
            .contains("`ErrorCode::NoSuchReplica` is never handled")),
        "dropping a client disposition arm must fail lint: {v:?}"
    );

    // Erase `Request::Stats` from the codec match arms entirely.
    let mutated = wire_src.replace("Self::Stats", "Self::Ping");
    assert_ne!(
        mutated, wire_src,
        "Request::Stats arms must exist in wire.rs"
    );
    let v = check(&mutated, &client_src);
    assert!(
        v.iter()
            .any(|x| x.message.contains("`Request::Stats` has no arm in")),
        "erasing a Request variant's arms must fail lint: {v:?}"
    );
}

/// The ratchet pins must track the live ledger (enforced in full by
/// `real_workspace_is_clean`). On top of the exact per-rule pins, the
/// `[ceiling]` section caps the grand total at the pre-dataflow
/// baseline of eight; the v4 burn-down (the geo axis accessors went
/// total, trading three `panic-reachability` vets for two
/// `result-discipline` vets) left the live total below it.
#[test]
fn ratchet_total_stays_at_or_below_the_ceiling() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("ratchet.toml");
    let src = std::fs::read_to_string(&path).expect("ratchet.toml exists");
    let ratchet = xtask::ratchet::Ratchet::parse(&src).expect("ratchet.toml parses");
    let ceiling = ratchet.ceiling.expect("the grand-total ceiling is pinned");
    assert_eq!(ceiling, 8, "the ceiling is the pre-dataflow baseline");
    assert!(
        ratchet.total() <= ceiling,
        "live waiver total {} exceeds the ceiling {ceiling}",
        ratchet.total()
    );
}

/// The acceptance gate: the real workspace passes the full audit with
/// zero violations (dep audit skipped to stay hermetic — it shells out
/// to `cargo metadata`). This also exercises the registry and ratchet
/// rules against the live codec and waiver ledger.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = xtask::lint_workspace(&root, false).expect("lint runs");
    assert!(
        report.is_clean(),
        "workspace audit found violations:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
